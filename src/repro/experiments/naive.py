"""Naive (pre-optimization) reference operators for equivalence checks.

These functions reproduce the original execution strategy of the three
algebra layers: per-row column-name lookups (``column_names.index``-style
resolution through ``row[name]``), dict round-trips between operators,
and re-validation of every value and tag through the public ``insert``
path.  They are deliberately *slow but obviously correct*, and exist for
two purposes:

- the property tests in ``tests/*/test_fastpath.py`` assert the fast
  paths in :mod:`repro.relational.algebra`, :mod:`repro.tagging.algebra`
  and :mod:`repro.polygen.algebra` return identical results;
- the benchmark suite measures speedup of the fast path against these
  as the "naive" baseline (``BENCH_E2.json`` / ``BENCH_E3.json``).

Do not use these in application code.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import QueryError
from repro.polygen.model import PolygenCell, PolygenRelation, PolygenRow
from repro.relational.relation import Relation, Row
from repro.tagging.cell import QualityCell
from repro.tagging.query import QualityFilter
from repro.tagging.relation import TaggedRelation, TaggedRow

# -- plain relations ---------------------------------------------------------


def naive_select(relation: Relation, predicate: Callable[[Row], bool]) -> Relation:
    """σ via the public validating insert (original code path)."""
    result = relation.empty_like()
    for row in relation:
        if predicate(row):
            result.insert(row)
    return result


def naive_project(
    relation: Relation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> Relation:
    """π via per-row name lookups and dict rebuilds."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    result = Relation(out_schema)
    for row in relation:
        result.insert({c: row[c] for c in columns})
    return result


def naive_equi_join(
    left: Relation,
    right: Relation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> Relation:
    """Hash join materializing every output row as a dict."""
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    result = Relation(out_schema)
    names = out_schema.column_names

    index: dict[tuple[Any, ...], list[Row]] = {}
    for rrow in right:
        key = tuple(rrow[rcol] for _, rcol in on)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(lrow[lcol] for lcol, _ in on)
        for rrow in index.get(key, ()):
            result.insert(
                dict(zip(names, lrow.values_tuple() + rrow.values_tuple()))
            )
    return result


# -- tagged relations --------------------------------------------------------


def naive_tagged_select(
    relation: TaggedRelation, predicate: Callable[[TaggedRow], bool]
) -> TaggedRelation:
    """σ re-validating every surviving row's values and tags."""
    result = relation.empty_like()
    for row in relation:
        if predicate(row):
            result.insert(row)
    return result


def naive_tagged_project(
    relation: TaggedRelation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> TaggedRelation:
    """π via per-row name lookups into cell dicts."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    out_tags = relation.tag_schema.project(columns)
    result = TaggedRelation(out_schema, out_tags)
    for row in relation:
        result.insert({c: row[c] for c in columns})
    return result


def naive_tagged_equi_join(
    left: TaggedRelation,
    right: TaggedRelation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> TaggedRelation:
    """Hash join building per-row cell dicts and re-validating tags."""
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    left_map, right_map = left.schema.concat_maps(right.schema)
    out_tags = left.tag_schema.rename_columns(left_map).merge(
        right.tag_schema.rename_columns(right_map)
    )
    result = TaggedRelation(out_schema, out_tags)

    index: dict[tuple[Any, ...], list[TaggedRow]] = {}
    for rrow in right:
        key = tuple(_freeze(rrow.value(rcol)) for _, rcol in on)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(_freeze(lrow.value(lcol)) for lcol, _ in on)
        for rrow in index.get(key, ()):
            cells: dict[str, QualityCell] = {}
            for c in left.schema.column_names:
                cells[left_map[c]] = lrow[c]
            for c in right.schema.column_names:
                cells[right_map[c]] = rrow[c]
            result.insert(cells)
    return result


def naive_quality_filter(
    relation: TaggedRelation, quality_filter: QualityFilter
) -> TaggedRelation:
    """Grade filtering with per-row, per-constraint name lookups."""
    for constraint in quality_filter.constraints:
        relation.schema.column(constraint.column)
    return naive_tagged_select(relation, quality_filter.test)


# -- polygen relations -------------------------------------------------------


def naive_polygen_select(
    relation: PolygenRelation,
    predicate: Callable[[PolygenRow], bool],
    using: Sequence[str] = (),
) -> PolygenRelation:
    """σ with per-row name lookups for the examined columns."""
    for name in using:
        relation.schema.column(name)
    result = relation.empty_like()
    for row in relation:
        if predicate(row):
            examined: frozenset[str] = frozenset()
            for name in using:
                examined |= row[name].originating
            result.insert(row.with_intermediate(examined) if examined else row)
    return result


def naive_polygen_project(
    relation: PolygenRelation,
    columns: Sequence[str],
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """π via per-row name lookups into cell dicts."""
    if not columns:
        raise QueryError("projection requires at least one column")
    out_schema = relation.schema.project(columns, new_name)
    result = PolygenRelation(out_schema)
    for row in relation:
        result.insert({c: row[c] for c in columns})
    return result


def naive_polygen_equi_join(
    left: PolygenRelation,
    right: PolygenRelation,
    on: Sequence[tuple[str, str]],
    new_name: Optional[str] = None,
) -> PolygenRelation:
    """Hash join with dict round-trips and per-cell re-validation."""
    if not on:
        raise QueryError("equi_join requires at least one column pair")
    for lcol, rcol in on:
        left.schema.column(lcol)
        right.schema.column(rcol)
    name = new_name or f"{left.schema.name}_join_{right.schema.name}"
    out_schema = left.schema.concat(right.schema, name)
    left_map, right_map = left.schema.concat_maps(right.schema)
    result = PolygenRelation(out_schema)

    index: dict[tuple[Any, ...], list[PolygenRow]] = {}
    for rrow in right:
        key = tuple(_freeze(rrow.value(rcol)) for _, rcol in on)
        index.setdefault(key, []).append(rrow)
    for lrow in left:
        key = tuple(_freeze(lrow.value(lcol)) for lcol, _ in on)
        for rrow in index.get(key, ()):
            examined: frozenset[str] = frozenset()
            for lcol, rcol in on:
                examined |= lrow[lcol].originating | rrow[rcol].originating
            cells: dict[str, PolygenCell] = {}
            for c in left.schema.column_names:
                cells[left_map[c]] = lrow[c].with_intermediate(examined)
            for c in right.schema.column_names:
                cells[right_map[c]] = rrow[c].with_intermediate(examined)
            result.insert(cells)
    return result


def _freeze(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


# -- QSQL reference interpreter ----------------------------------------------


def naive_execute(sql: str, source: Any) -> Relation | TaggedRelation:
    """AST-walking QSQL interpreter: per-row name lookups, no planning.

    The third leg of the planner equivalence property — independent of
    both ``execute(...)`` (planned) and ``execute(..., planner=False)``
    (compiled closures).  Every operand is resolved by column *name* on
    every row, every intermediate stage is rebuilt through the public
    validating ``insert`` path, and each clause is interpreted directly
    off the AST.  Slow but obviously correct.
    """
    from repro.relational.algebra import AGGREGATES
    from repro.relational.catalog import Database
    from repro.relational.schema import Column, RelationSchema
    from repro.relational.types import FLOAT, INT, STR
    from repro.sql import nodes
    from repro.sql.errors import SQLError
    from repro.sql.parser import parse

    statement = parse(sql)
    if statement.explain:
        raise QueryError("naive_execute does not implement EXPLAIN")

    if isinstance(source, (Relation, TaggedRelation)):
        if source.schema.name != statement.relation:
            raise SQLError(
                f"FROM {statement.relation!r} does not match the supplied "
                f"relation {source.schema.name!r}"
            )
        relation = source
    elif isinstance(source, Database):
        relation = source.relation(statement.relation)
    else:
        try:
            relation = source[statement.relation]
        except KeyError:
            raise SQLError(
                f"unknown relation {statement.relation!r} "
                f"(available: {sorted(source)})"
            ) from None
    tagged = isinstance(relation, TaggedRelation)

    # -- upfront reference checks (mirror the executor's fail-fast order) --
    refs: list[Any] = []

    def collect(node: Any) -> None:
        if node is None:
            return
        if isinstance(node, (nodes.ColumnRef, nodes.QualityRef)):
            refs.append(node)
        elif isinstance(node, nodes.Comparison):
            collect(node.left)
            collect(node.right)
        elif isinstance(node, (nodes.InList, nodes.IsNull)):
            collect(node.operand)
        elif isinstance(node, nodes.BoolOp):
            collect(node.left)
            collect(node.right)
        elif isinstance(node, nodes.NotOp):
            collect(node.operand)
        elif isinstance(node, nodes.AggregateCall):
            collect(node.operand)

    collect(statement.where)
    for item in statement.select_items or ():
        collect(item.expr)
    for key_ref in statement.group_by:
        collect(key_ref)
    if not statement.has_aggregates:
        # Post-aggregation ORDER BY resolves against the output schema.
        for order_item in statement.order_by:
            collect(order_item.key)
    for ref in refs:
        relation.schema.column(ref.column)
    if statement.uses_quality() and not tagged:
        raise SQLError(
            "QUALITY(...) requires a tagged relation; the source is untagged"
        )

    # -- per-row evaluation ------------------------------------------------
    def operand_value(row: Any, operand: Any, row_tagged: bool) -> Any:
        if isinstance(operand, nodes.Literal):
            return operand.value
        if isinstance(operand, nodes.ColumnRef):
            cell = row[operand.column]
            return cell.value if row_tagged else cell
        # QualityRef (guaranteed tagged by the upfront check).
        return row[operand.column].tag_value(operand.indicator)

    def holds(row: Any, expr: Any, row_tagged: bool) -> bool:
        if isinstance(expr, nodes.Comparison):
            a = operand_value(row, expr.left, row_tagged)
            b = operand_value(row, expr.right, row_tagged)
            if a is None or b is None:
                return False
            try:
                if expr.op == "=":
                    return a == b
                if expr.op in ("<>", "!="):
                    return a != b
                if expr.op == "<":
                    return a < b
                if expr.op == "<=":
                    return a <= b
                if expr.op == ">":
                    return a > b
                return a >= b
            except TypeError:
                return False
        if isinstance(expr, nodes.InList):
            value = operand_value(row, expr.operand, row_tagged)
            if value is None:
                return False
            result = value in expr.options
            return (not result) if expr.negated else result
        if isinstance(expr, nodes.IsNull):
            value = operand_value(row, expr.operand, row_tagged)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, nodes.BoolOp):
            if expr.op == "AND":
                return holds(row, expr.left, row_tagged) and holds(
                    row, expr.right, row_tagged
                )
            return holds(row, expr.left, row_tagged) or holds(
                row, expr.right, row_tagged
            )
        # NotOp
        return not holds(row, expr.operand, row_tagged)

    def output_domain(item: "nodes.SelectItem") -> Any:
        expr = item.expr
        if isinstance(expr, nodes.AggregateCall):
            if expr.func == "COUNT":
                return INT
            if expr.func in ("SUM", "AVG"):
                return FLOAT
            operand = expr.operand
        else:
            operand = expr
        if isinstance(operand, nodes.ColumnRef):
            return relation.schema.column(operand.column).domain
        if tagged:
            try:
                return relation.tag_schema.definition(operand.indicator).domain
            except Exception:
                return STR
        return STR

    if statement.limit is not None and statement.limit < 0:
        raise QueryError("limit must be non-negative")

    row_tagged = tagged
    rows = list(relation)

    if statement.where is not None:
        rows = [
            row for row in rows if holds(row, statement.where, row_tagged)
        ]

    # -- aggregation -------------------------------------------------------
    if statement.has_aggregates:
        items = statement.select_items or ()
        out_schema = RelationSchema(
            f"{statement.relation}_agg",
            [Column(item.output_name, output_domain(item)) for item in items],
        )
        groups: dict[tuple[Any, ...], list[Any]] = {}
        order: list[tuple[Any, ...]] = []
        for row in rows:
            key = tuple(
                operand_value(row, key_ref, row_tagged)
                for key_ref in statement.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        if not statement.group_by and not groups:
            groups[()] = []
            order.append(())
        aggregated = Relation(out_schema)
        for key in order:
            group_rows = groups[key]
            values: dict[str, Any] = {}
            for item in items:
                expr = item.expr
                if isinstance(expr, nodes.AggregateCall):
                    if expr.operand is None:  # COUNT(*)
                        values[item.output_name] = len(group_rows)
                    else:
                        values[item.output_name] = AGGREGATES[
                            expr.func.lower()
                        ](
                            [
                                operand_value(row, expr.operand, row_tagged)
                                for row in group_rows
                            ]
                        )
                else:  # a grouping key
                    values[item.output_name] = key[
                        statement.group_by.index(expr)
                    ]
            aggregated.insert(values)
        for order_item in statement.order_by:
            if isinstance(order_item.key, nodes.QualityRef):
                raise SQLError(
                    "ORDER BY QUALITY(...) cannot follow aggregation"
                )
            aggregated.schema.column(order_item.key.column)
        agg_rows = list(aggregated)
        for order_item in reversed(statement.order_by):
            agg_rows.sort(
                key=lambda row, name=order_item.key.column: (
                    row[name] is not None,
                    row[name],
                ),
                reverse=order_item.descending,
            )
        if statement.limit is not None:
            agg_rows = agg_rows[: statement.limit]
        result = Relation(out_schema)
        for row in agg_rows:
            result.insert({name: row[name] for name in out_schema.column_names})
        return result

    # -- ORDER BY (before projection: keys may be dropped columns) ---------
    for order_item in reversed(statement.order_by):
        rows.sort(
            key=lambda row, node=order_item.key: (
                operand_value(row, node, row_tagged) is not None,
                operand_value(row, node, row_tagged),
            ),
            reverse=order_item.descending,
        )

    current_schema = relation.schema
    current_tags = relation.tag_schema if tagged else None

    # -- projection --------------------------------------------------------
    items = statement.select_items
    if items is not None:
        if any(isinstance(item.expr, nodes.QualityRef) for item in items):
            # QUALITY(...) value columns materialize a plain relation.
            out_schema = RelationSchema(
                current_schema.name,
                [
                    Column(item.output_name, output_domain(item))
                    for item in items
                ],
            )
            projected = Relation(out_schema)
            for row in rows:
                projected.insert(
                    {
                        item.output_name: operand_value(
                            row, item.expr, row_tagged
                        )
                        for item in items
                    }
                )
            rows = list(projected)
            current_schema = out_schema
            current_tags = None
            row_tagged = False
        else:
            names = [item.expr.column for item in items]
            if not names:
                raise QueryError("projection requires at least one column")
            renames = {
                item.expr.column: item.alias
                for item in items
                if item.alias and item.alias != item.expr.column
            }
            out_schema = current_schema.project(names, None)
            if renames:
                out_schema = out_schema.rename_columns(renames)
            mapping = {name: renames.get(name, name) for name in names}
            if row_tagged:
                out_tags = current_tags.project(names)
                if renames:
                    out_tags = out_tags.rename_columns(renames)
                projected_tagged = TaggedRelation(out_schema, out_tags)
                for row in rows:
                    projected_tagged.insert(
                        {mapping[name]: row[name] for name in names}
                    )
                rows = list(projected_tagged)
                current_tags = out_tags
            else:
                projected = Relation(out_schema)
                for row in rows:
                    projected.insert(
                        {mapping[name]: row[name] for name in names}
                    )
                rows = list(projected)
            current_schema = out_schema

    # -- DISTINCT ----------------------------------------------------------
    if statement.distinct:
        if row_tagged:
            # Conservative tag merge: keep only tags every witness agrees
            # on (mirrors tagging.algebra.distinct_values independently).
            value_groups: dict[tuple[Any, ...], list[Any]] = {}
            group_order: list[tuple[Any, ...]] = []
            for row in rows:
                key = tuple(_freeze(v) for v in row.values_tuple())
                if key not in value_groups:
                    value_groups[key] = []
                    group_order.append(key)
                value_groups[key].append(row)
            distinct_result = TaggedRelation(current_schema, current_tags)
            for key in group_order:
                witnesses = value_groups[key]
                cells: dict[str, QualityCell] = {}
                for name in current_schema.column_names:
                    first = witnesses[0][name]
                    if len(witnesses) == 1:
                        cells[name] = first
                        continue
                    shared = [
                        tag
                        for tag in first.tags
                        if all(
                            other[name].has_tag(tag.name)
                            and other[name].tag(tag.name) == tag
                            for other in witnesses[1:]
                        )
                    ]
                    cells[name] = QualityCell(first.value, shared)
                distinct_result.insert(cells)
            rows = list(distinct_result)
        else:
            seen: set[tuple[Any, ...]] = set()
            unique_rows = []
            for row in rows:
                key = row.values_tuple()
                if key not in seen:
                    seen.add(key)
                    unique_rows.append(row)
            rows = unique_rows

    # -- LIMIT -------------------------------------------------------------
    if statement.limit is not None:
        rows = rows[: statement.limit]

    if row_tagged:
        final_tagged = TaggedRelation(current_schema, current_tags)
        for row in rows:
            final_tagged.insert(
                {name: row[name] for name in current_schema.column_names}
            )
        return final_tagged
    final = Relation(current_schema)
    for row in rows:
        final.insert({name: row[name] for name in current_schema.column_names})
    return final
