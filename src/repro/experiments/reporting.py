"""Deterministic text tables and series rendering for experiment output."""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence


class TextTable:
    """An aligned text table builder.

    >>> t = TextTable(["filter", "yield", "accuracy"])
    >>> t.add_row(["mass_mailing", 1.0, 0.82])
    >>> t.add_row(["fund_raising", 0.55, 0.97])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    filter       | yield | accuracy
    -------------+-------+---------
    mass_mailing | 1     | 0.82
    fund_raising | 0.55  | 0.97
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = list(headers)
        self._rows: list[list[str]] = []

    def add_row(self, cells: Sequence[Any]) -> None:
        """Append one row (cells are stringified; floats keep repr)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells; table has {len(self.headers)} columns"
            )
        self._rows.append([_format_cell(c) for c in cells])

    def add_rows(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.add_row(row)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def render(self) -> str:
        grid = [self.headers] + self._rows
        widths = [max(len(cell) for cell in column) for column in zip(*grid)]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(
            " | ".join(h.ljust(w) for h, w in zip(self.headers, widths)).rstrip()
        )
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            lines.append(
                " | ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[Any, float]],
    width: int = 40,
    title: str = "",
) -> str:
    """A simple horizontal-bar rendering of one (x, y) series.

    Used for "figure-like" benchmark output: each x gets a bar scaled to
    the series maximum.
    """
    if not points:
        return f"{title or y_label}: (no points)"
    max_y = max(abs(y) for _, y in points) or 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label} vs {y_label} (bar = value / {max_y:.4g})")
    label_width = max(len(str(x)) for x, _ in points)
    for x, y in points:
        bar = "#" * int(round(abs(y) / max_y * width))
        lines.append(f"{str(x).rjust(label_width)} | {bar} {y:.4g}")
    return "\n".join(lines)
