"""Deterministic ASCII rendering of ER diagrams and annotated views.

The paper presents its methodology outputs as ER diagrams: Figure 3 is
the plain application view, Figure 4 adds quality parameters drawn in
"clouds", and Figure 5 adds quality indicators drawn in dotted
rectangles.  This module renders all three styles as text so the
benchmark harness can regenerate each figure byte-for-byte
deterministically.

Annotation markers
------------------
- quality parameters (subjective)  →  ``( parameter )``   "cloud"
- quality indicators (objective)   →  ``[. indicator .]``  "dotted box"
- inspection requirements          →  ``(/ inspection: ... )``

Annotations attach to target paths as produced by
:meth:`repro.er.model.ERSchema.annotation_targets`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.er.model import Entity, ERSchema, Relationship

#: Annotation rendering styles.
STYLE_CLOUD = "cloud"
STYLE_DOTTED = "dotted"
STYLE_INSPECTION = "inspection"

_MARKERS = {
    STYLE_CLOUD: ("( ", " )"),
    STYLE_DOTTED: ("[. ", " .]"),
    STYLE_INSPECTION: ("(/ ", " )"),
}


class Annotation:
    """A label attached to an ER target, rendered in one of the styles."""

    __slots__ = ("target", "label", "style")

    def __init__(self, target: Sequence[str], label: str, style: str = STYLE_CLOUD) -> None:
        if style not in _MARKERS:
            raise ValueError(
                f"unknown annotation style {style!r} (known: {sorted(_MARKERS)})"
            )
        self.target = tuple(target)
        self.label = label
        self.style = style

    def marker(self) -> str:
        """The rendered marker text, e.g. ``( timeliness )``."""
        open_mark, close_mark = _MARKERS[self.style]
        return f"{open_mark}{self.label}{close_mark}"

    def __repr__(self) -> str:
        return f"Annotation({self.target!r}, {self.marker()})"


def _box(lines: list[str], title: str) -> list[str]:
    """Draw a box around ``lines`` with ``title`` in the top border."""
    width = max([len(title) + 2] + [len(line) for line in lines])
    top = f"+-- {title} " + "-" * (width - len(title) - 2) + "+"
    out = [top]
    for line in lines:
        out.append("| " + line.ljust(width) + " |")
    out.append("+" + "-" * (width + 2) + "+")
    return out


def _annotations_for(
    annotations: Iterable[Annotation], target: tuple[str, ...]
) -> list[Annotation]:
    return [a for a in annotations if a.target == target]


def _render_entity(
    entity: Entity, annotations: Sequence[Annotation]
) -> list[str]:
    lines: list[str] = []
    entity_level = _annotations_for(annotations, (entity.name,))
    for attribute in entity.attributes:
        marker = " <*key*>" if attribute.name in entity.key else ""
        line = f"{attribute.name}: {attribute.domain.name}{marker}"
        attached = _annotations_for(annotations, (entity.name, attribute.name))
        if attached:
            line += "   " + " ".join(a.marker() for a in attached)
        lines.append(line)
    title = entity.name
    if entity_level:
        title += "  " + " ".join(a.marker() for a in entity_level)
    return _box(lines, title)


def _render_relationship(
    relationship: Relationship, annotations: Sequence[Annotation]
) -> list[str]:
    ends = " --- ".join(
        f"{p.entity_name} ({p.cardinality.value})"
        for p in relationship.participants
    )
    rel_level = _annotations_for(annotations, (relationship.name,))
    header = f"<{relationship.name}>  {ends}"
    if rel_level:
        header += "   " + " ".join(a.marker() for a in rel_level)
    lines = [header]
    for attribute in relationship.attributes:
        line = f"  . {attribute.name}: {attribute.domain.name}"
        attached = _annotations_for(
            annotations, (relationship.name, attribute.name)
        )
        if attached:
            line += "   " + " ".join(a.marker() for a in attached)
        lines.append(line)
    return lines


def render_er_diagram(
    schema: ERSchema,
    annotations: Sequence[Annotation] = (),
    title: Optional[str] = None,
    legend: bool = False,
) -> str:
    """Render an ER schema (optionally annotated) as ASCII text.

    Entities are drawn as boxes listing attributes; relationships as
    diamond lines below.  Annotations appear next to their targets using
    the style markers documented in the module docstring.
    """
    sections: list[str] = []
    if title:
        bar = "=" * len(title)
        sections.append(f"{title}\n{bar}")
    for entity in sorted(schema.entities, key=lambda e: e.name):
        sections.append("\n".join(_render_entity(entity, annotations)))
    if schema.relationships:
        rel_lines: list[str] = ["Relationships:"]
        for relationship in sorted(schema.relationships, key=lambda r: r.name):
            rel_lines.extend(_render_relationship(relationship, annotations))
        sections.append("\n".join(rel_lines))
    if legend:
        sections.append(
            "Legend: ( x ) quality parameter [subjective], "
            "[. x .] quality indicator [objective], "
            "(/ x ) inspection requirement, <*key*> identifying key"
        )
    return "\n\n".join(sections)
