"""Entity-relationship model objects.

The model covers what the paper's running example needs (Figure 3):
entities with typed attributes and identifying keys, binary (and n-ary)
relationships with cardinalities, and relationship attributes (the
*trade* relationship carries date, quantity, and trade price).

ER objects are the *anchors* that quality parameters and indicators
attach to in Steps 2-3: an annotation target is an entity, an attribute
of an entity, or a relationship (see
:meth:`ERSchema.annotation_targets`).
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.errors import ERModelError
from repro.relational.types import Domain, domain_by_name


class Cardinality(enum.Enum):
    """Participation cardinality of an entity in a relationship."""

    ONE = "1"
    MANY = "N"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class ERAttribute:
    """A typed attribute of an entity or relationship.

    Parameters
    ----------
    name:
        Attribute name, unique within its owner.
    domain:
        Value domain (a :class:`~repro.relational.types.Domain` or name).
    doc:
        Optional description carried into specification documents.
    """

    __slots__ = ("name", "domain", "doc")

    def __init__(self, name: str, domain: Domain | str = "STR", doc: str = "") -> None:
        if not name:
            raise ERModelError("attribute must have a name")
        self.name = name
        self.domain = domain_by_name(domain) if isinstance(domain, str) else domain
        self.doc = doc

    def __repr__(self) -> str:
        return f"ERAttribute({self.name}: {self.domain.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ERAttribute)
            and other.name == self.name
            and other.domain == self.domain
        )

    def __hash__(self) -> int:
        return hash(("ERAttribute", self.name, self.domain))


class Entity:
    """An entity type with attributes and an identifying key.

    >>> client = Entity(
    ...     "client",
    ...     attributes=[ERAttribute("account_number", "STR"),
    ...                 ERAttribute("name", "STR")],
    ...     key=["account_number"])
    >>> client.key
    ('account_number',)
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[ERAttribute] = (),
        key: Optional[Sequence[str]] = None,
        doc: str = "",
    ) -> None:
        if not name:
            raise ERModelError("entity must have a name")
        self.name = name
        self.doc = doc
        self._attributes: dict[str, ERAttribute] = {}
        for attribute in attributes:
            self.add_attribute(attribute)
        self.key: tuple[str, ...] = ()
        if key:
            self.set_key(key)

    # -- attributes ------------------------------------------------------------

    def add_attribute(self, attribute: ERAttribute) -> ERAttribute:
        """Add an attribute; duplicate names raise."""
        if attribute.name in self._attributes:
            raise ERModelError(
                f"entity {self.name!r} already has attribute {attribute.name!r}"
            )
        self._attributes[attribute.name] = attribute
        return attribute

    def remove_attribute(self, name: str) -> ERAttribute:
        """Remove and return the named attribute (key members refuse)."""
        if name in self.key:
            raise ERModelError(
                f"cannot remove key attribute {name!r} of entity {self.name!r}"
            )
        try:
            return self._attributes.pop(name)
        except KeyError:
            raise ERModelError(
                f"entity {self.name!r} has no attribute {name!r}"
            ) from None

    @property
    def attributes(self) -> tuple[ERAttribute, ...]:
        return tuple(self._attributes.values())

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self._attributes)

    def attribute(self, name: str) -> ERAttribute:
        """Look up one attribute by name."""
        try:
            return self._attributes[name]
        except KeyError:
            raise ERModelError(
                f"entity {self.name!r} has no attribute {name!r} "
                f"(attributes: {list(self._attributes)})"
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    def set_key(self, key: Sequence[str]) -> None:
        """Declare the identifying key (all members must be attributes)."""
        missing = [k for k in key if k not in self._attributes]
        if missing:
            raise ERModelError(
                f"key attributes {missing} are not attributes of entity {self.name!r}"
            )
        if not key:
            raise ERModelError("key must contain at least one attribute")
        self.key = tuple(key)

    def __repr__(self) -> str:
        return f"Entity({self.name}, attributes={list(self.attribute_names)})"


class Participant:
    """One entity's participation in a relationship."""

    __slots__ = ("entity_name", "cardinality", "role")

    def __init__(
        self,
        entity_name: str,
        cardinality: Cardinality = Cardinality.MANY,
        role: str = "",
    ) -> None:
        self.entity_name = entity_name
        self.cardinality = cardinality
        self.role = role or entity_name

    def __repr__(self) -> str:
        return f"Participant({self.entity_name}:{self.cardinality.value})"


class Relationship:
    """A relationship type among two or more entities.

    The paper's *trade* relationship links client and company stock and
    carries attributes (date, quantity, trade price).
    """

    def __init__(
        self,
        name: str,
        participants: Sequence[Participant],
        attributes: Sequence[ERAttribute] = (),
        doc: str = "",
    ) -> None:
        if not name:
            raise ERModelError("relationship must have a name")
        if len(participants) < 2:
            raise ERModelError(
                f"relationship {name!r} needs at least two participants"
            )
        roles = [p.role for p in participants]
        if len(set(roles)) != len(roles):
            raise ERModelError(
                f"relationship {name!r} has duplicate participant roles {roles}"
            )
        self.name = name
        self.doc = doc
        self.participants: tuple[Participant, ...] = tuple(participants)
        self._attributes: dict[str, ERAttribute] = {}
        for attribute in attributes:
            self.add_attribute(attribute)

    def add_attribute(self, attribute: ERAttribute) -> ERAttribute:
        """Add a relationship attribute; duplicate names raise."""
        if attribute.name in self._attributes:
            raise ERModelError(
                f"relationship {self.name!r} already has attribute "
                f"{attribute.name!r}"
            )
        self._attributes[attribute.name] = attribute
        return attribute

    @property
    def attributes(self) -> tuple[ERAttribute, ...]:
        return tuple(self._attributes.values())

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(self._attributes)

    def attribute(self, name: str) -> ERAttribute:
        """Look up one relationship attribute by name."""
        try:
            return self._attributes[name]
        except KeyError:
            raise ERModelError(
                f"relationship {self.name!r} has no attribute {name!r}"
            ) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    @property
    def entity_names(self) -> tuple[str, ...]:
        return tuple(p.entity_name for p in self.participants)

    def __repr__(self) -> str:
        ends = ", ".join(
            f"{p.entity_name}:{p.cardinality.value}" for p in self.participants
        )
        return f"Relationship({self.name}: {ends})"


class ERSchema:
    """A named ER schema: entities + relationships.

    This is the "application view" artifact of Step 1.
    """

    def __init__(self, name: str, doc: str = "") -> None:
        if not name:
            raise ERModelError("ER schema must have a name")
        self.name = name
        self.doc = doc
        self._entities: dict[str, Entity] = {}
        self._relationships: dict[str, Relationship] = {}

    # -- construction ------------------------------------------------------------

    def add_entity(self, entity: Entity) -> Entity:
        """Register an entity; duplicate names raise."""
        if entity.name in self._entities:
            raise ERModelError(f"schema {self.name!r} already has entity {entity.name!r}")
        if entity.name in self._relationships:
            raise ERModelError(
                f"schema {self.name!r} has a relationship named {entity.name!r}"
            )
        self._entities[entity.name] = entity
        return entity

    def add_relationship(self, relationship: Relationship) -> Relationship:
        """Register a relationship; unknown participants raise."""
        if relationship.name in self._relationships:
            raise ERModelError(
                f"schema {self.name!r} already has relationship {relationship.name!r}"
            )
        if relationship.name in self._entities:
            raise ERModelError(
                f"schema {self.name!r} has an entity named {relationship.name!r}"
            )
        for participant in relationship.participants:
            if participant.entity_name not in self._entities:
                raise ERModelError(
                    f"relationship {relationship.name!r} references unknown "
                    f"entity {participant.entity_name!r}"
                )
        self._relationships[relationship.name] = relationship
        return relationship

    def entity(self, name: str) -> Entity:
        """Look up an entity by name."""
        try:
            return self._entities[name]
        except KeyError:
            raise ERModelError(
                f"schema {self.name!r} has no entity {name!r} "
                f"(entities: {sorted(self._entities)})"
            ) from None

    def relationship(self, name: str) -> Relationship:
        """Look up a relationship by name."""
        try:
            return self._relationships[name]
        except KeyError:
            raise ERModelError(
                f"schema {self.name!r} has no relationship {name!r} "
                f"(relationships: {sorted(self._relationships)})"
            ) from None

    @property
    def entities(self) -> tuple[Entity, ...]:
        return tuple(self._entities.values())

    @property
    def relationships(self) -> tuple[Relationship, ...]:
        return tuple(self._relationships.values())

    def __contains__(self, name: object) -> bool:
        return name in self._entities or name in self._relationships

    def __repr__(self) -> str:
        return (
            f"ERSchema({self.name!r}, entities={sorted(self._entities)}, "
            f"relationships={sorted(self._relationships)})"
        )

    # -- annotation targets (used by the methodology's Steps 2-3) -----------------

    def annotation_targets(self) -> Iterator[tuple[str, ...]]:
        """Yield every position a quality annotation may attach to.

        Targets are path tuples:

        - ``(entity,)`` — a whole entity,
        - ``(entity, attribute)`` — one attribute of an entity,
        - ``(relationship,)`` — a whole relationship,
        - ``(relationship, attribute)`` — a relationship attribute.
        """
        for entity in self._entities.values():
            yield (entity.name,)
            for attribute in entity.attributes:
                yield (entity.name, attribute.name)
        for relationship in self._relationships.values():
            yield (relationship.name,)
            for attribute in relationship.attributes:
                yield (relationship.name, attribute.name)

    def resolve_target(self, target: Sequence[str]) -> tuple[str, Any]:
        """Validate an annotation target path and classify it.

        Returns ``(kind, object)`` where kind is one of ``"entity"``,
        ``"entity_attribute"``, ``"relationship"``,
        ``"relationship_attribute"``.
        """
        path = tuple(target)
        if len(path) == 1:
            name = path[0]
            if name in self._entities:
                return "entity", self._entities[name]
            if name in self._relationships:
                return "relationship", self._relationships[name]
            raise ERModelError(
                f"annotation target {path!r} names no entity or relationship"
            )
        if len(path) == 2:
            owner, attr = path
            if owner in self._entities:
                return "entity_attribute", self._entities[owner].attribute(attr)
            if owner in self._relationships:
                return (
                    "relationship_attribute",
                    self._relationships[owner].attribute(attr),
                )
            raise ERModelError(
                f"annotation target {path!r} names no entity or relationship"
            )
        raise ERModelError(
            f"annotation target {path!r} must have one or two components"
        )

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize to a plain dict (JSON-compatible)."""
        return {
            "name": self.name,
            "doc": self.doc,
            "entities": [
                {
                    "name": e.name,
                    "doc": e.doc,
                    "attributes": [
                        {"name": a.name, "domain": a.domain.name, "doc": a.doc}
                        for a in e.attributes
                    ],
                    "key": list(e.key),
                }
                for e in self.entities
            ],
            "relationships": [
                {
                    "name": r.name,
                    "doc": r.doc,
                    "participants": [
                        {
                            "entity": p.entity_name,
                            "cardinality": p.cardinality.value,
                            "role": p.role,
                        }
                        for p in r.participants
                    ],
                    "attributes": [
                        {"name": a.name, "domain": a.domain.name, "doc": a.doc}
                        for a in r.attributes
                    ],
                }
                for r in self.relationships
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ERSchema":
        """Deserialize a schema produced by :meth:`to_dict`."""
        schema = cls(data["name"], doc=data.get("doc", ""))
        for entity_data in data["entities"]:
            entity = Entity(
                entity_data["name"],
                attributes=[
                    ERAttribute(a["name"], a["domain"], a.get("doc", ""))
                    for a in entity_data["attributes"]
                ],
                key=entity_data.get("key") or None,
                doc=entity_data.get("doc", ""),
            )
            schema.add_entity(entity)
        for rel_data in data["relationships"]:
            relationship = Relationship(
                rel_data["name"],
                participants=[
                    Participant(
                        p["entity"],
                        Cardinality(p["cardinality"]),
                        p.get("role", ""),
                    )
                    for p in rel_data["participants"]
                ],
                attributes=[
                    ERAttribute(a["name"], a["domain"], a.get("doc", ""))
                    for a in rel_data["attributes"]
                ],
                doc=rel_data.get("doc", ""),
            )
            schema.add_relationship(relationship)
        return schema

    def copy(self) -> "ERSchema":
        """A deep copy (used when methodology steps refine the view)."""
        return ERSchema.from_dict(self.to_dict())
