"""Entity-relationship modeling substrate.

Step 1 of the paper's methodology ("establish the application view") is
classical ER modeling.  This package provides the ER model objects the
methodology operates on, validation, ASCII diagram rendering (used to
regenerate Figures 3-5), and a translation from ER schemas to relational
schemas so designed applications can be instantiated on the engine in
:mod:`repro.relational`.
"""

from repro.er.model import (
    Cardinality,
    Entity,
    ERAttribute,
    ERSchema,
    Participant,
    Relationship,
)
from repro.er.diagram import render_er_diagram
from repro.er.relational_mapping import er_to_relational
from repro.er.validation import validate_er_schema

__all__ = [
    "Cardinality",
    "ERAttribute",
    "ERSchema",
    "Entity",
    "Participant",
    "Relationship",
    "er_to_relational",
    "render_er_diagram",
    "validate_er_schema",
]
