"""Translate ER schemas to relational schemas.

The methodology produces an ER-based quality schema (Step 4); to
populate and query data, the schema must be instantiated on the
relational engine.  The mapping follows the standard textbook rules
(Teorey [23], cited by the paper):

- each entity becomes a relation whose key is the entity key;
- each many-to-many (or n-ary) relationship becomes a relation keyed by
  the participating entities' keys (plus any discriminating relationship
  attributes), with foreign keys to the participants;
- a one-to-many binary relationship is folded into the "many" side as a
  foreign key, unless it carries attributes, in which case it also
  becomes its own relation.
"""

from __future__ import annotations

from typing import Optional

from repro.er.model import Cardinality, ERSchema, Relationship
from repro.er.validation import require_valid
from repro.errors import ERModelError
from repro.relational.catalog import Database
from repro.relational.constraints import ForeignKeyConstraint
from repro.relational.schema import Column, RelationSchema


def _entity_relation(schema: ERSchema, entity_name: str) -> RelationSchema:
    entity = schema.entity(entity_name)
    columns = [
        Column(a.name, a.domain, a.doc) for a in entity.attributes
    ]
    return RelationSchema(entity.name, columns, key=entity.key, doc=entity.doc)


def _qualified(role: str, attribute: str) -> str:
    """Foreign-key column name contributed by one participant."""
    return f"{role}_{attribute}"


def _relationship_relation(
    schema: ERSchema, relationship: Relationship
) -> RelationSchema:
    columns: list[Column] = []
    key_columns: list[str] = []
    for participant in relationship.participants:
        entity = schema.entity(participant.entity_name)
        for key_attr in entity.key:
            name = _qualified(participant.role, key_attr)
            columns.append(Column(name, entity.attribute(key_attr).domain))
            key_columns.append(name)
    for attribute in relationship.attributes:
        if any(c.name == attribute.name for c in columns):
            raise ERModelError(
                f"relationship {relationship.name!r} attribute "
                f"{attribute.name!r} collides with a foreign-key column"
            )
        columns.append(Column(attribute.name, attribute.domain, attribute.doc))
    return RelationSchema(
        relationship.name, columns, key=key_columns, doc=relationship.doc
    )


def _one_to_many_fold_target(relationship: Relationship) -> Optional[int]:
    """Index of the MANY participant if the relationship is binary 1:N.

    Returns None when the relationship cannot be folded (not binary,
    carries attributes, or is not 1:N).
    """
    if len(relationship.participants) != 2 or relationship.attributes:
        return None
    cards = [p.cardinality for p in relationship.participants]
    if cards.count(Cardinality.ONE) != 1:
        return None
    return cards.index(Cardinality.MANY)


def er_to_relational(
    schema: ERSchema,
    database_name: Optional[str] = None,
    validate: bool = True,
) -> Database:
    """Instantiate an ER schema as a relational database.

    Returns a :class:`~repro.relational.catalog.Database` containing one
    relation per entity, relationship relations where needed, and foreign
    key constraints wiring them together.
    """
    if validate:
        require_valid(schema)
    database = Database(database_name or schema.name)

    folded: dict[str, tuple[Relationship, int]] = {}
    for relationship in schema.relationships:
        fold_index = _one_to_many_fold_target(relationship)
        if fold_index is not None:
            folded[relationship.name] = (relationship, fold_index)

    # Entities first; folded 1:N relationships extend the MANY side.
    for entity in schema.entities:
        relation_schema = _entity_relation(schema, entity.name)
        extra_columns: list[Column] = []
        for relationship, fold_index in folded.values():
            many = relationship.participants[fold_index]
            if many.entity_name != entity.name:
                continue
            one = relationship.participants[1 - fold_index]
            one_entity = schema.entity(one.entity_name)
            for key_attr in one_entity.key:
                extra_columns.append(
                    Column(
                        _qualified(one.role, key_attr),
                        one_entity.attribute(key_attr).domain,
                    )
                )
        if extra_columns:
            relation_schema = RelationSchema(
                relation_schema.name,
                list(relation_schema.columns) + extra_columns,
                key=relation_schema.key,
                doc=relation_schema.doc,
            )
        database.create_relation(relation_schema)

    # Relationship relations for everything not folded.
    for relationship in schema.relationships:
        if relationship.name in folded:
            continue
        database.create_relation(_relationship_relation(schema, relationship))

    # Foreign keys: relationship relations reference their participants.
    for relationship in schema.relationships:
        if relationship.name in folded:
            rel, fold_index = folded[relationship.name]
            many = rel.participants[fold_index]
            one = rel.participants[1 - fold_index]
            one_entity = schema.entity(one.entity_name)
            columns = [_qualified(one.role, k) for k in one_entity.key]
            database.add_constraint(
                ForeignKeyConstraint(
                    f"fk_{many.entity_name}_{rel.name}",
                    many.entity_name,
                    columns,
                    one.entity_name,
                    list(one_entity.key),
                )
            )
            continue
        for participant in relationship.participants:
            entity = schema.entity(participant.entity_name)
            columns = [_qualified(participant.role, k) for k in entity.key]
            database.add_constraint(
                ForeignKeyConstraint(
                    f"fk_{relationship.name}_{participant.role}",
                    relationship.name,
                    columns,
                    participant.entity_name,
                    list(entity.key),
                )
            )
    return database
