"""Well-formedness validation for ER schemas.

:func:`validate_er_schema` collects *all* problems rather than stopping
at the first, so a design session can present the full list to the
design team (the methodology's Step 1 quality gate).
"""

from __future__ import annotations

from repro.er.model import ERSchema
from repro.errors import ERValidationError


def validate_er_schema(schema: ERSchema, require_keys: bool = True) -> list[str]:
    """Check an ER schema and return a list of problem descriptions.

    An empty list means the schema is well-formed.  Checks:

    - every entity has at least one attribute;
    - every entity has an identifying key (unless ``require_keys`` False);
    - relationship participants reference existing entities (enforced at
      construction, re-checked here for schemas built by deserialization);
    - relationship attribute names do not collide with the key attributes
      of participating entities (which would make the relational mapping
      ambiguous);
    - entity names and relationship names are disjoint (construction
      enforces it; re-checked defensively).
    """
    problems: list[str] = []

    entity_names = {e.name for e in schema.entities}
    relationship_names = {r.name for r in schema.relationships}
    overlap = entity_names & relationship_names
    if overlap:
        problems.append(
            f"names used for both entities and relationships: {sorted(overlap)}"
        )

    for entity in schema.entities:
        if not entity.attributes:
            problems.append(f"entity {entity.name!r} has no attributes")
        if require_keys and not entity.key:
            problems.append(f"entity {entity.name!r} has no identifying key")

    for relationship in schema.relationships:
        for participant in relationship.participants:
            if participant.entity_name not in entity_names:
                problems.append(
                    f"relationship {relationship.name!r} references unknown "
                    f"entity {participant.entity_name!r}"
                )
                continue
            entity = schema.entity(participant.entity_name)
            collisions = set(relationship.attribute_names) & set(entity.key)
            if collisions:
                problems.append(
                    f"relationship {relationship.name!r} attribute(s) "
                    f"{sorted(collisions)} collide with key of entity "
                    f"{entity.name!r}"
                )
    return problems


def require_valid(schema: ERSchema, require_keys: bool = True) -> None:
    """Raise :class:`ERValidationError` if the schema has any problems."""
    problems = validate_er_schema(schema, require_keys=require_keys)
    if problems:
        listing = "; ".join(problems)
        raise ERValidationError(
            f"ER schema {schema.name!r} is not well-formed: {listing}"
        )
