"""``python -m repro`` — a self-contained demonstration.

Regenerates the paper's Tables 1-2, runs the four-step methodology on
the Figure 3 trading example, and executes one quality-filtered QSQL
query, printing everything.  A smoke test of the installed package.
"""

from __future__ import annotations

from repro.experiments.scenarios import (
    run_trading_methodology,
    table1_relation,
    table2_relation,
)
from repro.sql import execute


def main() -> None:
    print(table1_relation().render(title="Table 1: Customer information"))
    print()
    print(
        table2_relation().render(
            title="Table 2: Customer information with quality tags"
        )
    )
    print()

    modeling = run_trading_methodology()
    print(modeling.quality_views[0].render(title="Figure 5: Quality view"))
    print()

    query = (
        "SELECT co_name, employees FROM customer "
        "WHERE QUALITY(employees.source) <> 'estimate'"
    )
    print(f"QSQL> {query}")
    print(execute(query, table2_relation()).render())


if __name__ == "__main__":
    main()
