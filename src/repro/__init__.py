"""repro — a reproduction of Wang, Kon & Madnick's ICDE 1993 paper
*Data Quality Requirements Analysis and Modeling*.

The library implements the paper's contribution and every substrate it
stands on:

- :mod:`repro.core` — the four-step data quality requirements
  methodology (application view → parameter view → quality view →
  integrated quality schema), the §1.3 terminology, the Appendix-A
  candidate attribute catalog, the §2 premises as executable analyses,
  and user-defined indicator→parameter mappings;
- :mod:`repro.er` — entity-relationship modeling (Step 1's substrate),
  ASCII diagram rendering for the paper's figures, and ER→relational
  translation;
- :mod:`repro.relational` — an in-memory relational engine with typed
  schemas, algebra, integrity constraints, transactions, and a catalog;
- :mod:`repro.tagging` — the attribute-based cell-tagging model [28]:
  quality cells, tag schemas, a quality-extended algebra, and
  indicator-constrained queries;
- :mod:`repro.polygen` — the polygen source-tagging model [24][25] over
  a simulated multi-database federation;
- :mod:`repro.quality` — dimension metrics, assessment, stored quality
  profiles and grade-based filtering, the data quality administrator,
  the electronic audit trail, inspection mechanisms, SPC, and
  data-entry controls;
- :mod:`repro.linkage` — Fellegi–Sunter record linkage (duplicate
  detection as an administration tool);
- :mod:`repro.manufacturing` — the deterministic simulated data
  manufacturing world behind the experiments;
- :mod:`repro.experiments` — scenario builders and reporting used by
  the benchmark suite to regenerate every table and figure.

Quickstart
----------
>>> from repro.experiments.scenarios import table2_relation
>>> from repro.tagging import QualityQuery
>>> rel = table2_relation()
>>> QualityQuery(rel).require("employees", "source", "!=", "estimate").values()
[{'co_name': 'Fruit Co', 'address': '12 Jay St', 'employees': 4004}]
"""

from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["ReproError", "__version__"]
