"""QSQL logical plan IR.

The planner lowers a parsed :class:`~repro.sql.nodes.SelectStatement`
into a tree of plan nodes, which the optimizer
(:mod:`repro.sql.optimizer`) rewrites and the physical executor
(:mod:`repro.sql.physical`) compiles into batch operators.  Plan nodes
are plain immutable dataclasses; rewriting builds new trees.

Node vocabulary:

- :class:`Scan` — read every row of the FROM relation;
- :class:`QualityFilter` — a conjunction of indicator constraints
  routed through the relation's :class:`ColumnarTagStore` arrays
  (always sits directly above a :class:`Scan`);
- :class:`Filter` — a residual row predicate (compiled closure);
- :class:`Project` — projection/renaming, including materialized
  ``QUALITY(...)`` value columns;
- :class:`HashJoin` — equi-join with an explicit build side (built by
  the programmatic :func:`join_plan` API — QSQL's grammar is
  single-relation);
- :class:`Aggregate` — GROUP BY + aggregate evaluation;
- :class:`Sort` / :class:`TopK` — full ordering vs. fused
  ORDER BY + LIMIT via a bounded heap;
- :class:`Distinct`, :class:`Limit` — duplicate elimination, row cap;
- :class:`Materialize` — the boundary between columnar (array +
  selection-vector batches) and row-at-a-time execution: everything
  below it runs over column arrays, everything above it sees ``Row``
  objects, built late and only for the surviving positions.

``render_plan`` produces the tree text that ``EXPLAIN SELECT ...``
returns.

Every node also derives its output schema: ``output_columns(inputs)``
maps the children's column-name tuples to the node's own (``None``
propagates "unknown" — e.g. a scan of a relation the context cannot
resolve).  :func:`derive_plan_columns` runs the derivation bottom-up
over a whole tree; the optimizer's join annotations and the plan-IR
static verifier (:mod:`repro.analysis.verifier`) both consume it, so
there is exactly one definition of what each operator produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from repro.sql.nodes import (
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    NotOp,
    OrderItem,
    QualityRef,
    QualityScoreRef,
    SelectItem,
    SelectStatement,
)

PlanNode = Union[
    "Scan",
    "QualityFilter",
    "ScoreFilter",
    "Filter",
    "Project",
    "HashJoin",
    "Aggregate",
    "Sort",
    "TopK",
    "Distinct",
    "Limit",
    "Materialize",
]

#: Derived column names of a subtree, or None when underivable (an
#: unresolvable base relation somewhere below).
Columns = Optional[tuple[str, ...]]


@dataclass(frozen=True)
class Scan:
    """Read all rows of one named relation.

    With ``columnar=True`` (chosen by the optimizer's access-path
    costing) the scan emits the relation's per-column value arrays
    plus a selection vector instead of row tuples; the operators above
    it up to the enclosing :class:`Materialize` run batch-at-a-time.

    ``partitions`` (set by the optimizer's ``prune_partitions``
    rewrite) statically restricts the scan to the named buckets of a
    partitioned relation: ``partitions`` is the ascending tuple of
    surviving bucket ids, ``partition_total`` the layout's bucket
    count, and ``partition_key`` the declared partition column.  A
    ``None`` partitions field means "scan everything" (the only legal
    state for unpartitioned relations).
    """

    relation: str
    tagged: bool = False
    columnar: bool = False
    partitions: Optional[tuple[int, ...]] = None
    partition_total: int = 0
    partition_key: Optional[str] = None

    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def label(self) -> str:
        flavor = "tagged" if self.tagged else "plain"
        if self.columnar:
            flavor += ", columnar"
        if self.partitions is not None:
            flavor += (
                f", partitions={len(self.partitions)}/{self.partition_total}"
            )
        return f"Scan [{self.relation} ({flavor})]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return tuple(base) if base is not None else None


#: One columnar tag constraint: (column, indicator, operator, operand).
#: Operators use the :data:`repro.tagging.query.OPERATORS` vocabulary.
QualityConstraint = tuple[str, str, str, Any]


@dataclass(frozen=True)
class QualityFilter:
    """Indicator constraints pushed into columnar tag-array scans."""

    child: PlanNode
    constraints: tuple[QualityConstraint, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        rendered = " AND ".join(
            f"QUALITY({column}.{indicator}) {op} {operand!r}"
            for column, indicator, op, operand in self.constraints
        )
        return f"QualityFilter [{rendered} -> columnar scan]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return inputs[0]


#: One materialized-score constraint: (parameter, operator, operand).
#: Operators use the :data:`repro.tagging.query.OPERATORS` vocabulary.
ScoreConstraint = tuple[str, str, Any]


@dataclass(frozen=True)
class ScoreFilter:
    """Parameter-score constraints pushed into materialized score arrays.

    The constraints evaluate against the relation's
    :class:`~repro.quality.materialize.ScoreMaterializer` columns rather
    than per-row scorer invocations; the optimizer only builds this node
    when the scan's relation has a bound scoring profile defining every
    referenced parameter.
    """

    child: PlanNode
    constraints: tuple[ScoreConstraint, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        rendered = " AND ".join(
            f"QUALITY({parameter}) {op} {operand!r}"
            for parameter, op, operand in self.constraints
        )
        return f"ScoreFilter [{rendered} -> materialized scores]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return inputs[0]


@dataclass(frozen=True)
class Filter:
    """A residual row predicate (whatever could not be pushed down)."""

    child: PlanNode
    predicate: Union[Expr, Literal]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter [{render_expr(self.predicate)}]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return inputs[0]


@dataclass(frozen=True)
class Project:
    """Projection (and renaming); may materialize QUALITY(...) columns."""

    child: PlanNode
    items: tuple[SelectItem, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        parts = []
        for item in self.items:
            text = render_operand(item.expr)
            if item.alias:
                text = f"{text} AS {item.alias}"
            parts.append(text)
        return f"Project [{', '.join(parts)}]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return tuple(item.output_name for item in self.items)


@dataclass(frozen=True)
class HashJoin:
    """Equi-join: build a hash index on one side, probe with the other.

    ``build_side`` is chosen by the optimizer (smaller estimated
    cardinality); ``left_columns``/``right_columns`` record each input's
    column names so predicate pushdown can classify conjuncts.
    """

    left: PlanNode
    right: PlanNode
    on: tuple[tuple[str, str], ...]
    build_side: Optional[str] = None  # "left" | "right" | None (undecided)
    left_columns: tuple[str, ...] = ()
    right_columns: tuple[str, ...] = ()

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        keys = ", ".join(f"{lcol} = {rcol}" for lcol, rcol in self.on)
        side = self.build_side or "undecided"
        return f"HashJoin [{keys}, build={side}]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        left, right = inputs
        if left is None or right is None:
            return None
        return left + right


@dataclass(frozen=True)
class Aggregate:
    """GROUP BY + aggregate evaluation (always yields a plain output)."""

    child: PlanNode
    group_by: tuple[Union[ColumnRef, QualityRef], ...]
    items: tuple[SelectItem, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        rendered = ", ".join(render_operand(item.expr) for item in self.items)
        if self.group_by:
            keys = ", ".join(render_operand(key) for key in self.group_by)
            return f"Aggregate [{rendered} GROUP BY {keys}]"
        return f"Aggregate [{rendered}]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return tuple(item.output_name for item in self.items)


@dataclass(frozen=True)
class Sort:
    """Full stable multi-key sort."""

    child: PlanNode
    order_by: tuple[OrderItem, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Sort [{_render_order(self.order_by)}]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return inputs[0]


@dataclass(frozen=True)
class TopK:
    """Fused ORDER BY + LIMIT: a bounded heap instead of a full sort."""

    child: PlanNode
    order_by: tuple[OrderItem, ...]
    count: int

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"TopK [{_render_order(self.order_by)}, k={self.count}]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return inputs[0]


@dataclass(frozen=True)
class Distinct:
    """Duplicate elimination (tag-merging on tagged inputs)."""

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Distinct"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return inputs[0]


@dataclass(frozen=True)
class Limit:
    """Keep the first ``count`` rows."""

    child: PlanNode
    count: int

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Limit [{self.count}]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return inputs[0]


@dataclass(frozen=True)
class Materialize:
    """Late materialization: columnar batch → ``Row`` objects.

    The explicit boundary of a columnar pipeline fragment.  Its child
    subtree carries ``(column arrays, selection vector)`` batches; this
    operator gathers the selected positions and builds validated rows
    via the trusted constructor — the only place the columnar path pays
    per-row object cost.
    """

    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "Materialize [columnar -> rows]"

    def output_columns(self, inputs: tuple[Columns, ...], base: Columns = None) -> Columns:
        return inputs[0]


# -- schema derivation -------------------------------------------------------


def derive_plan_columns(
    plan: PlanNode, resolve: Callable[[str], Columns]
) -> Columns:
    """Bottom-up output-column derivation over a whole plan tree.

    ``resolve(name)`` supplies base-relation column names for each
    :class:`Scan` (return None for relations the context cannot see);
    unknowns propagate upward as None, except through operators whose
    output is fixed by their own items (Project, Aggregate).
    """
    inputs = tuple(
        derive_plan_columns(child, resolve) for child in plan.children()
    )
    if isinstance(plan, Scan):
        return plan.output_columns(inputs, resolve(plan.relation))
    return plan.output_columns(inputs)


# -- statement lowering ------------------------------------------------------


def logical_plan(statement: SelectStatement, tagged: bool) -> PlanNode:
    """Lower a parsed statement into the unoptimized logical plan.

    The pipeline mirrors the reference executor's clause order exactly:
    scan → filter → (aggregate | sort) → project → distinct → limit,
    with ORDER BY evaluated *before* projection so order keys may name
    non-projected columns.
    """
    plan: PlanNode = Scan(statement.relation, tagged)
    if statement.where is not None:
        plan = Filter(plan, statement.where)
    if statement.has_aggregates:
        items = statement.select_items or ()
        plan = Aggregate(plan, statement.group_by, items)
        if statement.order_by:
            plan = Sort(plan, statement.order_by)
        if statement.limit is not None:
            plan = Limit(plan, statement.limit)
        return plan
    if statement.order_by:
        plan = Sort(plan, statement.order_by)
    if statement.select_items is not None:
        plan = Project(plan, statement.select_items)
    if statement.distinct:
        plan = Distinct(plan)
    if statement.limit is not None:
        plan = Limit(plan, statement.limit)
    return plan


# -- rendering ---------------------------------------------------------------


def render_operand(operand: Any) -> str:
    """Source-like text for an operand/select expression."""
    if isinstance(operand, Literal):
        value = operand.value
        return "NULL" if value is None else repr(value)
    if isinstance(operand, ColumnRef):
        return operand.column
    if isinstance(operand, QualityRef):
        return f"QUALITY({operand.column}.{operand.indicator})"
    if isinstance(operand, QualityScoreRef):
        return f"QUALITY({operand.parameter})"
    # AggregateCall
    if operand.operand is None:
        return f"{operand.func}(*)"
    return f"{operand.func}({render_operand(operand.operand)})"


def render_expr(expr: Any) -> str:
    """Source-like text for a WHERE subtree."""
    if isinstance(expr, Literal):
        return render_operand(expr)
    if isinstance(expr, Comparison):
        return (
            f"{render_operand(expr.left)} {expr.op} "
            f"{render_operand(expr.right)}"
        )
    if isinstance(expr, InList):
        options = ", ".join(
            "NULL" if option is None else repr(option)
            for option in expr.options
        )
        keyword = "NOT IN" if expr.negated else "IN"
        return f"{render_operand(expr.operand)} {keyword} ({options})"
    if isinstance(expr, IsNull):
        keyword = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{render_operand(expr.operand)} {keyword}"
    if isinstance(expr, BoolOp):
        return (
            f"({render_expr(expr.left)} {expr.op} {render_expr(expr.right)})"
        )
    if isinstance(expr, NotOp):
        return f"NOT ({render_expr(expr.operand)})"
    return repr(expr)


def _render_order(order_by: tuple[OrderItem, ...]) -> str:
    return ", ".join(
        f"{render_operand(item.key)} {'DESC' if item.descending else 'ASC'}"
        for item in order_by
    )


def render_plan(plan: PlanNode) -> list[str]:
    """The plan tree as indented text lines (the EXPLAIN output)."""
    lines: list[str] = []

    def walk(node: PlanNode, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(node.label())
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(f"{prefix}{connector}{node.label()}")
            child_prefix = prefix + ("   " if is_last else "│  ")
        children = node.children()
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(plan, "", True, True)
    return lines
