"""QSQL plan optimizer: rewrite rules over the logical plan IR.

Each rule is a standalone function ``rule(plan, ...) -> plan`` so tests
can exercise one rewrite at a time; :func:`optimize` chains them in a
fixed order.  All rules are semantics-preserving with respect to the
reference executor:

- :func:`fold_constants` — evaluate constant predicates at plan time
  using the executor's exact comparison semantics (NULL never matches,
  ``TypeError`` → false) and simplify AND/OR/NOT around the results;
- :func:`push_quality_predicates` — split a WHERE conjunction over a
  tagged scan and route ``QUALITY(col.ind) <op> literal`` conjuncts
  into a :class:`~repro.sql.plan.QualityFilter` (a
  :class:`ColumnarTagStore` array scan) ahead of the residual
  row predicate.  Only indicators the tag schema allows on the column
  are routed: an unknown indicator reads as NULL per-cell (never
  matches) but would raise in the store;
- :func:`prune_partitions` — turn equality/range/IN conjuncts on a
  partitioned relation's declared partition key into static partition
  elimination: the :class:`~repro.sql.plan.Scan` records the surviving
  bucket set (EXPLAIN shows ``partitions=k/N``) and the physical
  executor feeds only those shards.  The predicate itself is kept, so
  pruning is purely an access-path restriction;
- :func:`push_score_predicates` — route ``QUALITY(parameter) <op>
  literal`` conjuncts over a tagged scan with a bound scoring profile
  into a :class:`~repro.sql.plan.ScoreFilter` (a scan over the
  relation's materialized parameter-score arrays);
- :func:`annotate_join_columns` / :func:`push_value_predicates` — move
  single-side conjuncts of a filter above a :class:`HashJoin` below
  the join, shrinking both build and probe inputs;
- :func:`prune_projections` — narrow join inputs to the columns the
  query actually consumes (projected + join keys + filtered);
- :func:`choose_build_side` — build the hash index on the side with
  the smaller estimated cardinality;
- :func:`fuse_topk` — rewrite LIMIT over ORDER BY into a bounded-heap
  :class:`~repro.sql.plan.TopK` (``heapq.nsmallest`` instead of a
  full sort);
- :func:`choose_access_paths` — cost each plain-relation scan fragment
  and, where batch execution wins, flip the :class:`~repro.sql.plan.Scan`
  to columnar and bound the fragment with a
  :class:`~repro.sql.plan.Materialize` (late row materialization).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping, Optional, Union

from repro.sql.nodes import (
    BoolOp,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    NotOp,
    QualityRef,
    QualityScoreRef,
    SelectItem,
)
from repro.relational.relation import Relation
from repro.sql.plan import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Materialize,
    PlanNode,
    Project,
    QualityFilter,
    Scan,
    ScoreFilter,
    Sort,
    TopK,
    derive_plan_columns,
)
from repro.tagging.relation import TaggedRelation

#: QSQL comparison operator → tagging-store operator vocabulary.
_TAG_OPS = {"=": "==", "<>": "!=", "!=": "!=", "<": "<", "<=": "<=",
            ">": ">", ">=": ">="}
#: Mirror of each comparison when its operands swap sides.
_FLIPPED = {"=": "=", "<>": "<>", "!=": "!=", "<": ">", "<=": ">=",
            ">": "<", ">=": "<="}

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class PlanContext:
    """What the optimizer may know about the plan's base relations."""

    relations: Mapping[str, Any]

    @classmethod
    def from_relations(cls, relations: Mapping[str, Any]) -> "PlanContext":
        return cls(dict(relations))

    def relation(self, name: str) -> Any:
        return self.relations.get(name)

    def cardinality(self, name: str) -> int:
        relation = self.relations.get(name)
        return len(relation) if relation is not None else 0

    def tag_schema(self, name: str):
        relation = self.relations.get(name)
        if isinstance(relation, TaggedRelation):
            return relation.tag_schema
        return None

    def schema(self, name: str):
        relation = self.relations.get(name)
        return relation.schema if relation is not None else None


def _transform(plan: PlanNode, visit: Callable[[PlanNode], PlanNode]) -> PlanNode:
    """Apply ``visit`` bottom-up over the plan tree."""
    if isinstance(plan, HashJoin):
        plan = replace(
            plan,
            left=_transform(plan.left, visit),
            right=_transform(plan.right, visit),
        )
    elif plan.children():
        plan = replace(plan, child=_transform(plan.child, visit))
    return visit(plan)


# -- constant folding --------------------------------------------------------


def _literal_compare(op: str, a: Any, b: Any) -> bool:
    """The executor's comparison semantics, applied to two constants."""
    if a is None or b is None:
        return False
    try:
        return _COMPARATORS[op](a, b)
    except TypeError:
        return False


def fold_expr(expr: Any) -> Any:
    """Fold constant subtrees of a WHERE expression to boolean literals."""
    if isinstance(expr, Comparison):
        if isinstance(expr.left, Literal) and isinstance(expr.right, Literal):
            return Literal(
                _literal_compare(expr.op, expr.left.value, expr.right.value)
            )
        return expr
    if isinstance(expr, InList):
        if isinstance(expr.operand, Literal):
            value = expr.operand.value
            if value is None:
                return Literal(False)
            result = value in expr.options
            return Literal((not result) if expr.negated else result)
        return expr
    if isinstance(expr, IsNull):
        if isinstance(expr.operand, Literal):
            is_null = expr.operand.value is None
            return Literal((not is_null) if expr.negated else is_null)
        return expr
    if isinstance(expr, BoolOp):
        left = fold_expr(expr.left)
        right = fold_expr(expr.right)
        if expr.op == "AND":
            if isinstance(left, Literal):
                return right if left.value else Literal(False)
            if isinstance(right, Literal):
                return left if right.value else Literal(False)
        else:  # OR
            if isinstance(left, Literal):
                return Literal(True) if left.value else right
            if isinstance(right, Literal):
                return Literal(True) if right.value else left
        if left is expr.left and right is expr.right:
            return expr
        return BoolOp(expr.op, left, right, span=expr.span)
    if isinstance(expr, NotOp):
        inner = fold_expr(expr.operand)
        if isinstance(inner, Literal):
            return Literal(not inner.value)
        if inner is expr.operand:
            return expr
        return NotOp(inner, span=expr.span)
    return expr


def fold_constants(plan: PlanNode) -> PlanNode:
    """Fold every Filter predicate; drop filters that become TRUE."""

    def visit(node: PlanNode) -> PlanNode:
        if not isinstance(node, Filter):
            return node
        predicate = fold_expr(node.predicate)
        if isinstance(predicate, Literal) and predicate.value:
            return node.child
        if predicate is node.predicate:
            return node
        return Filter(node.child, predicate)

    return _transform(plan, visit)


# -- quality-predicate pushdown ----------------------------------------------


def split_conjuncts(expr: Any) -> list[Any]:
    """Top-level AND conjuncts of an expression, left to right."""
    if isinstance(expr, BoolOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def join_conjuncts(conjuncts: list[Any]) -> Any:
    """Re-AND conjuncts (left-associative, like the parser)."""
    result = conjuncts[0]
    for conjunct in conjuncts[1:]:
        result = BoolOp("AND", result, conjunct)
    return result


def _as_quality_constraint(conjunct: Any, tag_schema) -> Optional[tuple]:
    """(column, indicator, op, operand) when the conjunct can route
    through the columnar store with identical semantics, else None."""
    if isinstance(conjunct, Comparison):
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(right, QualityRef) and isinstance(left, Literal):
            left, right = right, left
            op = _FLIPPED[op]
        if not (isinstance(left, QualityRef) and isinstance(right, Literal)):
            return None
        # A NULL literal: `!=` would match every tagged row in the store
        # but never matches per-cell — don't route.
        if right.value is None:
            return None
        tag_op = _TAG_OPS.get(op)
        if tag_op is None:
            return None
        quality = left
        operand = right.value
    elif isinstance(conjunct, InList) and isinstance(
        conjunct.operand, QualityRef
    ):
        quality = conjunct.operand
        tag_op = "not in" if conjunct.negated else "in"
        operand = conjunct.options
    else:
        return None
    # Unknown indicators read as NULL per-cell (never match) but raise
    # in the store — keep them in the residual predicate.
    try:
        allowed = tag_schema.allowed_for(quality.column)
    except Exception:
        return None
    if quality.indicator not in allowed:
        return None
    return (quality.column, quality.indicator, tag_op, operand)


def push_quality_predicates(plan: PlanNode, context: PlanContext) -> PlanNode:
    """Route QUALITY-vs-literal conjuncts over tagged scans into the
    columnar store; the residual predicate stays a row Filter above."""

    def visit(node: PlanNode) -> PlanNode:
        if not (isinstance(node, Filter) and isinstance(node.child, Scan)):
            return node
        scan = node.child
        if not scan.tagged:
            return node
        tag_schema = context.tag_schema(scan.relation)
        if tag_schema is None:
            return node
        constraints: list[tuple] = []
        residual: list[Any] = []
        for conjunct in split_conjuncts(node.predicate):
            constraint = _as_quality_constraint(conjunct, tag_schema)
            if constraint is None:
                residual.append(conjunct)
            else:
                constraints.append(constraint)
        if not constraints:
            return node
        rewritten: PlanNode = QualityFilter(scan, tuple(constraints))
        if residual:
            rewritten = Filter(rewritten, join_conjuncts(residual))
        return rewritten

    return _transform(plan, visit)


# -- partition pruning -------------------------------------------------------


def derive_partition_buckets(spec, predicate: Any) -> Optional[frozenset]:
    """Buckets of ``spec`` that can hold predicate-matching rows.

    Returns ``None`` when the predicate implies no restriction (the
    scan must read every bucket) and a — possibly empty — frozenset of
    bucket ids otherwise.  The derivation is deliberately conservative:
    a surviving superset is always sound because the row predicate is
    still applied above the scan.  Per-conjunct rules:

    - ``key = literal`` → the literal's bucket (NULL → match nothing);
    - ``key IN (...)`` → union over non-NULL options;
    - ``key < / <= / > / >= literal`` → a bucket prefix/suffix, range
      layouts only (hash buckets carry no order);
    - ``key IS NULL`` → the NULL bucket;
    - ``AND`` intersects, ``OR`` unions (underivable OR sides poison
      the union); anything else derives no restriction.

    The same function backs both the optimizer rewrite and the DQ410
    legality check in :mod:`repro.analysis.verifier`, so "what the
    planner may prune" and "what the verifier accepts" cannot drift.
    """

    def column_literal(comparison: Comparison) -> Optional[tuple[str, Any]]:
        left, right, op = comparison.left, comparison.right, comparison.op
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            left, right = right, left
            op = _FLIPPED[op]
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            return None
        if left.column != spec.column:
            return None
        return op, right.value

    def derive(expr: Any) -> Optional[frozenset]:
        if isinstance(expr, Literal):
            return None if expr.value else frozenset()
        if isinstance(expr, Comparison):
            normalized = column_literal(expr)
            if normalized is None:
                return None
            op, value = normalized
            if value is None:
                return frozenset()  # comparisons with NULL never match
            if op == "=":
                try:
                    return frozenset({spec.bucket_of(value)})
                except TypeError:
                    return None
            if spec.kind == "range" and op in ("<", "<=", ">", ">="):
                try:
                    pivot = spec.bucket_of(value)
                except TypeError:
                    return None
                if op in ("<", "<="):
                    return frozenset(range(pivot + 1))
                return frozenset(range(pivot, spec.count))
            return None
        if isinstance(expr, InList):
            if expr.negated:
                return None
            operand = expr.operand
            if not (
                isinstance(operand, ColumnRef)
                and operand.column == spec.column
            ):
                return None
            buckets: set[int] = set()
            try:
                for option in expr.options:
                    if option is None:
                        continue  # NULL options never match
                    buckets.add(spec.bucket_of(option))
            except TypeError:
                return None
            return frozenset(buckets)
        if isinstance(expr, IsNull):
            if expr.negated:
                return None
            operand = expr.operand
            if not (
                isinstance(operand, ColumnRef)
                and operand.column == spec.column
            ):
                return None
            return frozenset({spec.bucket_of(None)})
        if isinstance(expr, BoolOp):
            left = derive(expr.left)
            right = derive(expr.right)
            if expr.op == "AND":
                if left is None:
                    return right
                if right is None:
                    return left
                return left & right
            if left is None or right is None:
                return None
            return left | right
        return None

    return derive(predicate)


def prune_partitions(plan: PlanNode, context: PlanContext) -> PlanNode:
    """Statically eliminate partitions a Filter predicate cannot reach.

    Fires on ``Filter(Scan)`` and ``Filter(QualityFilter(Scan))`` (the
    shape :func:`push_quality_predicates` leaves behind) when the base
    relation declares a partition layout.  The scan records the
    surviving bucket tuple plus the layout's total and key; the Filter
    stays in place, so the rewrite can only shrink the rows fed to it.
    """

    def visit(node: PlanNode) -> PlanNode:
        if not isinstance(node, Filter):
            return node
        child = node.child
        if isinstance(child, Scan):
            scan = child
        elif isinstance(child, QualityFilter) and isinstance(
            child.child, Scan
        ):
            scan = child.child
        else:
            return node
        if scan.partitions is not None:
            return node
        relation = context.relation(scan.relation)
        spec = getattr(relation, "partition_spec", None)
        if spec is None:
            return node
        buckets = derive_partition_buckets(spec, node.predicate)
        if buckets is None or len(buckets) == spec.count:
            return node
        pruned = replace(
            scan,
            partitions=tuple(sorted(buckets)),
            partition_total=spec.count,
            partition_key=spec.column,
        )
        if child is scan:
            return replace(node, child=pruned)
        return replace(node, child=replace(child, child=pruned))

    return _transform(plan, visit)


# -- score-predicate pushdown ------------------------------------------------


def _as_score_constraint(conjunct: Any, profile) -> Optional[tuple]:
    """(parameter, op, operand) when the conjunct can route through the
    materialized score arrays with identical semantics, else None."""
    if isinstance(conjunct, Comparison):
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(right, QualityScoreRef) and isinstance(left, Literal):
            left, right = right, left
            op = _FLIPPED[op]
        if not (
            isinstance(left, QualityScoreRef) and isinstance(right, Literal)
        ):
            return None
        # A NULL literal never matches per-row; don't route it.
        if right.value is None:
            return None
        tag_op = _TAG_OPS.get(op)
        if tag_op is None:
            return None
        score = left
        operand = right.value
    elif isinstance(conjunct, InList) and isinstance(
        conjunct.operand, QualityScoreRef
    ):
        score = conjunct.operand
        tag_op = "not in" if conjunct.negated else "in"
        operand = conjunct.options
    else:
        return None
    # Unregistered parameters raise per-row in the executor; keep them
    # in the residual predicate so the error surfaces identically.
    if not profile.defines(score.parameter):
        return None
    return (score.parameter, tag_op, operand)


def push_score_predicates(plan: PlanNode, context: PlanContext) -> PlanNode:
    """Route QUALITY(parameter)-vs-literal conjuncts over tagged scans
    into the relation's materialized score arrays.

    Fires on ``Filter(Scan)`` and ``Filter(QualityFilter(Scan))`` (the
    shapes :func:`push_quality_predicates` and :func:`prune_partitions`
    leave behind) when the scan's relation has a bound
    :class:`~repro.quality.materialize.ScoringProfile` defining every
    routed parameter; the residual predicate stays a row Filter above.
    """
    from repro.quality.materialize import profile_for

    def visit(node: PlanNode) -> PlanNode:
        if not isinstance(node, Filter):
            return node
        child = node.child
        if isinstance(child, Scan):
            scan = child
        elif isinstance(child, QualityFilter) and isinstance(
            child.child, Scan
        ):
            scan = child.child
        else:
            return node
        if not scan.tagged:
            return node
        relation = context.relation(scan.relation)
        if relation is None:
            return node
        profile = profile_for(relation)
        if profile is None:
            return node
        constraints: list[tuple] = []
        residual: list[Any] = []
        for conjunct in split_conjuncts(node.predicate):
            constraint = _as_score_constraint(conjunct, profile)
            if constraint is None:
                residual.append(conjunct)
            else:
                constraints.append(constraint)
        if not constraints:
            return node
        rewritten: PlanNode = ScoreFilter(child, tuple(constraints))
        if residual:
            rewritten = Filter(rewritten, join_conjuncts(residual))
        return rewritten

    return _transform(plan, visit)


# -- join rules --------------------------------------------------------------


def _output_columns(node: PlanNode, context: PlanContext) -> tuple[str, ...]:
    """Column names a plan subtree produces (unknowns collapse to ())."""

    def resolve(name: str):
        schema = context.schema(name)
        return tuple(schema.column_names) if schema is not None else None

    derived = derive_plan_columns(node, resolve)
    return derived if derived is not None else ()


def annotate_join_columns(plan: PlanNode, context: PlanContext) -> PlanNode:
    """Record each join input's column names on the HashJoin node (the
    information :func:`push_value_predicates` and
    :func:`prune_projections` classify conjuncts with)."""

    def visit(node: PlanNode) -> PlanNode:
        if not isinstance(node, HashJoin):
            return node
        return replace(
            node,
            left_columns=_output_columns(node.left, context),
            right_columns=_output_columns(node.right, context),
        )

    return _transform(plan, visit)


def _expr_columns(expr: Any) -> Optional[set[str]]:
    """Columns a predicate subtree reads; None when it has a part
    (e.g. a QUALITY reference) that cannot be relocated."""
    if isinstance(expr, Literal):
        return set()
    if isinstance(expr, ColumnRef):
        return {expr.column}
    if isinstance(expr, (QualityRef, QualityScoreRef)):
        return None
    if isinstance(expr, Comparison):
        left = _expr_columns(expr.left)
        right = _expr_columns(expr.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(expr, (InList, IsNull)):
        return _expr_columns(expr.operand)
    if isinstance(expr, BoolOp):
        left = _expr_columns(expr.left)
        right = _expr_columns(expr.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(expr, NotOp):
        return _expr_columns(expr.operand)
    return None


def push_value_predicates(plan: PlanNode) -> PlanNode:
    """Push single-side conjuncts of Filter(HashJoin) below the join.

    Requires the join's ``left_columns``/``right_columns`` annotations
    (see :func:`annotate_join_columns`).
    """

    def visit(node: PlanNode) -> PlanNode:
        if not (isinstance(node, Filter) and isinstance(node.child, HashJoin)):
            return node
        join = node.child
        if not join.left_columns or not join.right_columns:
            return node
        left_cols = set(join.left_columns)
        right_cols = set(join.right_columns)
        to_left: list[Any] = []
        to_right: list[Any] = []
        residual: list[Any] = []
        for conjunct in split_conjuncts(node.predicate):
            used = _expr_columns(conjunct)
            if used is not None and used <= left_cols:
                to_left.append(conjunct)
            elif used is not None and used <= right_cols:
                to_right.append(conjunct)
            else:
                residual.append(conjunct)
        if not to_left and not to_right:
            return node
        left = join.left
        right = join.right
        if to_left:
            left = Filter(left, join_conjuncts(to_left))
        if to_right:
            right = Filter(right, join_conjuncts(to_right))
        rewritten: PlanNode = replace(join, left=left, right=right)
        if residual:
            rewritten = Filter(rewritten, join_conjuncts(residual))
        return rewritten

    return _transform(plan, visit)


def prune_projections(plan: PlanNode, context: PlanContext) -> PlanNode:
    """Narrow join inputs to the columns the plan above consumes.

    Fires on Project(HashJoin) (optionally with filters already pushed
    below the join): each side keeps only projected columns, join keys,
    and columns its own pushed filters read.
    """

    def side_filter_columns(node: PlanNode) -> set[str]:
        used: set[str] = set()
        while isinstance(node, (Filter, QualityFilter, Limit, Distinct)):
            if isinstance(node, Filter):
                columns = _expr_columns(node.predicate)
                if columns is None:
                    return used  # conservatively keep what we saw
                used |= columns
            node = node.children()[0]
        return used

    def prune_side(
        side: PlanNode, columns: tuple[str, ...], needed: set[str]
    ) -> tuple[PlanNode, tuple[str, ...]]:
        keep = tuple(name for name in columns if name in needed)
        if not keep or keep == columns:
            return side, columns
        items = tuple(SelectItem(ColumnRef(name)) for name in keep)
        return Project(side, items), keep

    def visit(node: PlanNode) -> PlanNode:
        if not (isinstance(node, Project) and isinstance(node.child, HashJoin)):
            return node
        join = node.child
        if not join.left_columns or not join.right_columns:
            return node
        needed: set[str] = set()
        for item in node.items:
            if not isinstance(item.expr, ColumnRef):
                return node
            needed.add(item.expr.column)
        for lcol, rcol in join.on:
            needed.add(lcol)
            needed.add(rcol)
        left_needed = needed | side_filter_columns(join.left)
        right_needed = needed | side_filter_columns(join.right)
        left, left_columns = prune_side(
            join.left, join.left_columns, left_needed
        )
        right, right_columns = prune_side(
            join.right, join.right_columns, right_needed
        )
        if left is join.left and right is join.right:
            return node
        return replace(
            node,
            child=replace(
                join,
                left=left,
                right=right,
                left_columns=left_columns,
                right_columns=right_columns,
            ),
        )

    return _transform(plan, visit)


def _estimate(node: PlanNode, context: PlanContext) -> int:
    """A coarse cardinality estimate (base-relation sizes, limit caps)."""
    if isinstance(node, Scan):
        return context.cardinality(node.relation)
    if isinstance(node, (Limit, TopK)):
        return min(node.count, _estimate(node.children()[0], context))
    if isinstance(node, HashJoin):
        return max(
            _estimate(node.left, context), _estimate(node.right, context)
        )
    children = node.children()
    return _estimate(children[0], context) if children else 0


def choose_build_side(plan: PlanNode, context: PlanContext) -> PlanNode:
    """Build each hash index on the smaller estimated input."""

    def visit(node: PlanNode) -> PlanNode:
        if not isinstance(node, HashJoin) or node.build_side is not None:
            return node
        left = _estimate(node.left, context)
        right = _estimate(node.right, context)
        return replace(
            node, build_side="left" if left < right else "right"
        )

    return _transform(plan, visit)


# -- limit/sort fusion -------------------------------------------------------


def fuse_topk(plan: PlanNode) -> PlanNode:
    """LIMIT over ORDER BY → bounded heap (through 1:1 projections)."""

    def visit(node: PlanNode) -> PlanNode:
        if not isinstance(node, Limit):
            return node
        child = node.child
        if isinstance(child, Sort):
            return TopK(child.child, child.order_by, node.count)
        if isinstance(child, Project) and isinstance(child.child, Sort):
            sort = child.child
            return Project(
                TopK(sort.child, sort.order_by, node.count), child.items
            )
        return node

    return _transform(plan, visit)


# -- access-path selection ---------------------------------------------------

#: Below this many rows the row path's lower fixed cost wins: building
#: (or even consulting) the columnar store and running vectorized loops
#: has setup overhead that tiny relations never amortize.  Tests may
#: monkeypatch this to 0 to force columnar plans on small fixtures.
COLUMNAR_MIN_ROWS = 64


def _vectorizable_chain(
    node: PlanNode, context: PlanContext
) -> Optional[tuple[list[PlanNode], Scan]]:
    """The operator chain from ``node`` down to an eligible plain Scan.

    Returns ``(chain, scan)`` — ``chain`` top-down, excluding the scan —
    when every operator between ``node`` and the scan runs batch-at-a-
    time over column arrays with semantics identical to the row path:

    - ``Filter`` whose predicate reads only columns/literals (QUALITY
      references need per-cell tags, which plain relations lack anyway);
    - ``Project`` of bare column references (renaming is free on
      arrays; computed QUALITY items are not);
    - ``TopK`` / ``Limit`` keyed on bare columns — they only shrink the
      selection vector.

    Costing: the fragment must contain at least one Filter or Project
    (a bare scan, or Limit/TopK alone, is already O(1)/O(n) over the
    backing row list — transposing to arrays would only add work), and
    the base relation must be a plain :class:`Relation` with at least
    :data:`COLUMNAR_MIN_ROWS` rows at plan time.
    """
    chain: list[PlanNode] = []
    worthwhile = False
    while not isinstance(node, Scan):
        if isinstance(node, Filter):
            if _expr_columns(node.predicate) is None:
                return None
            worthwhile = True
        elif isinstance(node, Project):
            if not all(isinstance(i.expr, ColumnRef) for i in node.items):
                return None
            worthwhile = True
        elif isinstance(node, TopK):
            if not all(isinstance(i.key, ColumnRef) for i in node.order_by):
                return None
        elif not isinstance(node, Limit):
            return None
        chain.append(node)
        node = node.children()[0]
    if not worthwhile or node.tagged or node.columnar:
        return None
    relation = context.relation(node.relation)
    if not isinstance(relation, Relation):
        return None
    if len(relation) < COLUMNAR_MIN_ROWS:
        return None
    return chain, node


def choose_access_paths(
    plan: PlanNode, context: PlanContext, columnar: bool = True
) -> PlanNode:
    """Flip scan-heavy fragments over plain relations to columnar.

    Top-down: at each node, try to claim the longest vectorizable
    chain ending at an eligible scan; on success the whole fragment is
    rebuilt over ``Scan(columnar=True)`` and bounded by a
    :class:`Materialize`, so EXPLAIN shows exactly where arrays end
    and rows begin.  With ``columnar=False`` (the ``execute(...,
    columnar=False)`` escape hatch) the plan is returned untouched.
    """
    if not columnar:
        return plan

    def visit(node: PlanNode) -> PlanNode:
        claimed = _vectorizable_chain(node, context)
        if claimed is not None:
            chain, scan = claimed
            rebuilt: PlanNode = replace(scan, columnar=True)
            for op in reversed(chain):
                rebuilt = replace(op, child=rebuilt)
            return Materialize(rebuilt)
        if isinstance(node, HashJoin):
            return replace(
                node, left=visit(node.left), right=visit(node.right)
            )
        if node.children():
            return replace(node, child=visit(node.child))
        return node

    return visit(plan)


# -- the pipeline ------------------------------------------------------------


def optimize(
    plan: PlanNode,
    context: PlanContext,
    *,
    columnar: bool = True,
    verify: Optional[bool] = None,
) -> PlanNode:
    """Apply every rewrite rule in its fixed order.

    ``verify=True`` runs the plan-IR static verifier
    (:mod:`repro.analysis.verifier`) over the rewritten tree and raises
    :class:`~repro.analysis.verifier.PlanVerificationError` on any
    error-severity finding; ``verify=None`` (the default) defers to the
    ``REPRO_VERIFY_PLANS`` environment flag.
    """
    plan = fold_constants(plan)
    plan = push_quality_predicates(plan, context)
    plan = prune_partitions(plan, context)
    plan = push_score_predicates(plan, context)
    plan = annotate_join_columns(plan, context)
    plan = push_value_predicates(plan)
    plan = prune_projections(plan, context)
    plan = choose_build_side(plan, context)
    plan = fuse_topk(plan)
    plan = choose_access_paths(plan, context, columnar)
    if verify is None:
        from repro.analysis.verifier import verify_plans_enabled

        verify = verify_plans_enabled()
    if verify:
        from repro.analysis.verifier import assert_plan_verifies

        assert_plan_verifies(plan, context)
    return plan
