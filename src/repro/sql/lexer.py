"""QSQL tokenizer."""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any

from repro.sql.errors import SQLError

#: Token kinds.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
OPERATOR = "OPERATOR"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = {
    "EXPLAIN",
    "ANALYZE",
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "OR",
    "NOT",
    "IN",
    "IS",
    "NULL",
    "TRUE",
    "FALSE",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "LIMIT",
    "QUALITY",
    "DATE",
    "DISTINCT",
    "GROUP",
    "AS",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
}

#: Aggregate-function keywords.
AGGREGATE_KEYWORDS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_PUNCT = "(),.*"
_ASCII_DIGITS = "0123456789"
_IDENT_START = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
_IDENT_CONTINUE = _IDENT_START + _ASCII_DIGITS


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``position``/``end`` are character offsets into the query text
    (``end`` is one past the token's last character), so parse errors
    and analyzer diagnostics can point at the exact source span.
    """

    kind: str
    value: Any
    position: int
    end: int = -1

    @property
    def span(self) -> tuple[int, int]:
        """The ``(start, end)`` character span of this token."""
        if self.end > self.position:
            return (self.position, self.end)
        return (self.position, self.position + 1)

    def matches(self, kind: str, value: Any = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Tokenize a QSQL string; raises :class:`SQLError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        # Operators (longest first).
        matched_op = next(
            (op for op in _OPERATORS if text.startswith(op, index)), None
        )
        if matched_op:
            tokens.append(Token(OPERATOR, matched_op, index, index + len(matched_op)))
            index += len(matched_op)
            continue
        if char in _PUNCT:
            tokens.append(Token(PUNCT, char, index, index + 1))
            index += 1
            continue
        if char == "'":
            index += 1
            start = index
            parts: list[str] = []
            while True:
                if index >= length:
                    raise SQLError(
                        "unterminated string literal", start - 1, length, text
                    )
                if text[index] == "'":
                    # '' is an escaped quote inside the literal.
                    if index + 1 < length and text[index + 1] == "'":
                        parts.append(text[start:index] + "'")
                        index += 2
                        start = index
                        continue
                    parts.append(text[start:index])
                    index += 1
                    break
                index += 1
            tokens.append(Token(STRING, "".join(parts), start - 1, index))
            continue
        if char in _ASCII_DIGITS or (
            char == "-"
            and index + 1 < length
            and text[index + 1] in _ASCII_DIGITS
            and _number_context(tokens)
        ):
            start = index
            index += 1
            seen_dot = False
            while index < length and (
                text[index] in _ASCII_DIGITS
                or (text[index] == "." and not seen_dot)
            ):
                if text[index] == ".":
                    # Don't swallow a qualification dot after an integer
                    # (there is no ident before a literal, so safe here).
                    if index + 1 >= length or text[index + 1] not in _ASCII_DIGITS:
                        break
                    seen_dot = True
                index += 1
            literal = text[start:index]
            value: Any = float(literal) if "." in literal else int(literal)
            tokens.append(Token(NUMBER, value, start, index))
            continue
        if char in _IDENT_START:
            start = index
            while index < length and text[index] in _IDENT_CONTINUE:
                index += 1
            word = text[start:index]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, start, index))
            else:
                tokens.append(Token(IDENT, word, start, index))
            continue
        raise SQLError(f"unexpected character {char!r}", index, index + 1, text)
    tokens.append(Token(EOF, None, length, length + 1))
    return tokens


def _number_context(tokens: list[Token]) -> bool:
    """A leading '-' starts a number only where a value may appear."""
    if not tokens:
        return False
    last = tokens[-1]
    if last.kind in (NUMBER, STRING, IDENT):
        return False
    if last.kind == PUNCT and last.value == ")":
        return False
    return True


def parse_date_literal(value: str, position: int, end: int = -1) -> _dt.date:
    """Parse the body of a ``DATE '...'`` literal."""
    try:
        return _dt.date.fromisoformat(value)
    except ValueError as exc:
        raise SQLError(
            f"invalid DATE literal {value!r}: {exc}", position, end
        ) from exc
