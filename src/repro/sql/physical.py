"""QSQL physical executor: optimized plans → batch operators.

:func:`compile_plan` lowers an (optimized) logical plan into a tree of
closures that each map a *binding* (relation name → live relation) to a
list of rows.  Compilation resolves every column position, output
schema, and predicate closure once; execution then runs over whole row
batches with no per-row name resolution.

Semantics are the reference executor's, by construction: filters and
sort keys reuse :func:`repro.sql.executor._compile_predicate` /
``_sort_key_function``, aggregation and QUALITY-materializing
projections call the executor's own implementations over a trusted
batch relation, and DISTINCT delegates to the algebra modules.  The
planner-only operators are:

- ``QualityFilter`` — asks the scanned relation for its lazily cached
  :meth:`~repro.tagging.relation.TaggedRelation.columnar_store` and
  scans contiguous tag arrays instead of evaluating per-cell closures;
- ``TopK`` — ``heapq.nsmallest`` over a composite sort key (equivalent
  to the executor's repeated stable sorts followed by LIMIT);
- ``HashJoin`` — build-side hash index chosen by the optimizer;
- ``Materialize`` + columnar ``Scan``/``Filter``/``Project``/``TopK``/
  ``Limit`` — the vectorized fragment the optimizer's
  :func:`~repro.sql.optimizer.choose_access_paths` emits.  Inside the
  fragment, operators pass ``(column arrays, selection vector)``
  batches: predicates run over whole arrays (same NULL/TypeError
  semantics as the row closures), projection reorders array references,
  TopK/Limit shrink the selection vector, and ``Materialize`` builds
  ``Row`` objects late, only for the surviving positions.

Compiled plans close over *names and schemas only*, never over relation
instances: the binding supplies relations at run time, which is what
makes cached plans safe to re-execute after data mutations (the plan
cache revalidates schema identity, not data).

Instrumentation (:mod:`repro.obs`): every compiled operator's batch
function takes ``(binding, stats)``.  With ``stats=None`` — the default
— the only cost is one ``None`` check per *operator* per execution
(never per row).  With an :class:`~repro.obs.stats.ExecutionStats`, a
thin per-operator wrapper (installed at compile time, shared by every
execution of a cached plan) records rows out and inclusive wall time
into the preorder-numbered stats tree; that tree is what
``EXPLAIN ANALYZE`` renders.  ``compile_plan(..., instrument=False)``
omits the wrappers entirely — the baseline the observability-overhead
benchmark measures against.

Sanitizer mode (``compile_plan(..., sanitize=True)``, defaulted from
``REPRO_VERIFY_PLANS``): debug wrappers validate every columnar batch
at every fragment operator — arrays match the operator's schema and
share one length, the selection vector is in-bounds, duplicate-free,
and ascending wherever the operator preserves row order (TopK emits
key order, so order checks stop above it) — plus array↔row alignment
at the Materialize boundary and bounds/monotonicity of tag-store scan
indices.  This is the dynamic cross-check of the plan verifier's
static columnar claims (:mod:`repro.analysis.verifier`); violations
raise :class:`ColumnarSanitizerError`.
"""

from __future__ import annotations

import heapq
import os
from time import perf_counter
from typing import Any, Callable, Mapping, Optional

from repro.errors import QueryError
from repro.obs import metrics as _obs_metrics
from repro.obs.stats import ExecutionStats
from repro.relational import algebra as plain_algebra
from repro.relational.relation import Relation, Row
from repro.relational.schema import Column, RelationSchema
from repro.sql.errors import SQLError
from repro.sql.executor import (
    _COMPARATORS,
    _compile_predicate,
    _computed_projection,
    _execute_aggregate,
    _item_output_domain,
    _sort_key_function,
)
from repro.sql.nodes import (
    BoolOp,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    NotOp,
    QualityRef,
    QualityScoreRef,
    SelectStatement,
)
from repro.sql.plan import (
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Materialize,
    PlanNode,
    Project,
    QualityFilter,
    Scan,
    ScoreFilter,
    Sort,
    TopK,
)
from repro.tagging import algebra as tagged_algebra
from repro.tagging.indicators import TagSchema
from repro.tagging.relation import TaggedRelation, TaggedRow

#: A runtime binding: relation name → live relation instance.
Binding = Mapping[str, Any]

#: Preorder op-id assignment: id(plan node) → op id.  None disables
#: instrumentation wrappers (see ``compile_plan(instrument=False)``).
OpIds = Optional[dict[int, int]]


def sanitize_enabled() -> bool:
    """The ``REPRO_VERIFY_PLANS`` flag: plan verification and the
    columnar sanitizer arm together."""
    return os.environ.get("REPRO_VERIFY_PLANS", "") not in ("", "0")


class ColumnarSanitizerError(SQLError):
    """A columnar batch (or tag-store scan) violated the selection-
    vector / array invariants the executor relies on.

    Only raised in sanitizer mode; in normal operation these
    invariants hold by construction and are never checked.
    """


class _Reversed:
    """Inverts comparison order, for DESC keys inside one composite key."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


class CompiledNode:
    """One compiled operator: a batch function plus output-shape facts."""

    __slots__ = ("run", "schema", "tagged", "tag_schema")

    def __init__(
        self,
        run: Callable[[Binding, Optional[ExecutionStats]], list],
        schema: RelationSchema,
        tagged: bool,
        tag_schema: Optional[TagSchema],
    ) -> None:
        self.run = run
        self.schema = schema
        self.tagged = tagged
        self.tag_schema = tag_schema


class CompiledPlan:
    """A fully compiled plan, executable against any schema-identical
    binding of the relations it was compiled for."""

    __slots__ = ("_root", "_skeleton")

    def __init__(
        self,
        root: CompiledNode,
        skeleton: tuple[tuple[str, tuple[int, ...]], ...] = (),
    ) -> None:
        self._root = root
        self._skeleton = skeleton

    @property
    def schema(self) -> RelationSchema:
        return self._root.schema

    @property
    def tagged(self) -> bool:
        return self._root.tagged

    def new_stats(self) -> ExecutionStats:
        """A fresh stats tree matching this plan's operators.

        Compiled plans are cached and reused across executions, so the
        per-execution state lives here, never in the closures: pass the
        returned tree to :meth:`execute` and read it afterwards.
        """
        return ExecutionStats.from_skeleton(self._skeleton)

    def execute(
        self, binding: Binding, stats: Optional[ExecutionStats] = None
    ) -> Any:
        rows = self._root.run(binding, stats)
        if self._root.tagged:
            return TaggedRelation.from_rows(
                self._root.schema, self._root.tag_schema, rows
            )
        return Relation.from_rows(self._root.schema, rows)


def _materialize(node: CompiledNode, rows: list) -> Any:
    """Wrap a row batch back into a relation (trusted constructors)."""
    if node.tagged:
        return TaggedRelation.from_rows(node.schema, node.tag_schema, rows)
    return Relation.from_rows(node.schema, rows)


def _assign_op_ids(
    plan: PlanNode,
) -> tuple[dict[int, int], tuple[tuple[str, tuple[int, ...]], ...]]:
    """Preorder-number the plan; returns (ids, stats skeleton)."""
    ids: dict[int, int] = {}
    skeleton: list[tuple[str, list[int]]] = []

    def walk(node: PlanNode) -> int:
        op_id = len(skeleton)
        ids[id(node)] = op_id
        entry: tuple[str, list[int]] = (node.label(), [])
        skeleton.append(entry)
        for child in node.children():
            entry[1].append(walk(child))
        return op_id

    walk(plan)
    return ids, tuple(
        (label, tuple(children)) for label, children in skeleton
    )


def compile_plan(
    plan: PlanNode,
    relations: Binding,
    *,
    instrument: bool = True,
    sanitize: Optional[bool] = None,
) -> CompiledPlan:
    """Compile an optimized plan against the relations' schemas.

    ``instrument=False`` skips the per-operator stats wrappers (the
    plan can no longer report into an ``ExecutionStats`` tree); it
    exists so the overhead benchmark has an uninstrumented baseline.
    ``sanitize`` installs the columnar batch sanitizer wrappers; the
    default follows the ``REPRO_VERIFY_PLANS`` environment flag.
    """
    if sanitize is None:
        sanitize = sanitize_enabled()
    ids, skeleton = _assign_op_ids(plan)
    root = _compile(plan, relations, ids if instrument else None, sanitize)
    return CompiledPlan(root, skeleton if instrument else ())


def execute_plan(plan: PlanNode, relations: Binding) -> Any:
    """Convenience: compile and immediately run against ``relations``."""
    return compile_plan(plan, relations).execute(relations)


def _record_partition_scan(rows_scanned: int, pruned: int) -> None:
    """Obs counters for one pruned-scan execution (enabled() guarded)."""
    registry = _obs_metrics.global_registry()
    registry.counter(
        "partition.scanned",
        "rows fed from surviving partitions by pruned scans",
    ).inc(rows_scanned)
    registry.counter(
        "partition.pruned",
        "partitions statically eliminated by pruned scans",
    ).inc(pruned)


def _surviving_partitions(plan: Scan, relation: Any) -> Optional[list]:
    """The shards a pruned scan reads, or None to fall back to a full
    scan (unpartitioned binding, or a layout that no longer matches the
    plan's metadata — the Filter above makes the superset scan safe)."""
    spec = getattr(relation, "partition_spec", None)
    if (
        spec is None
        or spec.count != plan.partition_total
        or spec.column != plan.partition_key
    ):
        return None
    return [relation.partition(bucket) for bucket in plan.partitions]


def _compile(
    plan: PlanNode, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    if isinstance(plan, Scan):
        node = _compile_scan(plan, relations, ids)
    elif isinstance(plan, QualityFilter):
        node = _compile_quality_filter(plan, relations, ids, sanitize)
    elif isinstance(plan, ScoreFilter):
        node = _compile_score_filter(plan, relations, ids, sanitize)
    elif isinstance(plan, Filter):
        node = _compile_filter(plan, relations, ids, sanitize)
    elif isinstance(plan, Project):
        node = _compile_project(plan, relations, ids, sanitize)
    elif isinstance(plan, HashJoin):
        node = _compile_hash_join(plan, relations, ids, sanitize)
    elif isinstance(plan, Aggregate):
        node = _compile_aggregate(plan, relations, ids, sanitize)
    elif isinstance(plan, Sort):
        node = _compile_sort(plan, relations, ids, sanitize)
    elif isinstance(plan, TopK):
        node = _compile_topk(plan, relations, ids, sanitize)
    elif isinstance(plan, Distinct):
        node = _compile_distinct(plan, relations, ids, sanitize)
    elif isinstance(plan, Limit):
        node = _compile_limit(plan, relations, ids, sanitize)
    elif isinstance(plan, Materialize):
        node = _compile_materialize(plan, relations, ids, sanitize)
    else:
        raise SQLError(f"cannot compile plan node {plan!r}")
    if ids is None:
        return node
    op_id = ids[id(plan)]
    inner = node.run

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
        if stats is None:
            return inner(binding, None)
        start = perf_counter()
        out = inner(binding, stats)
        stats.record(op_id, len(out), perf_counter() - start)
        return out

    return CompiledNode(run, node.schema, node.tagged, node.tag_schema)


def _compile_scan(
    plan: Scan, relations: Binding, ids: OpIds = None
) -> CompiledNode:
    name = plan.relation
    try:
        relation = relations[name]
    except KeyError:
        raise SQLError(f"unknown relation {name!r} in plan binding") from None
    tagged = isinstance(relation, TaggedRelation)

    if plan.partitions is None:

        def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
            return binding[name].row_batch()

    else:
        op_id = None if ids is None else ids[id(plan)]
        pruned_count = plan.partition_total - len(plan.partitions)
        note = f"{len(plan.partitions)}/{plan.partition_total}"

        def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
            live = binding[name]
            shards = _surviving_partitions(plan, live)
            if shards is None:
                return live.row_batch()
            out: list = []
            rows_by_partition: list[int] = []
            for shard in shards:
                batch = shard.row_batch()
                rows_by_partition.append(len(batch))
                out.extend(batch)
            if _obs_metrics.enabled():
                _record_partition_scan(len(out), pruned_count)
            if stats is not None and op_id is not None:
                stats.annotate(
                    op_id,
                    partitions=note,
                    partition_rows=tuple(rows_by_partition),
                )
            return out

    return CompiledNode(
        run,
        relation.schema,
        tagged,
        relation.tag_schema if tagged else None,
    )


def _compile_quality_filter(
    plan: QualityFilter, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    scan = plan.child
    if not (isinstance(scan, Scan) and scan.tagged):
        raise SQLError(
            "QualityFilter must sit directly above a tagged Scan"
        )
    child = _compile_scan(scan, relations)
    name = scan.relation
    constraints = list(plan.constraints)
    # The columnar scan reads tag arrays + row batch directly, so the
    # child Scan's closure never runs; credit its row count here (the
    # scan's rows are exactly the relation's) so the annotated tree
    # still shows the filter's input size — and thus its selectivity.
    scan_id = None if ids is None else ids[id(scan)]
    label = plan.label()

    if scan.partitions is None:

        def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
            relation = binding[name]
            indices = relation.columnar_store().scan(constraints)
            rows = relation.row_batch()
            if stats is not None and scan_id is not None:
                stats.record(scan_id, len(rows), 0.0)
            if sanitize:
                _check_scan_indices(label, indices, len(rows))
            return [rows[index] for index in indices]

    else:
        pruned_count = scan.partition_total - len(scan.partitions)
        note = f"{len(scan.partitions)}/{scan.partition_total}"

        def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
            relation = binding[name]
            shards = _surviving_partitions(scan, relation)
            if shards is None:
                indices = relation.columnar_store().scan(constraints)
                rows = relation.row_batch()
                if stats is not None and scan_id is not None:
                    stats.record(scan_id, len(rows), 0.0)
                if sanitize:
                    _check_scan_indices(label, indices, len(rows))
                return [rows[index] for index in indices]
            out: list = []
            fed = 0
            rows_by_partition: list[int] = []
            for shard in shards:
                indices = shard.columnar_store().scan(constraints)
                rows = shard.row_batch()
                fed += len(rows)
                rows_by_partition.append(len(rows))
                if sanitize:
                    _check_scan_indices(label, indices, len(rows))
                out.extend(rows[index] for index in indices)
            if _obs_metrics.enabled():
                _record_partition_scan(fed, pruned_count)
            if stats is not None and scan_id is not None:
                stats.record(scan_id, fed, 0.0)
                stats.annotate(
                    scan_id,
                    partitions=note,
                    partition_rows=tuple(rows_by_partition),
                )
            return out

    return CompiledNode(run, child.schema, child.tagged, child.tag_schema)


def _compile_score_filter(
    plan: ScoreFilter, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    inner = plan.child
    if isinstance(inner, Scan):
        scan = inner
        tag_constraints: Optional[list] = None
    elif isinstance(inner, QualityFilter) and isinstance(inner.child, Scan):
        scan = inner.child
        tag_constraints = list(inner.constraints)
    else:
        raise SQLError(
            "ScoreFilter must sit directly above a tagged Scan or a "
            "QualityFilter over one"
        )
    if not scan.tagged:
        raise SQLError("ScoreFilter requires a tagged Scan")
    child = _compile_scan(scan, relations)
    name = scan.relation
    constraints = list(plan.constraints)
    # Like QualityFilter, this operator reads storage (score arrays +
    # row batch) directly; credit the swallowed Scan's row count so the
    # annotated tree still shows the filter's input size.
    scan_id = None if ids is None else ids[id(scan)]
    label = plan.label()

    def scan_segment(segment: Any, materializer: Any, bucket: Any) -> list:
        """Surviving indices of one storage segment (shard or flat)."""
        candidates = None
        if tag_constraints is not None:
            candidates = segment.columnar_store().scan(tag_constraints)
        return materializer.filter_indices(
            constraints, bucket=bucket, candidates=candidates
        )

    from repro.quality.materialize import materializer_for

    if scan.partitions is None:

        def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
            relation = binding[name]
            indices = scan_segment(relation, materializer_for(relation), None)
            rows = relation.row_batch()
            if stats is not None and scan_id is not None:
                stats.record(scan_id, len(rows), 0.0)
            if sanitize:
                _check_scan_indices(label, indices, len(rows))
            return [rows[index] for index in indices]

    else:
        pruned_count = scan.partition_total - len(scan.partitions)
        note = f"{len(scan.partitions)}/{scan.partition_total}"

        def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
            relation = binding[name]
            materializer = materializer_for(relation)
            shards = _surviving_partitions(scan, relation)
            if shards is None:
                indices = scan_segment(relation, materializer, None)
                rows = relation.row_batch()
                if stats is not None and scan_id is not None:
                    stats.record(scan_id, len(rows), 0.0)
                if sanitize:
                    _check_scan_indices(label, indices, len(rows))
                return [rows[index] for index in indices]
            out: list = []
            fed = 0
            rows_by_partition: list[int] = []
            for bucket, shard in zip(scan.partitions, shards):
                indices = scan_segment(shard, materializer, bucket)
                rows = shard.row_batch()
                fed += len(rows)
                rows_by_partition.append(len(rows))
                if sanitize:
                    _check_scan_indices(label, indices, len(rows))
                out.extend(rows[index] for index in indices)
            if _obs_metrics.enabled():
                _record_partition_scan(fed, pruned_count)
            if stats is not None and scan_id is not None:
                stats.record(scan_id, fed, 0.0)
                stats.annotate(
                    scan_id,
                    partitions=note,
                    partition_rows=tuple(rows_by_partition),
                )
            return out

    return CompiledNode(run, child.schema, child.tagged, child.tag_schema)


def _check_scan_indices(label: str, indices: Any, length: int) -> None:
    """Sanitizer: tag-store scan hits are in-bounds and ascending."""
    previous = -1
    for index in indices:
        if not isinstance(index, int) or not -1 < index < length:
            raise ColumnarSanitizerError(
                f"{label}: tag-store scan returned out-of-bounds "
                f"index {index!r} (relation has {length} rows)"
            )
        if index <= previous:
            raise ColumnarSanitizerError(
                f"{label}: tag-store scan indices are not strictly "
                f"ascending ({index} after {previous})"
            )
        previous = index


def _compile_filter(
    plan: Filter, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    child = _compile(plan.child, relations, ids, sanitize)
    predicate_expr = plan.predicate
    if isinstance(predicate_expr, Literal):
        # Only the optimizer produces literal predicates; TRUE filters
        # are dropped there, so a surviving literal is falsy.
        if predicate_expr.value:
            run = child.run
        else:
            run = lambda binding, stats: []  # noqa: E731
        return CompiledNode(run, child.schema, child.tagged, child.tag_schema)
    predicate = _compile_predicate(
        predicate_expr, child.schema, child.tagged, child.tag_schema
    )
    child_run = child.run

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
        return [row for row in child_run(binding, stats) if predicate(row)]

    return CompiledNode(run, child.schema, child.tagged, child.tag_schema)


def _compile_project(
    plan: Project, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    child = _compile(plan.child, relations, ids, sanitize)
    items = plan.items
    child_run = child.run
    if any(
        isinstance(item.expr, (QualityRef, QualityScoreRef)) for item in items
    ):
        # QUALITY(...) in the select list materializes tag values into a
        # plain relation — delegate to the executor's implementation.
        stub = SelectStatement(
            columns=None,
            relation=child.schema.name,
            select_items=items,
        )
        probe = _materialize(child, [])
        out_schema = _computed_projection(stub, probe, child.tagged).schema

        def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
            temp = _materialize(child, child_run(binding, stats))
            return _computed_projection(stub, temp, child.tagged).row_batch()

        return CompiledNode(run, out_schema, False, None)

    names = [item.expr.column for item in items]  # type: ignore[union-attr]
    if not names:
        raise QueryError("projection requires at least one column")
    renames = {
        item.expr.column: item.alias  # type: ignore[union-attr]
        for item in items
        if item.alias and item.alias != item.expr.column  # type: ignore[union-attr]
    }
    positions = child.schema.positions_of(names)
    out_schema = child.schema.project(names, None)
    if child.tagged:
        out_tags = child.tag_schema.project(names)
        if renames:
            out_schema = out_schema.rename_columns(renames)
            out_tags = out_tags.rename_columns(renames)

        def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
            make = TaggedRow._from_validated
            return [
                make(out_schema, tuple(row.cells[p] for p in positions))
                for row in child_run(binding, stats)
            ]

        return CompiledNode(run, out_schema, True, out_tags)
    if renames:
        out_schema = out_schema.rename_columns(renames)

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
        make = Row._from_validated
        return [
            make(out_schema, tuple(row.at(p) for p in positions))
            for row in child_run(binding, stats)
        ]

    return CompiledNode(run, out_schema, False, None)


def _compile_hash_join(
    plan: HashJoin, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    left = _compile(plan.left, relations, ids, sanitize)
    right = _compile(plan.right, relations, ids, sanitize)
    if left.tagged or right.tagged:
        raise SQLError("hash-join plans support plain relations only")
    overlap = set(left.schema.column_names) & set(right.schema.column_names)
    if overlap:
        raise SQLError(
            f"hash-join inputs share column names {sorted(overlap)}; "
            f"project/rename one side first"
        )
    left_positions = tuple(left.schema.position(l) for l, _ in plan.on)
    right_positions = tuple(right.schema.position(r) for _, r in plan.on)
    out_schema = RelationSchema(
        f"{left.schema.name}_{right.schema.name}",
        list(left.schema.columns) + list(right.schema.columns),
    )
    build_left = plan.build_side == "left"
    single = len(plan.on) == 1
    left_run, right_run = left.run, right.run
    op_id = None if ids is None else ids[id(plan)]

    def key_of(row: Row, positions: tuple[int, ...]) -> Any:
        if single:
            return row.at(positions[0])
        return tuple(row.at(p) for p in positions)

    def null_key(key: Any) -> bool:
        if single:
            return key is None
        return any(part is None for part in key)

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
        left_rows = left_run(binding, stats)
        right_rows = right_run(binding, stats)
        make = Row._from_validated
        out: list[Row] = []
        emit = out.append
        if build_left:
            build_rows, probe_rows = left_rows, right_rows
            build_positions, probe_positions = (
                left_positions, right_positions,
            )
        else:
            build_rows, probe_rows = right_rows, left_rows
            build_positions, probe_positions = (
                right_positions, left_positions,
            )
        if stats is not None and op_id is not None:
            stats.annotate(
                op_id,
                build_rows=len(build_rows),
                probe_rows=len(probe_rows),
            )
        index: dict[Any, list[Row]] = {}
        for row in build_rows:
            key = key_of(row, build_positions)
            if null_key(key):
                continue
            index.setdefault(key, []).append(row)
        if build_left:
            for rrow in probe_rows:
                key = key_of(rrow, probe_positions)
                if null_key(key):
                    continue
                rvalues = rrow.values_tuple()
                for lrow in index.get(key, ()):
                    emit(make(out_schema, lrow.values_tuple() + rvalues))
        else:
            for lrow in probe_rows:
                key = key_of(lrow, probe_positions)
                if null_key(key):
                    continue
                lvalues = lrow.values_tuple()
                for rrow in index.get(key, ()):
                    emit(make(out_schema, lvalues + rrow.values_tuple()))
        return out

    return CompiledNode(run, out_schema, False, None)


def _compile_aggregate(
    plan: Aggregate, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    child = _compile(plan.child, relations, ids, sanitize)
    stub = SelectStatement(
        columns=None,
        relation=child.schema.name,
        select_items=plan.items,
        group_by=plan.group_by,
    )
    probe = _materialize(child, [])
    out_schema = RelationSchema(
        f"{child.schema.name}_agg",
        [
            Column(item.output_name, _item_output_domain(item, probe))
            for item in plan.items
        ],
    )
    child_run = child.run
    tagged = child.tagged

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
        temp = _materialize(child, child_run(binding, stats))
        return _execute_aggregate(stub, temp, tagged).row_batch()

    return CompiledNode(run, out_schema, False, None)


def _check_aggregate_order(plan: Sort | TopK, child: CompiledNode) -> None:
    """The executor's post-aggregation ORDER BY validation, verbatim."""
    for item in plan.order_by:
        if isinstance(item.key, (QualityRef, QualityScoreRef)):
            raise SQLError("ORDER BY QUALITY(...) cannot follow aggregation")
        child.schema.column(item.key.column)


def _compile_sort(
    plan: Sort, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    child = _compile(plan.child, relations, ids, sanitize)
    if isinstance(plan.child, Aggregate):
        _check_aggregate_order(plan, child)
    # Repeated stable single-key sorts, least-significant first — the
    # executor's exact ordering semantics.
    passes = [
        (
            _sort_key_function(
                (item,), child.schema, child.tagged, child.tag_schema
            ),
            item.descending,
        )
        for item in reversed(plan.order_by)
    ]
    child_run = child.run

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
        rows = list(child_run(binding, stats))
        for key, descending in passes:
            rows.sort(key=key, reverse=descending)
        return rows

    return CompiledNode(run, child.schema, child.tagged, child.tag_schema)


def _compile_topk(
    plan: TopK, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    child = _compile(plan.child, relations, ids, sanitize)
    if isinstance(plan.child, Aggregate):
        _check_aggregate_order(plan, child)
    if plan.count < 0:
        raise QueryError("limit must be non-negative")
    parts = [
        (
            _sort_key_function(
                (item,), child.schema, child.tagged, child.tag_schema
            ),
            item.descending,
        )
        for item in plan.order_by
    ]
    count = plan.count
    child_run = child.run

    def composite_key(row: Any) -> tuple:
        return tuple(
            _Reversed(key(row)) if descending else key(row)
            for key, descending in parts
        )

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
        # nsmallest is stable and equivalent to sorted(...)[:k]; the
        # composite key with per-part inversion equals the repeated
        # stable sorts of the Sort operator.
        return heapq.nsmallest(
            count, child_run(binding, stats), key=composite_key
        )

    return CompiledNode(run, child.schema, child.tagged, child.tag_schema)


def _compile_distinct(
    plan: Distinct, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    child = _compile(plan.child, relations, ids, sanitize)
    child_run = child.run

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
        temp = _materialize(child, child_run(binding, stats))
        if child.tagged:
            return tagged_algebra.distinct_values(temp).row_batch()
        return plain_algebra.distinct(temp).row_batch()

    return CompiledNode(run, child.schema, child.tagged, child.tag_schema)


def _compile_limit(
    plan: Limit, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    child = _compile(plan.child, relations, ids, sanitize)
    if plan.count < 0:
        raise QueryError("limit must be non-negative")
    count = plan.count
    child_run = child.run

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
        return child_run(binding, stats)[:count]

    return CompiledNode(run, child.schema, child.tagged, child.tag_schema)


# -- columnar execution ------------------------------------------------------
#
# Inside a Materialize boundary, operators exchange *columnar batches*:
# ``(columns, sel)`` where ``columns`` is the list of per-column value
# arrays in schema order and ``sel`` is the selection vector — the row
# positions still alive, in ascending row order (``None`` means "every
# position").  Filters shrink ``sel`` without touching the arrays;
# Project reorders array references; only Materialize builds rows.

#: A columnar batch: (column arrays in schema order, selection vector).
ColumnarBatch = tuple[list, Optional[list]]


class _ColumnarNode:
    """One compiled columnar operator (always plain, untagged)."""

    __slots__ = ("run", "schema")

    def __init__(
        self,
        run: Callable[[Binding, Optional[ExecutionStats]], ColumnarBatch],
        schema: RelationSchema,
    ) -> None:
        self.run = run
        self.schema = schema


def _batch_rows(batch: ColumnarBatch) -> int:
    """Live rows in a columnar batch (selection size, or full length)."""
    columns, sel = batch
    if sel is not None:
        return len(sel)
    return len(columns[0]) if columns else 0


def _compile_materialize(
    plan: Materialize, relations: Binding, ids: OpIds, sanitize: bool = False
) -> CompiledNode:
    """Columnar fragment → row land: gather survivors, build rows late."""
    child = _compile_columnar(plan.child, relations, ids, sanitize)
    out_schema = child.schema
    child_run = child.run

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> list:
        columns, sel = child_run(binding, stats)
        make = Row._from_validated
        if sel is None:
            # zip(*columns) transposes at C level — one tuple per row.
            rows = [make(out_schema, values) for values in zip(*columns)]
        else:
            gathered = [[array[i] for i in sel] for array in columns]
            rows = [make(out_schema, values) for values in zip(*gathered)]
        if sanitize:
            expected = _batch_rows((columns, sel))
            if len(rows) != expected:
                # zip() truncates to the shortest array, so a length
                # mismatch the batch checks missed surfaces here as
                # silently dropped rows.
                raise ColumnarSanitizerError(
                    f"Materialize: built {len(rows)} rows from a batch "
                    f"selecting {expected} positions (array/row "
                    f"misalignment)"
                )
        return rows

    return CompiledNode(run, out_schema, False, None)


def _fragment_ordered(plan: PlanNode) -> bool:
    """Whether a fragment operator's selection vector is in row order.

    Scans emit full batches (trivially ordered); Filter/Project/Limit
    preserve their input's order; TopK emits *key* order (heap output),
    so everything from it up is unordered.
    """
    if isinstance(plan, Scan):
        return True
    if isinstance(plan, TopK):
        return False
    return _fragment_ordered(plan.children()[0])


def _check_columnar_batch(
    label: str, schema: RelationSchema, batch: ColumnarBatch, ordered: bool
) -> None:
    """Sanitizer: one batch's array and selection-vector invariants."""
    columns, sel = batch
    if len(columns) != len(schema.column_names):
        raise ColumnarSanitizerError(
            f"{label}: batch carries {len(columns)} arrays but the "
            f"operator schema has {len(schema.column_names)} columns"
        )
    lengths = {len(array) for array in columns}
    if len(lengths) > 1:
        raise ColumnarSanitizerError(
            f"{label}: column arrays disagree on length "
            f"({sorted(lengths)}); rows would be built misaligned"
        )
    if sel is None:
        return
    length = lengths.pop() if lengths else 0
    previous = -1
    seen: set[int] = set()
    for index in sel:
        if not isinstance(index, int) or not -1 < index < length:
            raise ColumnarSanitizerError(
                f"{label}: selection vector holds out-of-bounds "
                f"position {index!r} (arrays have {length} entries)"
            )
        if ordered:
            if index <= previous:
                raise ColumnarSanitizerError(
                    f"{label}: selection vector is not strictly "
                    f"ascending ({index} after {previous}) although "
                    f"this operator preserves row order"
                )
            previous = index
        else:
            if index in seen:
                raise ColumnarSanitizerError(
                    f"{label}: selection vector selects position "
                    f"{index} twice"
                )
            seen.add(index)


def _compile_columnar(
    plan: PlanNode, relations: Binding, ids: OpIds, sanitize: bool = False
) -> _ColumnarNode:
    """Compile one operator of a columnar fragment (plus stats wrapper)."""
    if isinstance(plan, Scan):
        node = _compile_columnar_scan(plan, relations, ids)
    elif isinstance(plan, Filter):
        node = _compile_columnar_filter(plan, relations, ids, sanitize)
    elif isinstance(plan, Project):
        node = _compile_columnar_project(plan, relations, ids, sanitize)
    elif isinstance(plan, TopK):
        node = _compile_columnar_topk(plan, relations, ids, sanitize)
    elif isinstance(plan, Limit):
        node = _compile_columnar_limit(plan, relations, ids, sanitize)
    else:
        raise SQLError(f"cannot compile columnar plan node {plan!r}")
    if sanitize:
        label = plan.label()
        schema = node.schema
        ordered = _fragment_ordered(plan)
        checked = node.run

        def run_checked(
            binding: Binding, stats: Optional[ExecutionStats]
        ) -> ColumnarBatch:
            batch = checked(binding, stats)
            _check_columnar_batch(label, schema, batch, ordered)
            return batch

        node = _ColumnarNode(run_checked, schema)
    if ids is None:
        return node
    op_id = ids[id(plan)]
    inner = node.run
    is_scan = isinstance(plan, Scan)

    def run(
        binding: Binding, stats: Optional[ExecutionStats]
    ) -> ColumnarBatch:
        if stats is None:
            return inner(binding, None)
        start = perf_counter()
        batch = inner(binding, stats)
        stats.record(op_id, _batch_rows(batch), perf_counter() - start)
        if is_scan:
            stats.annotate(op_id, batch="columnar", columns=len(batch[0]))
        else:
            stats.annotate(op_id, batch="columnar")
        return batch

    return _ColumnarNode(run, node.schema)


def _compile_columnar_scan(
    plan: Scan, relations: Binding, ids: OpIds = None
) -> _ColumnarNode:
    name = plan.relation
    try:
        relation = relations[name]
    except KeyError:
        raise SQLError(f"unknown relation {name!r} in plan binding") from None
    if isinstance(relation, TaggedRelation):
        raise SQLError("columnar scans support plain relations only")

    if plan.partitions is None:

        def run(
            binding: Binding, stats: Optional[ExecutionStats]
        ) -> ColumnarBatch:
            return binding[name].columnar_store().column_arrays(), None

    else:
        op_id = None if ids is None else ids[id(plan)]
        pruned_count = plan.partition_total - len(plan.partitions)
        note = f"{len(plan.partitions)}/{plan.partition_total}"
        width = len(relation.schema.column_names)

        def run(
            binding: Binding, stats: Optional[ExecutionStats]
        ) -> ColumnarBatch:
            live = binding[name]
            shards = _surviving_partitions(plan, live)
            if shards is None:
                return live.columnar_store().column_arrays(), None
            if len(shards) == 1:
                # Zero-copy: a single surviving partition serves its own
                # version-gated column arrays directly.
                columns = shards[0].columnar_store().column_arrays()
                rows_by_partition = [len(columns[0]) if columns else 0]
            else:
                parts = [
                    shard.columnar_store().column_arrays()
                    for shard in shards
                ]
                rows_by_partition = [
                    len(part[0]) if part else 0 for part in parts
                ]
                columns = [
                    [value for part in parts for value in part[index]]
                    for index in range(width)
                ]
            fed = sum(rows_by_partition)
            if _obs_metrics.enabled():
                _record_partition_scan(fed, pruned_count)
            if stats is not None and op_id is not None:
                stats.annotate(
                    op_id,
                    partitions=note,
                    partition_rows=tuple(rows_by_partition),
                )
            return columns, None

    return _ColumnarNode(run, relation.schema)


def _compile_columnar_filter(
    plan: Filter, relations: Binding, ids: OpIds, sanitize: bool = False
) -> _ColumnarNode:
    child = _compile_columnar(plan.child, relations, ids, sanitize)
    child_run = child.run
    predicate_expr = plan.predicate
    if isinstance(predicate_expr, Literal):
        # As on the row path: TRUE filters were dropped by the
        # optimizer, so a surviving literal is falsy — nothing passes.
        if predicate_expr.value:
            return _ColumnarNode(child_run, child.schema)

        def run_empty(
            binding: Binding, stats: Optional[ExecutionStats]
        ) -> ColumnarBatch:
            columns, _ = child_run(binding, stats)
            return columns, []

        return _ColumnarNode(run_empty, child.schema)
    predicate = _compile_columnar_predicate(predicate_expr, child.schema)

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> ColumnarBatch:
        columns, sel = child_run(binding, stats)
        return columns, predicate(columns, sel)

    return _ColumnarNode(run, child.schema)


def _base_positions(columns: list, sel: Optional[list]):
    """The positions a predicate must examine, in ascending row order."""
    if sel is not None:
        return sel
    return range(len(columns[0]) if columns else 0)


def _compile_columnar_predicate(
    expr: Any, schema: RelationSchema
) -> Callable[[list, Optional[list]], list]:
    """Compile a WHERE tree into a whole-array selection function.

    Returns ``fn(columns, sel) -> hits`` where ``hits`` is the new
    selection vector (ascending row positions).  Semantics mirror
    :func:`repro.sql.executor._compile_predicate` exactly: comparisons
    with NULL are never true, incomparable types (``TypeError``) read
    as false, ``IN`` never sees NULL options specially, and NOT/OR
    complement/merge those per-row outcomes — so a row survives the
    columnar filter iff it survives the row closure.
    """
    if isinstance(expr, Comparison):
        return _columnar_comparison(expr, schema)
    if isinstance(expr, InList):
        options = expr.options
        negated = expr.negated
        if isinstance(expr.operand, Literal):
            value = expr.operand.value
            if value is None:
                return lambda columns, sel: []
            result = value in options
            if negated:
                result = not result
            if result:
                return lambda columns, sel: list(
                    _base_positions(columns, sel)
                )
            return lambda columns, sel: []
        position = schema.position(expr.operand.column)
        if negated:

            def run_not_in(columns: list, sel: Optional[list]) -> list:
                array = columns[position]
                return [
                    i
                    for i in _base_positions(columns, sel)
                    if array[i] is not None and array[i] not in options
                ]

            return run_not_in

        def run_in(columns: list, sel: Optional[list]) -> list:
            array = columns[position]
            return [
                i
                for i in _base_positions(columns, sel)
                if array[i] is not None and array[i] in options
            ]

        return run_in
    if isinstance(expr, IsNull):
        negated = expr.negated
        if isinstance(expr.operand, Literal):
            is_null = expr.operand.value is None
            result = (not is_null) if negated else is_null
            if result:
                return lambda columns, sel: list(
                    _base_positions(columns, sel)
                )
            return lambda columns, sel: []
        position = schema.position(expr.operand.column)
        if negated:
            return lambda columns, sel: [
                i
                for i in _base_positions(columns, sel)
                if columns[position][i] is not None
            ]
        return lambda columns, sel: [
            i
            for i in _base_positions(columns, sel)
            if columns[position][i] is None
        ]
    if isinstance(expr, BoolOp):
        left_run = _compile_columnar_predicate(expr.left, schema)
        right_run = _compile_columnar_predicate(expr.right, schema)
        if expr.op == "AND":
            # Conjunction = composition: the right side only probes the
            # left side's survivors (same short-circuit as the row path).
            return lambda columns, sel: right_run(
                columns, left_run(columns, sel)
            )

        def run_or(columns: list, sel: Optional[list]) -> list:
            left_hits = left_run(columns, sel)
            seen = set(left_hits)
            remaining = [
                i for i in _base_positions(columns, sel) if i not in seen
            ]
            # Disjoint ascending runs — sorted() restores row order.
            return sorted(left_hits + right_run(columns, remaining))

        return run_or
    if isinstance(expr, NotOp):
        inner_run = _compile_columnar_predicate(expr.operand, schema)

        def run_not(columns: list, sel: Optional[list]) -> list:
            hits = set(inner_run(columns, sel))
            return [
                i for i in _base_positions(columns, sel) if i not in hits
            ]

        return run_not
    raise SQLError(f"unknown expression node {expr!r}")


def _columnar_comparison(
    expr: Comparison, schema: RelationSchema
) -> Callable[[list, Optional[list]], list]:
    compare = _COMPARATORS[expr.op]
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        left_position = schema.position(left.column)
        right_position = schema.position(right.column)

        def run_col_col(columns: list, sel: Optional[list]) -> list:
            left_array = columns[left_position]
            right_array = columns[right_position]
            hits: list = []
            emit = hits.append
            for i in _base_positions(columns, sel):
                a = left_array[i]
                b = right_array[i]
                if a is None or b is None:
                    continue
                try:
                    if compare(a, b):
                        emit(i)
                except TypeError:
                    continue
            return hits

        return run_col_col
    if isinstance(left, Literal) and isinstance(right, Literal):
        # fold_constants normally removes these; evaluate once anyway.
        a, b = left.value, right.value
        if a is None or b is None:
            result = False
        else:
            try:
                result = compare(a, b)
            except TypeError:
                result = False
        if result:
            return lambda columns, sel: list(_base_positions(columns, sel))
        return lambda columns, sel: []
    if isinstance(left, Literal):
        position = schema.position(right.column)
        constant = left.value
        if constant is None:
            return lambda columns, sel: []

        def run_const_col(columns: list, sel: Optional[list]) -> list:
            array = columns[position]
            hits: list = []
            emit = hits.append
            for i in _base_positions(columns, sel):
                value = array[i]
                if value is None:
                    continue
                try:
                    if compare(constant, value):
                        emit(i)
                except TypeError:
                    continue
            return hits

        return run_const_col
    position = schema.position(left.column)
    constant = right.value
    if constant is None:
        return lambda columns, sel: []
    equality = expr.op == "="

    def run_col_const(columns: list, sel: Optional[list]) -> list:
        array = columns[position]
        hits: list = []
        emit = hits.append
        if sel is None and equality:
            # Full-column equality hops hit-to-hit with list.index — a
            # C-level search, no Python per-element loop (same move as
            # ColumnarTagStore.scan; `==` never raises TypeError, and a
            # None constant was rejected above, so Nones cannot match).
            find = array.index
            index = -1
            try:
                while True:
                    index = find(constant, index + 1)
                    emit(index)
            except ValueError:
                pass
            return hits
        for i in _base_positions(columns, sel):
            value = array[i]
            if value is None:
                continue
            try:
                if compare(value, constant):
                    emit(i)
            except TypeError:
                continue
        return hits

    return run_col_const


def _compile_columnar_project(
    plan: Project, relations: Binding, ids: OpIds, sanitize: bool = False
) -> _ColumnarNode:
    child = _compile_columnar(plan.child, relations, ids, sanitize)
    names = [item.expr.column for item in plan.items]  # type: ignore[union-attr]
    if not names:
        raise QueryError("projection requires at least one column")
    renames = {
        item.expr.column: item.alias  # type: ignore[union-attr]
        for item in plan.items
        if item.alias and item.alias != item.expr.column  # type: ignore[union-attr]
    }
    positions = child.schema.positions_of(names)
    out_schema = child.schema.project(names, None)
    if renames:
        out_schema = out_schema.rename_columns(renames)
    child_run = child.run

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> ColumnarBatch:
        columns, sel = child_run(binding, stats)
        # Projection over arrays is free: reorder the references.
        return [columns[p] for p in positions], sel

    return _ColumnarNode(run, out_schema)


def _compile_columnar_topk(
    plan: TopK, relations: Binding, ids: OpIds, sanitize: bool = False
) -> _ColumnarNode:
    child = _compile_columnar(plan.child, relations, ids, sanitize)
    if plan.count < 0:
        raise QueryError("limit must be non-negative")
    specs = [
        (child.schema.position(item.key.column), item.descending)
        for item in plan.order_by
    ]
    count = plan.count
    child_run = child.run

    directions = {descending for _, descending in specs}
    if len(directions) == 1:
        # Uniform direction: plain tuple keys, no _Reversed wrappers.
        # All-DESC is nlargest over the ascending key (both are
        # sorted(..., reverse=...)[:n], stable on ties), so the heap
        # compares native tuples at C speed instead of calling
        # _Reversed.__lt__ per comparison.
        select = heapq.nlargest if directions.pop() else heapq.nsmallest
        positions = [p for p, _ in specs]

        def run(
            binding: Binding, stats: Optional[ExecutionStats]
        ) -> ColumnarBatch:
            columns, sel = child_run(binding, stats)
            arrays = [columns[p] for p in positions]
            if len(arrays) == 1:
                array = arrays[0]

                def key(i: int) -> tuple:
                    value = array[i]
                    return (value is not None, value)

            else:

                def key(i: int) -> tuple:
                    return tuple(
                        (a[i] is not None, a[i]) for a in arrays
                    )

            base = _base_positions(columns, sel)
            return columns, select(count, base, key=key)

        return _ColumnarNode(run, child.schema)

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> ColumnarBatch:
        columns, sel = child_run(binding, stats)
        arrays = [(columns[p], descending) for p, descending in specs]

        def composite_key(i: int) -> tuple:
            # Mirrors the row TopK's key exactly: each part is the
            # None-safe ((not-None, value),) tuple, inverted per
            # direction — so ordering and stability are identical.
            parts = []
            for array, descending in arrays:
                value = array[i]
                part = ((value is not None, value),)
                parts.append(_Reversed(part) if descending else part)
            return tuple(parts)

        base = _base_positions(columns, sel)
        return columns, heapq.nsmallest(count, base, key=composite_key)

    return _ColumnarNode(run, child.schema)


def _compile_columnar_limit(
    plan: Limit, relations: Binding, ids: OpIds, sanitize: bool = False
) -> _ColumnarNode:
    child = _compile_columnar(plan.child, relations, ids, sanitize)
    if plan.count < 0:
        raise QueryError("limit must be non-negative")
    count = plan.count
    child_run = child.run

    def run(binding: Binding, stats: Optional[ExecutionStats]) -> ColumnarBatch:
        columns, sel = child_run(binding, stats)
        if sel is not None:
            return columns, sel[:count]
        length = len(columns[0]) if columns else 0
        if count >= length:
            return columns, None
        return columns, list(range(count))

    return _ColumnarNode(run, child.schema)
