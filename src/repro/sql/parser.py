"""QSQL recursive-descent parser.

Grammar (simplified)::

    select    := [EXPLAIN [ANALYZE]] SELECT [DISTINCT] columns FROM ident
                 [WHERE expr] [ORDER BY order_items] [LIMIT number]
    columns   := '*' | ident (',' ident)*
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := unary (AND unary)*
    unary     := NOT unary | '(' expr ')' | predicate
    predicate := operand ( cmp operand
                         | [NOT] IN '(' literal (',' literal)* ')'
                         | IS [NOT] NULL )
    operand   := literal | quality_ref | ident
    quality_ref := QUALITY '(' ident '.' ident ')'   -- tag value
                 | QUALITY '(' ident ')'             -- parameter score
    literal   := NUMBER | STRING | TRUE | FALSE | NULL | DATE STRING

Every AST node produced here carries its ``(start, end)`` source span,
and every :class:`~repro.sql.errors.SQLError` leaving :func:`parse`
carries the query text, so error messages include a caret snippet
pointing at the offending characters.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.sql.errors import SQLError
from repro.sql.lexer import (
    AGGREGATE_KEYWORDS,
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OPERATOR,
    PUNCT,
    STRING,
    Token,
    parse_date_literal,
    tokenize,
)
from repro.sql.nodes import (
    AggregateCall,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    NotOp,
    Operand,
    OrderItem,
    QualityRef,
    QualityScoreRef,
    SelectItem,
    SelectStatement,
)


def _merge_spans(*spans: Optional[tuple[int, int]]) -> Optional[tuple[int, int]]:
    known = [s for s in spans if s is not None]
    if not known:
        return None
    return (min(s[0] for s in known), max(s[1] for s in known))


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        self._index += 1
        return token

    def expect(self, kind: str, value: Any = None) -> Token:
        token = self.current
        if not token.matches(kind, value):
            wanted = value if value is not None else kind
            raise SQLError(
                f"expected {wanted!r}, found {token.value!r}",
                token.position,
                token.end,
            )
        return self.advance()

    def accept(self, kind: str, value: Any = None) -> Optional[Token]:
        if self.current.matches(kind, value):
            return self.advance()
        return None

    # -- grammar ---------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        explain = bool(self.accept(KEYWORD, "EXPLAIN"))
        analyze = bool(explain and self.accept(KEYWORD, "ANALYZE"))
        self.expect(KEYWORD, "SELECT")
        distinct = bool(self.accept(KEYWORD, "DISTINCT"))
        select_items = self._parse_select_items()
        self.expect(KEYWORD, "FROM")
        relation_token = self.expect(IDENT)
        relation = relation_token.value
        where: Optional[Expr] = None
        if self.accept(KEYWORD, "WHERE"):
            where = self._parse_expr()
        group_by: tuple[Any, ...] = ()
        if self.accept(KEYWORD, "GROUP"):
            self.expect(KEYWORD, "BY")
            keys = [self._parse_group_key()]
            while self.accept(PUNCT, ","):
                keys.append(self._parse_group_key())
            group_by = tuple(keys)
        order_by: tuple[OrderItem, ...] = ()
        if self.accept(KEYWORD, "ORDER"):
            self.expect(KEYWORD, "BY")
            order_by = self._parse_order_items()
        limit: Optional[int] = None
        if self.accept(KEYWORD, "LIMIT"):
            token = self.expect(NUMBER)
            if not isinstance(token.value, int) or token.value < 0:
                raise SQLError(
                    f"LIMIT must be a non-negative integer, got {token.value!r}",
                    token.position,
                    token.end,
                )
            limit = token.value
        self.expect(EOF)

        statement = SelectStatement(
            columns=self._plain_columns(select_items),
            relation=relation,
            where=where,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            select_items=select_items,
            group_by=group_by,
            explain=explain,
            analyze=analyze,
            relation_span=relation_token.span,
        )
        self._validate_grouping(statement)
        return statement

    @staticmethod
    def _plain_columns(
        select_items: Optional[tuple[SelectItem, ...]],
    ) -> Optional[tuple[str, ...]]:
        """The simple-projection view: plain unaliased column names."""
        if select_items is None:
            return None
        if all(
            isinstance(item.expr, ColumnRef) and item.alias is None
            for item in select_items
        ):
            return tuple(item.expr.column for item in select_items)
        return tuple(item.output_name for item in select_items)

    def _parse_group_key(self):
        if self.current.matches(KEYWORD, "QUALITY"):
            return self._parse_quality_ref()
        token = self.expect(IDENT)
        return ColumnRef(token.value, span=token.span)

    def _validate_grouping(self, statement: SelectStatement) -> None:
        if statement.group_by and not statement.has_aggregates:
            raise SQLError("GROUP BY requires at least one aggregate")
        if statement.has_aggregates:
            if statement.distinct:
                raise SQLError("DISTINCT cannot combine with aggregates")
            for item in statement.select_items or ():
                if item.is_aggregate:
                    continue
                if item.expr not in statement.group_by:
                    start, end = item.span or (-1, -1)
                    raise SQLError(
                        f"select item {item.output_name!r} must appear "
                        f"in GROUP BY",
                        start,
                        end,
                    )

    def _parse_select_items(self) -> Optional[tuple[SelectItem, ...]]:
        if self.accept(PUNCT, "*"):
            return None
        items = [self._parse_select_item()]
        while self.accept(PUNCT, ","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        token = self.current
        expr: Any
        if token.kind == KEYWORD and token.value in AGGREGATE_KEYWORDS:
            func = self.advance().value
            self.expect(PUNCT, "(")
            if self.accept(PUNCT, "*"):
                if func != "COUNT":
                    raise SQLError(
                        f"{func}(*) is not supported (only COUNT(*))",
                        token.position,
                        token.end,
                    )
                operand = None
            elif self.current.matches(KEYWORD, "QUALITY"):
                operand = self._parse_quality_ref()
            else:
                inner = self.expect(IDENT)
                operand = ColumnRef(inner.value, span=inner.span)
            close = self.expect(PUNCT, ")")
            expr = AggregateCall(
                func, operand, span=(token.position, close.end)
            )
        elif token.matches(KEYWORD, "QUALITY"):
            expr = self._parse_quality_ref()
        else:
            ident = self.expect(IDENT)
            expr = ColumnRef(ident.value, span=ident.span)
        alias = None
        if self.accept(KEYWORD, "AS"):
            alias = self.expect(IDENT).value
        return SelectItem(expr, alias)

    def _parse_order_items(self) -> tuple[OrderItem, ...]:
        items = [self._parse_order_item()]
        while self.accept(PUNCT, ","):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> OrderItem:
        key: Union[ColumnRef, QualityRef, QualityScoreRef]
        if self.current.matches(KEYWORD, "QUALITY"):
            key = self._parse_quality_ref()
        else:
            token = self.expect(IDENT)
            key = ColumnRef(token.value, span=token.span)
        descending = False
        if self.accept(KEYWORD, "DESC"):
            descending = True
        else:
            self.accept(KEYWORD, "ASC")
        return OrderItem(key, descending)

    # -- expressions ----------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept(KEYWORD, "OR"):
            right = self._parse_and()
            left = BoolOp(
                "OR", left, right, span=_merge_spans(left.span, right.span)
            )
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_unary()
        while self.accept(KEYWORD, "AND"):
            right = self._parse_unary()
            left = BoolOp(
                "AND", left, right, span=_merge_spans(left.span, right.span)
            )
        return left

    def _parse_unary(self) -> Expr:
        not_token = self.accept(KEYWORD, "NOT")
        if not_token:
            inner = self._parse_unary()
            return NotOp(
                inner, span=_merge_spans(not_token.span, inner.span)
            )
        if self.accept(PUNCT, "("):
            inner = self._parse_expr()
            self.expect(PUNCT, ")")
            return inner
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        operand = self._parse_operand()
        if self.current.matches(OPERATOR):
            op = self.advance().value
            right = self._parse_operand()
            return Comparison(
                op, operand, right, span=_merge_spans(operand.span, right.span)
            )
        if self.current.matches(KEYWORD, "IS"):
            self.advance()
            negated = bool(self.accept(KEYWORD, "NOT"))
            null_token = self.expect(KEYWORD, "NULL")
            return IsNull(
                operand,
                negated,
                span=_merge_spans(operand.span, null_token.span),
            )
        negated = bool(self.accept(KEYWORD, "NOT"))
        if self.accept(KEYWORD, "IN"):
            self.expect(PUNCT, "(")
            options = [self._parse_literal().value]
            while self.accept(PUNCT, ","):
                options.append(self._parse_literal().value)
            close = self.expect(PUNCT, ")")
            return InList(
                operand,
                tuple(options),
                negated,
                span=_merge_spans(operand.span, close.span),
            )
        if negated:
            raise SQLError(
                "NOT must be followed by IN here",
                self.current.position,
                self.current.end,
            )
        raise SQLError(
            f"expected a comparison, IN, or IS after operand, found "
            f"{self.current.value!r}",
            self.current.position,
            self.current.end,
        )

    def _parse_operand(self) -> Operand:
        token = self.current
        if token.matches(KEYWORD, "QUALITY"):
            return self._parse_quality_ref()
        if token.kind in (NUMBER, STRING) or token.matches(
            KEYWORD, "TRUE"
        ) or token.matches(KEYWORD, "FALSE") or token.matches(
            KEYWORD, "NULL"
        ) or token.matches(KEYWORD, "DATE"):
            return self._parse_literal()
        if token.kind == IDENT:
            self.advance()
            return ColumnRef(token.value, span=token.span)
        raise SQLError(
            f"expected a column, literal, or QUALITY(...), found "
            f"{token.value!r}",
            token.position,
            token.end,
        )

    def _parse_quality_ref(self) -> Union[QualityRef, QualityScoreRef]:
        open_token = self.expect(KEYWORD, "QUALITY")
        self.expect(PUNCT, "(")
        first = self.expect(IDENT).value
        if self.accept(PUNCT, "."):
            indicator = self.expect(IDENT).value
            close = self.expect(PUNCT, ")")
            return QualityRef(
                first, indicator, span=(open_token.position, close.end)
            )
        close = self.expect(PUNCT, ")")
        return QualityScoreRef(first, span=(open_token.position, close.end))

    def _parse_literal(self) -> Literal:
        token = self.current
        if token.kind in (NUMBER, STRING):
            self.advance()
            return Literal(token.value, span=token.span)
        if token.matches(KEYWORD, "TRUE"):
            self.advance()
            return Literal(True, span=token.span)
        if token.matches(KEYWORD, "FALSE"):
            self.advance()
            return Literal(False, span=token.span)
        if token.matches(KEYWORD, "NULL"):
            self.advance()
            return Literal(None, span=token.span)
        if token.matches(KEYWORD, "DATE"):
            self.advance()
            body = self.expect(STRING)
            return Literal(
                parse_date_literal(body.value, body.position, body.end),
                span=(token.position, body.end),
            )
        raise SQLError(
            f"expected a literal, found {token.value!r}",
            token.position,
            token.end,
        )


def parse(text: str) -> SelectStatement:
    """Parse a QSQL SELECT statement into its AST.

    Any :class:`SQLError` raised while lexing or parsing is re-raised
    with the query text attached, so its message includes a caret
    snippet under the offending span.
    """
    try:
        return _Parser(tokenize(text)).parse_select()
    except SQLError as exc:
        if exc.source is None and exc.position >= 0:
            raise exc.with_source(text) from None
        raise
