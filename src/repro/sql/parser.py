"""QSQL recursive-descent parser.

Grammar (simplified)::

    select    := SELECT [DISTINCT] columns FROM ident
                 [WHERE expr] [ORDER BY order_items] [LIMIT number]
    columns   := '*' | ident (',' ident)*
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := unary (AND unary)*
    unary     := NOT unary | '(' expr ')' | predicate
    predicate := operand ( cmp operand
                         | [NOT] IN '(' literal (',' literal)* ')'
                         | IS [NOT] NULL )
    operand   := literal | quality_ref | ident
    quality_ref := QUALITY '(' ident '.' ident ')'
    literal   := NUMBER | STRING | TRUE | FALSE | NULL | DATE STRING
"""

from __future__ import annotations

from typing import Any, Optional, Union

from repro.sql.errors import SQLError
from repro.sql.lexer import (
    AGGREGATE_KEYWORDS,
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OPERATOR,
    PUNCT,
    STRING,
    Token,
    parse_date_literal,
    tokenize,
)
from repro.sql.nodes import (
    AggregateCall,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Literal,
    NotOp,
    Operand,
    OrderItem,
    QualityRef,
    SelectItem,
    SelectStatement,
)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        self._index += 1
        return token

    def expect(self, kind: str, value: Any = None) -> Token:
        token = self.current
        if not token.matches(kind, value):
            wanted = value if value is not None else kind
            raise SQLError(
                f"expected {wanted!r}, found {token.value!r}", token.position
            )
        return self.advance()

    def accept(self, kind: str, value: Any = None) -> Optional[Token]:
        if self.current.matches(kind, value):
            return self.advance()
        return None

    # -- grammar ---------------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self.expect(KEYWORD, "SELECT")
        distinct = bool(self.accept(KEYWORD, "DISTINCT"))
        select_items = self._parse_select_items()
        self.expect(KEYWORD, "FROM")
        relation = self.expect(IDENT).value
        where: Optional[Expr] = None
        if self.accept(KEYWORD, "WHERE"):
            where = self._parse_expr()
        group_by: tuple[Any, ...] = ()
        if self.accept(KEYWORD, "GROUP"):
            self.expect(KEYWORD, "BY")
            keys = [self._parse_group_key()]
            while self.accept(PUNCT, ","):
                keys.append(self._parse_group_key())
            group_by = tuple(keys)
        order_by: tuple[OrderItem, ...] = ()
        if self.accept(KEYWORD, "ORDER"):
            self.expect(KEYWORD, "BY")
            order_by = self._parse_order_items()
        limit: Optional[int] = None
        if self.accept(KEYWORD, "LIMIT"):
            token = self.expect(NUMBER)
            if not isinstance(token.value, int) or token.value < 0:
                raise SQLError(
                    f"LIMIT must be a non-negative integer, got {token.value!r}",
                    token.position,
                )
            limit = token.value
        self.expect(EOF)

        statement = SelectStatement(
            columns=self._plain_columns(select_items),
            relation=relation,
            where=where,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            select_items=select_items,
            group_by=group_by,
        )
        self._validate_grouping(statement)
        return statement

    @staticmethod
    def _plain_columns(
        select_items: Optional[tuple[SelectItem, ...]],
    ) -> Optional[tuple[str, ...]]:
        """The simple-projection view: plain unaliased column names."""
        if select_items is None:
            return None
        if all(
            isinstance(item.expr, ColumnRef) and item.alias is None
            for item in select_items
        ):
            return tuple(item.expr.column for item in select_items)
        return tuple(item.output_name for item in select_items)

    def _parse_group_key(self):
        if self.current.matches(KEYWORD, "QUALITY"):
            return self._parse_quality_ref()
        return ColumnRef(self.expect(IDENT).value)

    def _validate_grouping(self, statement: SelectStatement) -> None:
        if statement.group_by and not statement.has_aggregates:
            raise SQLError("GROUP BY requires at least one aggregate")
        if statement.has_aggregates:
            if statement.distinct:
                raise SQLError("DISTINCT cannot combine with aggregates")
            for item in statement.select_items or ():
                if item.is_aggregate:
                    continue
                if item.expr not in statement.group_by:
                    raise SQLError(
                        f"select item {item.output_name!r} must appear "
                        f"in GROUP BY"
                    )

    def _parse_select_items(self) -> Optional[tuple[SelectItem, ...]]:
        if self.accept(PUNCT, "*"):
            return None
        items = [self._parse_select_item()]
        while self.accept(PUNCT, ","):
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        token = self.current
        expr: Any
        if token.kind == KEYWORD and token.value in AGGREGATE_KEYWORDS:
            func = self.advance().value
            self.expect(PUNCT, "(")
            if self.accept(PUNCT, "*"):
                if func != "COUNT":
                    raise SQLError(
                        f"{func}(*) is not supported (only COUNT(*))",
                        token.position,
                    )
                operand = None
            elif self.current.matches(KEYWORD, "QUALITY"):
                operand = self._parse_quality_ref()
            else:
                operand = ColumnRef(self.expect(IDENT).value)
            self.expect(PUNCT, ")")
            expr = AggregateCall(func, operand)
        elif token.matches(KEYWORD, "QUALITY"):
            expr = self._parse_quality_ref()
        else:
            expr = ColumnRef(self.expect(IDENT).value)
        alias = None
        if self.accept(KEYWORD, "AS"):
            alias = self.expect(IDENT).value
        return SelectItem(expr, alias)

    def _parse_order_items(self) -> tuple[OrderItem, ...]:
        items = [self._parse_order_item()]
        while self.accept(PUNCT, ","):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> OrderItem:
        key: Union[ColumnRef, QualityRef]
        if self.current.matches(KEYWORD, "QUALITY"):
            key = self._parse_quality_ref()
        else:
            key = ColumnRef(self.expect(IDENT).value)
        descending = False
        if self.accept(KEYWORD, "DESC"):
            descending = True
        else:
            self.accept(KEYWORD, "ASC")
        return OrderItem(key, descending)

    # -- expressions ----------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept(KEYWORD, "OR"):
            left = BoolOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_unary()
        while self.accept(KEYWORD, "AND"):
            left = BoolOp("AND", left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self.accept(KEYWORD, "NOT"):
            return NotOp(self._parse_unary())
        if self.accept(PUNCT, "("):
            inner = self._parse_expr()
            self.expect(PUNCT, ")")
            return inner
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        operand = self._parse_operand()
        if self.current.matches(OPERATOR):
            op = self.advance().value
            right = self._parse_operand()
            return Comparison(op, operand, right)
        if self.current.matches(KEYWORD, "IS"):
            self.advance()
            negated = bool(self.accept(KEYWORD, "NOT"))
            self.expect(KEYWORD, "NULL")
            return IsNull(operand, negated)
        negated = bool(self.accept(KEYWORD, "NOT"))
        if self.accept(KEYWORD, "IN"):
            self.expect(PUNCT, "(")
            options = [self._parse_literal().value]
            while self.accept(PUNCT, ","):
                options.append(self._parse_literal().value)
            self.expect(PUNCT, ")")
            return InList(operand, tuple(options), negated)
        if negated:
            raise SQLError(
                "NOT must be followed by IN here", self.current.position
            )
        raise SQLError(
            f"expected a comparison, IN, or IS after operand, found "
            f"{self.current.value!r}",
            self.current.position,
        )

    def _parse_operand(self) -> Operand:
        token = self.current
        if token.matches(KEYWORD, "QUALITY"):
            return self._parse_quality_ref()
        if token.kind in (NUMBER, STRING) or token.matches(
            KEYWORD, "TRUE"
        ) or token.matches(KEYWORD, "FALSE") or token.matches(
            KEYWORD, "NULL"
        ) or token.matches(KEYWORD, "DATE"):
            return self._parse_literal()
        if token.kind == IDENT:
            self.advance()
            return ColumnRef(token.value)
        raise SQLError(
            f"expected a column, literal, or QUALITY(...), found "
            f"{token.value!r}",
            token.position,
        )

    def _parse_quality_ref(self) -> QualityRef:
        self.expect(KEYWORD, "QUALITY")
        self.expect(PUNCT, "(")
        column = self.expect(IDENT).value
        self.expect(PUNCT, ".")
        indicator = self.expect(IDENT).value
        self.expect(PUNCT, ")")
        return QualityRef(column, indicator)

    def _parse_literal(self) -> Literal:
        token = self.current
        if token.kind in (NUMBER, STRING):
            self.advance()
            return Literal(token.value)
        if token.matches(KEYWORD, "TRUE"):
            self.advance()
            return Literal(True)
        if token.matches(KEYWORD, "FALSE"):
            self.advance()
            return Literal(False)
        if token.matches(KEYWORD, "NULL"):
            self.advance()
            return Literal(None)
        if token.matches(KEYWORD, "DATE"):
            self.advance()
            body = self.expect(STRING)
            return Literal(parse_date_literal(body.value, body.position))
        raise SQLError(f"expected a literal, found {token.value!r}", token.position)


def parse(text: str) -> SelectStatement:
    """Parse a QSQL SELECT statement into its AST."""
    return _Parser(tokenize(text)).parse_select()
