"""QSQL execution over relations, tagged relations, and databases.

``execute(sql, source)`` accepts:

- a :class:`~repro.tagging.relation.TaggedRelation` (full QSQL,
  including ``QUALITY(...)`` references);
- a :class:`~repro.relational.relation.Relation` (QUALITY references
  are rejected — untagged data has no tags to query);
- a :class:`~repro.relational.catalog.Database` or a mapping of
  relation name → relation/tagged relation (the FROM clause resolves
  against it).

Results preserve the input's flavor: tagged sources yield tagged
relations (tags travel through the query, per the attribute-based
model), plain sources yield plain relations.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Union

from repro.relational import algebra as plain_algebra
from repro.relational.catalog import Database
from repro.relational.relation import Relation, Row
from repro.sql.errors import SQLError
from repro.sql.nodes import (
    AggregateCall,
    BoolOp,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    NotOp,
    QualityRef,
    QualityScoreRef,
    SelectItem,
    SelectStatement,
)
from repro.sql.parser import parse
from repro.tagging import algebra as tagged_algebra
from repro.tagging.relation import TaggedRelation, TaggedRow

AnyRelation = Union[Relation, TaggedRelation]

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _resolve_relation(
    statement: SelectStatement,
    source: AnyRelation | Database | Mapping[str, AnyRelation],
) -> AnyRelation:
    if isinstance(source, (Relation, TaggedRelation)):
        if source.schema.name != statement.relation:
            raise SQLError(
                f"FROM {statement.relation!r} does not match the supplied "
                f"relation {source.schema.name!r}"
            )
        return source
    if isinstance(source, Database):
        return source.relation(statement.relation)
    if isinstance(source, Mapping):
        try:
            return source[statement.relation]
        except KeyError:
            raise SQLError(
                f"unknown relation {statement.relation!r} "
                f"(available: {sorted(source)})"
            ) from None
    raise SQLError(
        f"cannot execute against source of type {type(source).__name__}"
    )


def _compile_operand(
    operand: Any, schema: Any, tagged: bool, tag_schema: Any = None
) -> Callable[[Row | TaggedRow], Any]:
    """Compile an operand node into a per-row getter.

    Column positions resolve once at compile time, so the per-row work
    is a tuple index instead of a name lookup and isinstance dispatch.
    ``tag_schema`` is only needed for ``QUALITY(parameter)`` score
    references (it names the scorable columns).
    """
    if isinstance(operand, Literal):
        value = operand.value
        return lambda row: value
    if isinstance(operand, ColumnRef):
        position = schema.position(operand.column)
        if tagged:
            return lambda row: row.cells[position].value
        return lambda row: row.at(position)
    if isinstance(operand, QualityRef):
        if not tagged:
            raise SQLError(
                "QUALITY(...) requires a tagged relation; the source is untagged"
            )
        position = schema.position(operand.column)
        indicator = operand.indicator
        return lambda row: row.cells[position].tag_value(indicator)
    if isinstance(operand, QualityScoreRef):
        if not tagged or tag_schema is None:
            raise SQLError(
                "QUALITY(...) requires a tagged relation; the source is untagged"
            )
        from repro.quality.materialize import (
            profile_for,
            row_parameter_score,
        )

        parameter = operand.parameter
        name = schema.name
        positions = tuple(
            schema.position(column)
            for column in tag_schema.tagged_columns
        )

        def get(row: TaggedRow) -> Any:
            # Resolved per row (a dict lookup) so cached closures never
            # pin a superseded profile registration.
            profile = profile_for(name)
            if profile is None or not profile.defines(parameter):
                raise SQLError(
                    f"QUALITY({parameter}) has no registered scoring "
                    f"profile defining {parameter!r} for relation "
                    f"{name!r}"
                )
            return row_parameter_score(profile, parameter, row, positions)

        return get
    raise SQLError(f"unknown operand node {operand!r}")


def _check_columns(statement: SelectStatement, relation: AnyRelation) -> None:
    """Validate every referenced column upfront (fail fast, not per-row).

    Routed through the analyzer's reference resolver
    (:func:`repro.analysis.query.reference_diagnostics`), the single
    implementation of name resolution — an unknown column raises here
    with exactly the DQ202 message.  Unknown-column errors take
    precedence over QUALITY-on-untagged, matching the historical check
    order; unknown *indicators* (DQ203/DQ204) do not raise — at
    execution time a missing tag reads as NULL.
    """
    from repro.errors import UnknownColumnError
    from repro.analysis.query import reference_diagnostics

    diagnostics = reference_diagnostics(statement, relation)
    for diagnostic in diagnostics:
        if diagnostic.code == "DQ202":
            raise UnknownColumnError(diagnostic.message)
    for diagnostic in diagnostics:
        if diagnostic.code == "DQ205":
            raise SQLError(
                "QUALITY(...) requires a tagged relation; the source is "
                "untagged"
            )


def _compile_predicate(
    expr: Any, schema: Any, tagged: bool, tag_schema: Any = None
) -> Callable[[Row | TaggedRow], bool]:
    """Compile a WHERE tree into one per-row predicate closure.

    The AST is walked once here; the returned closures short-circuit
    AND/OR without re-dispatching on node types per row.
    """
    if isinstance(expr, Comparison):
        left = _compile_operand(expr.left, schema, tagged, tag_schema)
        right = _compile_operand(expr.right, schema, tagged, tag_schema)
        compare = _COMPARATORS[expr.op]

        def test(row: Row | TaggedRow) -> bool:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return False  # SQL-style: comparisons with NULL are not true
            try:
                return compare(a, b)
            except TypeError:
                return False

        return test
    if isinstance(expr, InList):
        get = _compile_operand(expr.operand, schema, tagged, tag_schema)
        options = expr.options
        negated = expr.negated

        def test(row: Row | TaggedRow) -> bool:
            value = get(row)
            if value is None:
                return False
            result = value in options
            return (not result) if negated else result

        return test
    if isinstance(expr, IsNull):
        get = _compile_operand(expr.operand, schema, tagged, tag_schema)
        if expr.negated:
            return lambda row: get(row) is not None
        return lambda row: get(row) is None
    if isinstance(expr, BoolOp):
        left_test = _compile_predicate(expr.left, schema, tagged, tag_schema)
        right_test = _compile_predicate(expr.right, schema, tagged, tag_schema)
        if expr.op == "AND":
            return lambda row: left_test(row) and right_test(row)
        return lambda row: left_test(row) or right_test(row)
    if isinstance(expr, NotOp):
        inner = _compile_predicate(expr.operand, schema, tagged, tag_schema)
        return lambda row: not inner(row)
    raise SQLError(f"unknown expression node {expr!r}")


def _sort_key_function(items: tuple, schema: Any, tagged: bool, tag_schema: Any = None):
    getters = []
    for item in items:
        if isinstance(item.key, (QualityRef, QualityScoreRef)):
            getters.append(
                _compile_operand(item.key, schema, tagged, tag_schema)
            )
        else:
            position = schema.position(item.key.column)
            if tagged:
                getters.append(
                    lambda row, p=position: row.cells[p].value
                )
            else:
                getters.append(lambda row, p=position: row.at(p))

    def key(row: Row | TaggedRow) -> tuple:
        # None-safe ordering with per-item direction support handled
        # by sorting repeatedly (stable sort), so here single value.
        parts = []
        for get in getters:
            value = get(row)
            parts.append((value is not None, value))
        return tuple(parts)

    return key


def _operand_domain(
    operand: Union[ColumnRef, QualityRef, QualityScoreRef],
    relation: AnyRelation,
):
    from repro.relational.types import FLOAT, STR

    if isinstance(operand, ColumnRef):
        return relation.schema.column(operand.column).domain
    if isinstance(operand, QualityScoreRef):
        return FLOAT  # parameter scores live in [0, 1]
    if isinstance(relation, TaggedRelation):
        try:
            return relation.tag_schema.definition(operand.indicator).domain
        except Exception:
            return STR
    return STR  # pragma: no cover - QUALITY on plain rejected earlier


def _item_output_domain(item: SelectItem, relation: AnyRelation):
    from repro.relational.types import FLOAT, INT

    expr = item.expr
    if isinstance(expr, AggregateCall):
        if expr.func == "COUNT":
            return INT
        if expr.func in ("SUM", "AVG"):
            return FLOAT
        assert expr.operand is not None  # parser guarantees for MIN/MAX
        return _operand_domain(expr.operand, relation)
    return _operand_domain(expr, relation)


def _execute_aggregate(
    statement: SelectStatement, relation: AnyRelation, tagged: bool
) -> Relation:
    """GROUP BY + aggregate evaluation; always yields a plain relation."""
    from repro.relational.algebra import AGGREGATES
    from repro.relational.schema import Column, RelationSchema

    items = statement.select_items or ()
    out_columns = [
        Column(item.output_name, _item_output_domain(item, relation))
        for item in items
    ]
    out_schema = RelationSchema(f"{statement.relation}_agg", out_columns)

    tag_schema = relation.tag_schema if tagged else None
    key_getters = [
        _compile_operand(key_ref, relation.schema, tagged, tag_schema)
        for key_ref in statement.group_by
    ]
    groups: dict[tuple[Any, ...], list[Any]] = {}
    order: list[tuple[Any, ...]] = []
    for row in relation:
        key = tuple(get(row) for get in key_getters)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    if not statement.group_by and not groups:
        groups[()] = []
        order.append(())

    def item_evaluator(item: SelectItem) -> Callable[[list, dict], Any]:
        expr = item.expr
        if isinstance(expr, AggregateCall):
            if expr.operand is None:  # COUNT(*)
                return lambda rows, key_values: len(rows)
            get = _compile_operand(
                expr.operand, relation.schema, tagged, tag_schema
            )
            combine = AGGREGATES[expr.func.lower()]
            return lambda rows, key_values: combine([get(row) for row in rows])
        # A grouping key (validated by the parser).
        return lambda rows, key_values: key_values[expr]

    evaluators = [(item.output_name, item_evaluator(item)) for item in items]
    result = Relation(out_schema)
    for key in order:
        rows = groups[key]
        key_values = dict(zip(statement.group_by, key))
        # Aggregates compute *new* values, so they go through the
        # validating insert, unlike pass-through rows elsewhere.
        result.insert(
            {name: evaluate(rows, key_values) for name, evaluate in evaluators}
        )
    return result


def _computed_projection(
    statement: SelectStatement, relation: AnyRelation, tagged: bool
) -> Relation:
    """Materialize a select list containing QUALITY(...) value columns."""
    from repro.relational.schema import Column, RelationSchema

    items = statement.select_items or ()
    out_schema = RelationSchema(
        relation.schema.name,
        [
            Column(item.output_name, _item_output_domain(item, relation))
            for item in items
        ],
    )
    tag_schema = relation.tag_schema if tagged else None
    getters = [
        (
            item.output_name,
            _compile_operand(item.expr, relation.schema, tagged, tag_schema),
        )
        for item in items
    ]
    result = Relation(out_schema)
    for row in relation:
        result.insert({name: get(row) for name, get in getters})
    return result


def _apply_order(
    statement: SelectStatement, result: AnyRelation, tagged: bool
) -> AnyRelation:
    # Stable multi-key sort honoring per-item direction: sort by the
    # least-significant key first.
    rows = list(result)
    tag_schema = getattr(result, "tag_schema", None) if tagged else None
    for item in reversed(statement.order_by):
        rows.sort(
            key=_sort_key_function((item,), result.schema, tagged, tag_schema),
            reverse=item.descending,
        )
    ordered = result.empty_like()
    for row in rows:
        ordered._insert_validated(row)
    return ordered


def execute(
    sql: str,
    source: AnyRelation | Database | Mapping[str, AnyRelation],
    *,
    strict: bool = False,
    planner: bool = True,
    columnar: bool = True,
    stats: Any = None,
) -> AnyRelation:
    """Parse and execute a QSQL SELECT; returns a (tagged) relation.

    Aggregate queries (``COUNT``/``SUM``/``AVG``/``MIN``/``MAX``, with
    optional ``GROUP BY``) always return a *plain* relation — aggregated
    values have no single manufacturing history to tag.

    With ``strict=True`` the statement first runs through the static
    analyzer (:mod:`repro.analysis`); error-severity diagnostics raise
    :class:`~repro.analysis.diagnostics.QueryAnalysisError` *before*
    any row is touched, with every problem reported at once.

    By default statements run through the query planner
    (:mod:`repro.sql.plan` / :mod:`repro.sql.optimizer` /
    :mod:`repro.sql.physical`) with plan caching
    (:mod:`repro.sql.plancache`): repeated statement texts skip
    lexing, parsing, and planning, and QUALITY predicates route through
    the relation's columnar tag store.  ``planner=False`` is the escape
    hatch onto the direct interpretation path below (one compiled
    closure per clause, no plan, no cache) — semantically equivalent,
    and kept as the reference baseline.

    On the planner path, scan-heavy fragments over sufficiently large
    plain relations execute *columnar*: per-column value arrays plus a
    selection vector, with ``Row`` objects materialized only at the
    plan's ``Materialize`` boundary (EXPLAIN shows the chosen access
    path).  ``columnar=False`` is the escape hatch forcing row-at-a-
    time plans; it is ignored by ``planner=False``, whose
    interpretation path is always row-at-a-time.

    ``stats`` accepts a :class:`~repro.obs.stats.StatsCollector`: after
    the call it holds the per-operator execution tree (what
    ``EXPLAIN ANALYZE`` renders) plus total time, row count, and — on
    the planner path — whether a cached plan was reused.  Collection is
    per-call and never changes the result.
    """
    if planner:
        # Imported lazily: plancache depends on this module.
        from repro.sql.plancache import execute_planned

        return execute_planned(
            sql, source, strict=strict, collector=stats, columnar=columnar
        )
    return _execute_unplanned(sql, source, strict=strict, collector=stats)


def _explain_requires_planner(sql: str, statement: SelectStatement) -> None:
    """Raise the DQ209 diagnostic: EXPLAIN has no plan to render here.

    Historically ``execute(..., planner=False)`` silently routed EXPLAIN
    through the planner anyway — contradicting the caller's explicit
    request for the plan-free path.  Now it fails loudly instead.
    """
    from repro.analysis.diagnostics import Diagnostics, QueryAnalysisError

    keyword = "EXPLAIN ANALYZE" if statement.analyze else "EXPLAIN"
    start = sql.upper().find("EXPLAIN")
    span = (start, start + len(keyword)) if start >= 0 else None
    diagnostics = Diagnostics()
    diagnostics.add(
        "DQ209",
        f"{keyword} requires the planner: it reports the optimized plan, "
        f"which execute(..., planner=False) never builds; drop "
        f"planner=False or drop the {keyword} keyword",
        span=span,
        source=sql,
    )
    raise QueryAnalysisError(diagnostics, sql)


def _execute_unplanned(
    sql: str,
    source: AnyRelation | Database | Mapping[str, AnyRelation],
    *,
    strict: bool = False,
    collector: Any = None,
) -> AnyRelation:
    """The planner-free execution path (see ``execute(planner=False)``)."""
    from time import perf_counter

    statement = parse(sql)
    if strict:
        # Imported lazily: plancache depends on this module.  The memo
        # it keeps makes repeat strict runs free on this path too.
        from repro.sql.plancache import run_strict_analysis

        run_strict_analysis(statement, source, sql)
    if statement.explain:
        _explain_requires_planner(sql, statement)

    # Per-stage statistics: ``stages`` collects (label, rows out,
    # seconds) per executed clause, in pipeline order, only when a
    # collector was passed — the common path never starts a timer.
    stages: list[tuple[str, int, float]] | None = (
        [] if collector is not None else None
    )
    total_start = perf_counter() if collector is not None else 0.0

    def _finish(result: AnyRelation) -> AnyRelation:
        if collector is not None:
            from repro.obs.stats import ExecutionStats

            collector._fill(
                sql,
                ExecutionStats.from_stages(stages),
                perf_counter() - total_start,
                len(result),
                planned=False,
                cache_hit=False,
            )
        return result

    relation = _resolve_relation(statement, source)
    tagged = isinstance(relation, TaggedRelation)
    _check_columns(statement, relation)
    if statement.uses_quality() and not tagged:
        raise SQLError(
            "QUALITY(...) requires a tagged relation; the source is untagged"
        )

    algebra = tagged_algebra if tagged else plain_algebra
    result: AnyRelation = relation
    if stages is not None:
        flavor = "tagged" if tagged else "plain"
        stages.append(
            (f"Scan [{statement.relation} ({flavor})]", len(relation), 0.0)
        )

    if statement.where is not None:
        stage_start = perf_counter() if stages is not None else 0.0
        result = algebra.select(
            result,
            _compile_predicate(
                statement.where,
                relation.schema,
                tagged,
                relation.tag_schema if tagged else None,
            ),
        )
        if stages is not None:
            stages.append(
                (
                    "Filter [WHERE]",
                    len(result),
                    perf_counter() - stage_start,
                )
            )

    if statement.has_aggregates:
        stage_start = perf_counter() if stages is not None else 0.0
        aggregated = _execute_aggregate(statement, result, tagged)
        if stages is not None:
            stages.append(
                ("Aggregate", len(aggregated), perf_counter() - stage_start)
            )
        if statement.order_by:
            for item in statement.order_by:
                if isinstance(item.key, (QualityRef, QualityScoreRef)):
                    raise SQLError(
                        "ORDER BY QUALITY(...) cannot follow aggregation"
                    )
                aggregated.schema.column(item.key.column)
            stage_start = perf_counter() if stages is not None else 0.0
            aggregated = _apply_order(statement, aggregated, tagged=False)
            if stages is not None:
                stages.append(
                    ("Sort", len(aggregated), perf_counter() - stage_start)
                )
        if statement.limit is not None:
            aggregated = plain_algebra.limit(aggregated, statement.limit)
            if stages is not None:
                stages.append(
                    (f"Limit [{statement.limit}]", len(aggregated), 0.0)
                )
        return _finish(aggregated)

    if statement.order_by:
        stage_start = perf_counter() if stages is not None else 0.0
        result = _apply_order(statement, result, tagged)
        if stages is not None:
            stages.append(("Sort", len(result), perf_counter() - stage_start))

    items = statement.select_items
    if items is not None:
        stage_start = perf_counter() if stages is not None else 0.0
        needs_materialization = any(
            isinstance(item.expr, (QualityRef, QualityScoreRef))
            for item in items
        )
        if needs_materialization:
            result = _computed_projection(statement, result, tagged)
            tagged = False
            algebra = plain_algebra
        else:
            names = [item.expr.column for item in items]  # type: ignore[union-attr]
            result = algebra.project(result, names)
            renames = {
                item.expr.column: item.alias  # type: ignore[union-attr]
                for item in items
                if item.alias and item.alias != item.expr.column  # type: ignore[union-attr]
            }
            if renames:
                result = algebra.rename(result, renames)
        if stages is not None:
            stages.append(
                ("Project", len(result), perf_counter() - stage_start)
            )

    if statement.distinct:
        stage_start = perf_counter() if stages is not None else 0.0
        if tagged:
            result = tagged_algebra.distinct_values(result)
        else:
            result = plain_algebra.distinct(result)
        if stages is not None:
            stages.append(
                ("Distinct", len(result), perf_counter() - stage_start)
            )

    if statement.limit is not None:
        result = algebra.limit(result, statement.limit)
        if stages is not None:
            stages.append((f"Limit [{statement.limit}]", len(result), 0.0))

    return _finish(result)
