"""QSQL: a small SQL dialect with quality predicates.

The paper's mechanism is "the ability to query over [tags]" at query
time.  The fluent builders (:class:`repro.relational.query.Query`,
:class:`repro.tagging.query.QualityQuery`) give that ability to Python
code; QSQL gives it to strings, so applications and the administrator's
tooling can store and exchange quality-constrained queries:

    SELECT co_name, employees
    FROM customer
    WHERE employees > 100
      AND QUALITY(employees.source) <> 'estimate'
      AND QUALITY(address.creation_time) >= DATE '1991-06-01'
    ORDER BY co_name
    LIMIT 10

Supported: projections (or ``*``) with ``AS`` aliases and
``QUALITY(...)`` value columns; comparison/IN/IS NULL predicates over
values and ``QUALITY(column.indicator)`` tag references; AND/OR/NOT with
parentheses; aggregates ``COUNT/SUM/AVG/MIN/MAX`` (including over
``QUALITY(...)`` tag values — the administrator's quality reports) with
``GROUP BY``; ORDER BY (values, ``QUALITY(...)``, or aggregate outputs);
LIMIT; and typed literals (numbers, strings, booleans, NULL,
``DATE '...'``)::

    SELECT ticker, COUNT(*) AS quotes, AVG(QUALITY(price.age)) AS mean_age
    FROM ticks GROUP BY ticker ORDER BY mean_age

Entry point: :func:`execute` (or :func:`parse` for the AST).
"""

from repro.sql.executor import execute
from repro.sql.parser import parse
from repro.sql.errors import SQLError

__all__ = ["SQLError", "execute", "parse"]
