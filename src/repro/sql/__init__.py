"""QSQL: a small SQL dialect with quality predicates.

The paper's mechanism is "the ability to query over [tags]" at query
time.  The fluent builders (:class:`repro.relational.query.Query`,
:class:`repro.tagging.query.QualityQuery`) give that ability to Python
code; QSQL gives it to strings, so applications and the administrator's
tooling can store and exchange quality-constrained queries:

    SELECT co_name, employees
    FROM customer
    WHERE employees > 100
      AND QUALITY(employees.source) <> 'estimate'
      AND QUALITY(address.creation_time) >= DATE '1991-06-01'
    ORDER BY co_name
    LIMIT 10

Supported: projections (or ``*``) with ``AS`` aliases and
``QUALITY(...)`` value columns; comparison/IN/IS NULL predicates over
values and ``QUALITY(column.indicator)`` tag references; AND/OR/NOT with
parentheses; aggregates ``COUNT/SUM/AVG/MIN/MAX`` (including over
``QUALITY(...)`` tag values — the administrator's quality reports) with
``GROUP BY``; ORDER BY (values, ``QUALITY(...)``, or aggregate outputs);
LIMIT; and typed literals (numbers, strings, booleans, NULL,
``DATE '...'``)::

    SELECT ticker, COUNT(*) AS quotes, AVG(QUALITY(price.age)) AS mean_age
    FROM ticks GROUP BY ticker ORDER BY mean_age

Statements run through a query planner by default: the AST lowers to a
logical plan (:mod:`repro.sql.plan`), rewrite rules route
``QUALITY(...)`` predicates into columnar tag-array scans and fuse
ORDER BY + LIMIT into a bounded heap (:mod:`repro.sql.optimizer`), a
batch physical executor runs the plan (:mod:`repro.sql.physical`), and
a plan cache keyed on statement text + schema identity skips
lexing/parsing/planning for repeated statements
(:mod:`repro.sql.plancache`).  ``EXPLAIN SELECT ...`` returns the
rendered optimized plan; ``execute(..., planner=False)`` is the
planner-free reference path.

Entry point: :func:`execute` (or :func:`parse` for the AST).
"""

from repro.sql.executor import execute
from repro.sql.parser import parse
from repro.sql.errors import SQLError
from repro.sql.plan import logical_plan, render_plan
from repro.sql.optimizer import PlanContext, optimize
from repro.sql.physical import compile_plan, execute_plan
from repro.sql.plancache import (
    PlanCache,
    clear_plan_cache,
    plan_cache_stats,
)

__all__ = [
    "PlanCache",
    "PlanContext",
    "SQLError",
    "clear_plan_cache",
    "compile_plan",
    "execute",
    "execute_plan",
    "logical_plan",
    "optimize",
    "parse",
    "plan_cache_stats",
    "render_plan",
]
