"""QSQL plan cache: skip lexing/parsing/planning on repeated statements.

A :class:`PlanCache` maps statement text to
:class:`PreparedStatement` entries — the parsed AST, the optimized
plan, and the compiled physical plan.  A cached entry is reused only
when the resolved relation still has the *identical* schema objects the
plan was compiled against (``relation.schema is entry.schema``), so
dropping and recreating a relation, or pointing the same statement at a
different catalog, always recompiles.  :class:`RelationSchema` and
:class:`TagSchema` instances are immutable, which makes identity a
sound validity token; row-level mutations never invalidate plans
because compiled plans bind relations at *execution* time, not compile
time (and the columnar store the plan routes through revalidates
against the relation's own mutation counter).

For :class:`~repro.relational.catalog.Database` sources, the entry
additionally records the database's ``catalog_version`` (bumped on
create/drop), making the cache key effectively
``(statement text, catalog version)``.

Two more facts participate in validation because the optimizer's plan
*shape* depends on them:

- the columnar execution mode (``execute(..., columnar=False)`` plans
  differently from the default — an entry compiled in one mode is never
  served to the other);
- the relation's columnar cost band — whether it cleared
  :data:`~repro.sql.optimizer.COLUMNAR_MIN_ROWS` at plan time.  Row
  mutations normally never invalidate plans, but growing a relation
  across the threshold (or shrinking below it) changes which access
  path the optimizer would pick, so the entry is replanned.
- the columnar sanitizer mode (``REPRO_VERIFY_PLANS``): sanitized
  compiled plans carry per-batch check wrappers, so an entry compiled
  in one mode is never served to the other;
- the relation's partition layout version: the optimizer bakes static
  partition pruning (the surviving bucket set) into the plan, so
  ``repartition()`` bumps the version and forces a replan.
- the scoring-profile registry version, for statements referencing the
  ``QUALITY(parameter)`` score form: the optimizer's
  ``push_score_predicates`` rewrite consults the registry (which
  profile is bound, which parameters it defines), so registering or
  re-binding a profile must replan such statements.

The plan-IR verifier (:mod:`repro.analysis.verifier`) audits exactly
this key-completeness contract as DQ409; with ``REPRO_VERIFY_PLANS=1``
every entry is re-verified on install and on each cache hit.

Strict-mode analysis is memoized alongside the plan cache in an
:class:`AnalysisMemo` keyed the same way (statement text + schema
identity + catalog version), so ``execute(..., strict=True)`` pays the
analysis pass once per (statement, schema) — including for statements
that *fail* analysis, which never reach the plan cache, and for the
``planner=False`` reference path, which has no prepared entries.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from contextlib import nullcontext
from time import perf_counter
from typing import Any, Mapping, Optional, Union

from repro.obs import metrics as _obs_metrics
from repro.obs.stats import ExecutionStats, StatsCollector
from repro.obs.trace import global_tracer
from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.sql.errors import SQLError
from repro.sql.executor import (
    _check_columns,
    _resolve_relation,
)
from repro.sql import optimizer as _optimizer
from repro.sql.optimizer import PlanContext, optimize
from repro.sql.parser import parse
from repro.sql.physical import CompiledPlan, compile_plan
from repro.sql.plan import PlanNode, logical_plan, render_plan
from repro.tagging.relation import TaggedRelation

AnyRelation = Union[Relation, TaggedRelation]
Source = Union[AnyRelation, Database, Mapping[str, AnyRelation]]


class PreparedStatement:
    """One cached statement: AST + optimized plan + compiled plan."""

    __slots__ = (
        "sql",
        "statement",
        "plan",
        "compiled",
        "relation_name",
        "schema",
        "tag_schema",
        "tagged",
        "catalog_version",
        "columnar_mode",
        "columnar_band",
        "sanitize",
        "partition_layout",
        "scoring_version",
        "strict_checked",
    )

    def __init__(
        self,
        sql: str,
        statement: Any,
        plan: PlanNode,
        compiled: CompiledPlan,
        relation: AnyRelation,
        catalog_version: Optional[int],
        columnar: bool = True,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.sql = sql
        self.statement = statement
        self.plan = plan
        self.compiled = compiled
        self.relation_name = statement.relation
        self.schema = relation.schema
        self.tagged = isinstance(relation, TaggedRelation)
        self.tag_schema = relation.tag_schema if self.tagged else None
        self.catalog_version = catalog_version
        #: The columnar on/off mode the plan was optimized under.
        self.columnar_mode = columnar
        #: The relation's cost band at plan time (cleared
        #: COLUMNAR_MIN_ROWS or not), when access-path costing could
        #: have applied — i.e. columnar mode on and a plain relation.
        #: None when costing never looked at the size.
        self.columnar_band = _columnar_band(relation, columnar)
        #: Whether the compiled plan carries columnar sanitizer
        #: wrappers (REPRO_VERIFY_PLANS at compile time): part of the
        #: cache key so toggling the flag never serves the wrong build.
        #: Defaults to the current flag, matching compile_plan's own
        #: default.
        self.sanitize = _verify_enabled() if sanitize is None else sanitize
        #: The relation's partition layout version at plan time.  The
        #: optimizer bakes static partition pruning into the plan, so
        #: any ``repartition()`` (which bumps the version) must force a
        #: replan — the baked bucket set may be wrong for the new
        #: layout.  Unpartitioned relations report 0 and never bump.
        self.partition_layout = getattr(
            relation, "partition_layout_version", 0
        )
        #: The scoring-profile registry version at plan time, when the
        #: statement references QUALITY(parameter) score form (None
        #: otherwise).  ``push_score_predicates`` bakes the registry's
        #: answers into the plan shape, so any registry mutation must
        #: force a replan of score-referencing statements.
        self.scoring_version = _scoring_version_pin(statement, self.tagged)
        #: True once strict-mode analysis passed for this entry (the
        #: diagnostics depend only on the statement and the schemas the
        #: entry already pins by identity, so one clean run is enough).
        self.strict_checked = False

    def valid_for(
        self,
        relation: AnyRelation,
        source: Source,
        columnar: bool = True,
        sanitize: Optional[bool] = None,
    ) -> bool:
        if columnar != self.columnar_mode:
            return False
        if sanitize is None:
            sanitize = _verify_enabled()
        if sanitize != self.sanitize:
            return False
        if isinstance(relation, TaggedRelation) != self.tagged:
            return False
        if relation.schema is not self.schema:
            return False
        if self.tagged and relation.tag_schema is not self.tag_schema:
            return False
        if (
            self.columnar_band is not None
            and _columnar_band(relation, columnar) != self.columnar_band
        ):
            return False
        if (
            getattr(relation, "partition_layout_version", 0)
            != self.partition_layout
        ):
            return False
        if self.scoring_version is not None:
            from repro.quality.materialize import registry_version

            if registry_version() != self.scoring_version:
                return False
        if isinstance(source, Database):
            return source.catalog_version == self.catalog_version
        return True


def _scoring_version_pin(statement: Any, tagged: bool) -> Optional[int]:
    """The scoring-registry version a plan's shape depends on, or None.

    Only tagged statements referencing the ``QUALITY(parameter)`` score
    form consult the registry at plan time; pinning anything else would
    needlessly invalidate unrelated plans on every profile registration.
    """
    if not tagged or not statement.uses_quality_scores():
        return None
    from repro.quality.materialize import registry_version

    return registry_version()


def _columnar_band(relation: AnyRelation, columnar: bool) -> Optional[bool]:
    """Which side of the access-path size threshold a relation is on.

    ``None`` when costing cannot apply (mode off, or not a plain
    relation).  Read through the optimizer module so tests that
    monkeypatch ``COLUMNAR_MIN_ROWS`` see consistent planning *and*
    cache validation.
    """
    if not columnar or not isinstance(relation, Relation):
        return None
    return len(relation) >= _optimizer.COLUMNAR_MIN_ROWS


class PlanCache:
    """Statement-text → prepared-statement cache with LRU eviction.

    Thread-safe: lookup/store/clear/stats hold an internal lock, so
    concurrent sessions sharing the default cache never corrupt the
    LRU order (``move_to_end``/``popitem``) or lose hit/miss counts.
    """

    def __init__(self, max_statements: int = 256) -> None:
        self.max_statements = max_statements
        self._entries: OrderedDict[str, list[PreparedStatement]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()

    def lookup(
        self,
        sql: str,
        source: Source,
        columnar: bool = True,
        sanitize: Optional[bool] = None,
    ) -> Optional[tuple[PreparedStatement, AnyRelation]]:
        """A (prepared, resolved relation) pair, or None on miss."""
        with self._lock:
            entries = self._entries.get(sql)
            if entries is None:
                self.misses += 1
                return None
            for entry in entries:
                try:
                    relation = _resolve_relation(entry.statement, source)
                except SQLError:
                    continue  # cold path re-raises with identical context
                if entry.valid_for(relation, source, columnar, sanitize):
                    self._entries.move_to_end(sql)
                    self.hits += 1
                    return entry, relation
            self.misses += 1
            return None

    def store(self, entry: PreparedStatement) -> None:
        with self._lock:
            entries = self._entries.setdefault(entry.sql, [])
            # Drop entries this one supersedes (same relation shape but a
            # stale catalog version or dropped schema).  Entries differing
            # in columnar mode or cost band answer *different* lookups, so
            # they coexist rather than replace each other.
            entries[:] = [
                e
                for e in entries
                if e.schema is not entry.schema
                or e.columnar_mode != entry.columnar_mode
                or e.columnar_band != entry.columnar_band
                or e.sanitize != entry.sanitize
            ]
            entries.append(entry)
            self._entries.move_to_end(entry.sql)
            while len(self._entries) > self.max_statements:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "statements": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


class _AnalysisVerdict:
    """One memoized strict-analysis result and its validity tokens."""

    __slots__ = ("schema", "tagged", "tag_schema", "catalog_version", "diagnostics")

    def __init__(
        self, relation: AnyRelation, source: Source, diagnostics: Any
    ) -> None:
        self.schema = relation.schema
        self.tagged = isinstance(relation, TaggedRelation)
        self.tag_schema = relation.tag_schema if self.tagged else None
        self.catalog_version = (
            source.catalog_version if isinstance(source, Database) else None
        )
        self.diagnostics = diagnostics

    def valid_for(self, relation: AnyRelation, source: Source) -> bool:
        if isinstance(relation, TaggedRelation) != self.tagged:
            return False
        if relation.schema is not self.schema:
            return False
        if self.tagged and relation.tag_schema is not self.tag_schema:
            return False
        if isinstance(source, Database):
            return source.catalog_version == self.catalog_version
        return True


class AnalysisMemo:
    """Memoized ``strict=True`` analysis verdicts, keyed like the plan
    cache: statement text, validated by schema/tag-schema identity and
    catalog version.  Stores failing verdicts too — rejected statements
    never reach the plan cache, so without the memo every retry would
    re-run the full analysis pass."""

    def __init__(self, max_statements: int = 256) -> None:
        self.max_statements = max_statements
        self._entries: OrderedDict[str, list[_AnalysisVerdict]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._lock = threading.RLock()

    def lookup(
        self, sql: str, relation: AnyRelation, source: Source
    ) -> Optional[Any]:
        """The memoized Diagnostics, or None when analysis must run."""
        with self._lock:
            entries = self._entries.get(sql)
            if entries is not None:
                for entry in entries:
                    if entry.valid_for(relation, source):
                        self._entries.move_to_end(sql)
                        self.hits += 1
                        return entry.diagnostics
            self.misses += 1
            return None

    def store(
        self,
        sql: str,
        relation: AnyRelation,
        source: Source,
        diagnostics: Any,
    ) -> None:
        with self._lock:
            verdict = _AnalysisVerdict(relation, source, diagnostics)
            entries = self._entries.setdefault(sql, [])
            entries[:] = [e for e in entries if e.schema is not verdict.schema]
            entries.append(verdict)
            self._entries.move_to_end(sql)
            while len(self._entries) > self.max_statements:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "statements": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }


#: The process-wide default cache used by ``execute(..., planner=True)``.
_DEFAULT_CACHE = PlanCache()

#: The process-wide strict-analysis memo (both execute paths).
_DEFAULT_ANALYSIS_MEMO = AnalysisMemo()


def default_plan_cache() -> PlanCache:
    return _DEFAULT_CACHE


def default_analysis_memo() -> AnalysisMemo:
    return _DEFAULT_ANALYSIS_MEMO


def clear_plan_cache() -> None:
    """Empty the default cache and the strict-analysis memo."""
    _DEFAULT_CACHE.clear()
    _DEFAULT_ANALYSIS_MEMO.clear()


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the default cache."""
    return _DEFAULT_CACHE.stats()


# -- planning + execution ----------------------------------------------------


def plan_statement(
    statement: Any, source: Source, *, columnar: bool = True
) -> tuple[PlanNode, AnyRelation, bool]:
    """Resolve, pre-check, lower, and optimize one parsed statement."""
    relation = _resolve_relation(statement, source)
    tagged = isinstance(relation, TaggedRelation)
    _check_columns(statement, relation)
    if statement.uses_quality() and not tagged:
        raise SQLError(
            "QUALITY(...) requires a tagged relation; the source is untagged"
        )
    plan = logical_plan(statement, tagged)
    context = PlanContext.from_relations({statement.relation: relation})
    return optimize(plan, context, columnar=columnar), relation, tagged


_EXPLAIN_SCHEMA = RelationSchema("explain", [Column("plan", "STR")])


def explain_relation(plan: PlanNode) -> Relation:
    """Render a plan tree as the single-column relation EXPLAIN returns."""
    result = Relation(_EXPLAIN_SCHEMA)
    for line in render_plan(plan):
        result.insert({"plan": line})
    return result


def explain_analyze_relation(stats: ExecutionStats) -> Relation:
    """Render an executed stats tree as EXPLAIN ANALYZE's relation."""
    result = Relation(_EXPLAIN_SCHEMA)
    for line in stats.render_lines():
        result.insert({"plan": line})
    return result


def _verify_enabled() -> bool:
    """The REPRO_VERIFY_PLANS flag (read directly; the verifier module
    itself is only imported when the flag is actually on)."""
    return os.environ.get("REPRO_VERIFY_PLANS", "") not in ("", "0")


def _span(name: str, **attributes: Any):
    """A tracer span when ambient instrumentation is on, else a no-op."""
    if _obs_metrics.enabled():
        return global_tracer().span(name, **attributes)
    return nullcontext()


def run_strict_analysis(
    statement: Any,
    source: Source,
    sql: str,
    memo: Optional[AnalysisMemo] = None,
) -> None:
    """Strict-mode gate: analyze (or recall) and raise on errors.

    Consults the :class:`AnalysisMemo` first; the analysis verdict
    depends only on the statement and the schemas the memo validates
    by identity, so a hit replays the memoized diagnostics without
    re-running the analyzer.  Statements whose relation cannot be
    resolved are analyzed uncached (the diagnostics explain the
    unknown relation; there is nothing to key validity on).
    """
    from repro.analysis.diagnostics import QueryAnalysisError
    from repro.analysis.query import analyze_statement

    if memo is None:
        memo = _DEFAULT_ANALYSIS_MEMO
    relation: Optional[AnyRelation] = None
    try:
        relation = _resolve_relation(statement, source)
    except SQLError:
        pass
    if relation is not None:
        cached = memo.lookup(sql, relation, source)
        if cached is not None:
            if cached.has_errors:
                raise QueryAnalysisError(cached, sql)
            return
    diagnostics = analyze_statement(statement, source, sql=sql)
    if relation is not None:
        memo.store(sql, relation, source, diagnostics)
    if diagnostics.has_errors:
        raise QueryAnalysisError(diagnostics, sql)


def _verify_entry(
    entry: PreparedStatement, relation: AnyRelation, source: Source
) -> None:
    """REPRO_VERIFY_PLANS hook: audit one cache entry, raise on DQ409."""
    from repro.analysis.verifier import (
        PlanVerificationError,
        verify_cache_entry,
    )

    diagnostics = verify_cache_entry(entry, relation, source)
    if diagnostics.has_errors:
        raise PlanVerificationError(diagnostics, entry.sql)


def _record_execution(
    sql: str,
    compiled: CompiledPlan,
    binding: Mapping[str, Any],
    collector: Optional[StatsCollector],
    cache_hit: bool,
) -> tuple[AnyRelation, Optional[ExecutionStats]]:
    """Execute a compiled plan, feeding the ambient and per-call sinks.

    The fast path — no collector, instrumentation off — falls through
    to a bare ``compiled.execute`` with no timers and no stats tree.
    """
    obs_on = _obs_metrics.enabled()
    if collector is None and not obs_on:
        return compiled.execute(binding), None
    stats = compiled.new_stats() if collector is not None else None
    start = perf_counter()
    result = compiled.execute(binding, stats)
    elapsed = perf_counter() - start
    if obs_on:
        registry = _obs_metrics.global_registry()
        registry.counter(
            "qsql.executions", "QSQL statements executed (planner path)"
        ).inc()
        registry.histogram(
            "qsql.statement_seconds",
            description="wall time per planner-path statement execution",
        ).observe(elapsed)
    if collector is not None:
        collector._fill(
            sql, stats, elapsed, len(result), planned=True,
            cache_hit=cache_hit,
        )
    return result, stats


def execute_planned(
    sql: str,
    source: Source,
    *,
    strict: bool = False,
    cache: Optional[PlanCache] = None,
    collector: Optional[StatsCollector] = None,
    columnar: bool = True,
) -> AnyRelation:
    """The planner-backed execute path (see ``executor.execute``).

    ``collector`` is the per-call statistics hook: when given, the
    compiled plan executes against a fresh
    :class:`~repro.obs.stats.ExecutionStats` tree and the collector is
    filled with it (plus total time, row count, and cache-hit status).
    Ambient metrics — cache hits/misses, executions, statement-latency
    histogram — flow into the global registry whenever
    :func:`repro.obs.enabled` is on.
    """
    if cache is None:
        cache = _DEFAULT_CACHE
    obs_on = _obs_metrics.enabled()
    verify = _verify_enabled()
    found = cache.lookup(sql, source, columnar, sanitize=verify)
    if found is not None:
        if obs_on:
            _obs_metrics.global_registry().counter(
                "qsql.plancache.hits", "plan-cache lookups reusing an entry"
            ).inc()
        prepared, relation = found
        if verify:
            _verify_entry(prepared, relation, source)
        if strict and not prepared.strict_checked:
            run_strict_analysis(prepared.statement, source, sql)
            prepared.strict_checked = True
        binding = {prepared.relation_name: relation}
        result, _ = _record_execution(
            sql, prepared.compiled, binding, collector, cache_hit=True
        )
        return result

    if obs_on:
        _obs_metrics.global_registry().counter(
            "qsql.plancache.misses", "plan-cache lookups requiring planning"
        ).inc()
    with _span("qsql.parse"):
        statement = parse(sql)
    if strict:
        run_strict_analysis(statement, source, sql)
    with _span("qsql.plan", relation=statement.relation):
        plan, relation, _ = plan_statement(statement, source, columnar=columnar)
    if statement.explain and not statement.analyze:
        return explain_relation(plan)
    binding = {statement.relation: relation}
    with _span("qsql.compile"):
        compiled = compile_plan(plan, binding, sanitize=verify)
    if statement.explain:
        # EXPLAIN ANALYZE: run the statement against a fresh stats tree
        # and return the annotated plan instead of the result.  Like
        # EXPLAIN, the entry is not cached (its output depends on the
        # data, not just the statement text).
        stats = compiled.new_stats()
        start = perf_counter()
        result = compiled.execute(binding, stats)
        elapsed = perf_counter() - start
        if collector is not None:
            collector._fill(
                sql, stats, elapsed, len(result), planned=True,
                cache_hit=False,
            )
        return explain_analyze_relation(stats)
    catalog_version = (
        source.catalog_version if isinstance(source, Database) else None
    )
    entry = PreparedStatement(
        sql,
        statement,
        plan,
        compiled,
        relation,
        catalog_version,
        columnar,
        sanitize=verify,
    )
    entry.strict_checked = strict
    if verify:
        _verify_entry(entry, relation, source)
    cache.store(entry)
    result, _ = _record_execution(
        sql, compiled, binding, collector, cache_hit=False
    )
    return result
