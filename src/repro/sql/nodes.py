"""QSQL abstract syntax tree nodes.

Every expression-level node carries an optional ``span`` — ``(start,
end)`` character offsets into the query text, populated by the parser.
Spans are excluded from equality/hashing (``compare=False``) so node
identity stays purely structural; they exist for error reporting and
the static analyzer's caret diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

#: A (start, end) character-offset range into the query source text.
Span = tuple[int, int]


def _span_field() -> Any:
    return field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Literal:
    """A constant value (number, string, bool, None, date)."""

    value: Any
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class ColumnRef:
    """A reference to an application column's value."""

    column: str
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class QualityRef:
    """``QUALITY(column.indicator)`` — a tag-value reference."""

    column: str
    indicator: str
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class QualityScoreRef:
    """``QUALITY(parameter)`` — a materialized parameter-score reference.

    Distinct from :class:`QualityRef` (the ``column.indicator`` tag
    form): the parameter form resolves through the relation's bound
    :class:`~repro.quality.materialize.ScoringProfile` and reads the
    row's mean parameter score over its scorable tagged cells.
    """

    parameter: str
    span: Optional[Span] = _span_field()


Expr = Union["Comparison", "InList", "IsNull", "BoolOp", "NotOp"]
Operand = Union[Literal, ColumnRef, QualityRef, QualityScoreRef]


@dataclass(frozen=True)
class Comparison:
    """``left OP right`` with OP in =, <>, !=, <, <=, >, >=."""

    op: str
    left: Operand
    right: Operand
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class InList:
    """``operand [NOT] IN (literal, ...)``."""

    operand: Operand
    options: tuple[Any, ...]
    negated: bool = False
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class IsNull:
    """``operand IS [NOT] NULL``."""

    operand: Operand
    negated: bool = False
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class BoolOp:
    """``left AND/OR right``."""

    op: str  # "AND" | "OR"
    left: Expr
    right: Expr
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class NotOp:
    """``NOT expr``."""

    operand: Expr
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class AggregateCall:
    """``FUNC(operand)`` in the select list; operand None = COUNT(*)."""

    func: str  # COUNT | SUM | AVG | MIN | MAX
    operand: Optional[Union[ColumnRef, QualityRef, QualityScoreRef]]
    span: Optional[Span] = _span_field()


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: a column, a quality ref, or an aggregate."""

    expr: Union[ColumnRef, QualityRef, QualityScoreRef, AggregateCall]
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expr, ColumnRef):
            return self.expr.column
        if isinstance(self.expr, QualityRef):
            return f"{self.expr.column}.{self.expr.indicator}"
        if isinstance(self.expr, QualityScoreRef):
            return self.expr.parameter
        operand = self.expr.operand
        if operand is None:
            return f"{self.expr.func.lower()}_all"
        if isinstance(operand, ColumnRef):
            inner = operand.column
        elif isinstance(operand, QualityScoreRef):
            inner = operand.parameter
        else:
            inner = f"{operand.column}.{operand.indicator}"
        return f"{self.expr.func.lower()}_{inner}".replace(".", "_")

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.expr, AggregateCall)

    @property
    def span(self) -> Optional[Span]:
        """The source span of the underlying expression."""
        return self.expr.span


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY item: a column or quality reference + direction."""

    key: Union[ColumnRef, QualityRef, QualityScoreRef]
    descending: bool = False

    @property
    def span(self) -> Optional[Span]:
        """The source span of the order key."""
        return self.key.span


@dataclass(frozen=True)
class SelectStatement:
    """A full parsed SELECT."""

    columns: Optional[tuple[str, ...]]  # None means '*'
    relation: str
    where: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False
    #: Full select-list entries; None for ``*``.  ``columns`` stays the
    #: plain-projection view for simple statements (back-compat).
    select_items: Optional[tuple[SelectItem, ...]] = None
    #: Grouping keys: column refs or QUALITY(...) tag/score refs.
    group_by: tuple[Union[ColumnRef, QualityRef, QualityScoreRef], ...] = ()
    #: True for ``EXPLAIN SELECT ...`` — execute() returns the rendered
    #: optimized plan instead of running the query.
    explain: bool = False
    #: True for ``EXPLAIN ANALYZE SELECT ...`` — the statement *runs*
    #: and execute() returns the plan annotated with per-operator rows
    #: and timings (implies ``explain``).
    analyze: bool = False
    #: Source span of the FROM relation name.
    relation_span: Optional[Span] = _span_field()

    @property
    def has_aggregates(self) -> bool:
        return bool(self.select_items) and any(
            item.is_aggregate for item in self.select_items
        )

    def uses_quality(self) -> bool:
        """True when the statement references any QUALITY(...) form
        (tag references or parameter-score references)."""
        return self._references_quality((QualityRef, QualityScoreRef))

    def uses_quality_scores(self) -> bool:
        """True when the statement references the ``QUALITY(parameter)``
        score form specifically (the plan-cache's scoring-registry pin)."""
        return self._references_quality((QualityScoreRef,))

    def _references_quality(self, quality_refs: tuple) -> bool:
        def walk(expr: Any) -> bool:
            if isinstance(expr, quality_refs):
                return True
            if isinstance(expr, Comparison):
                return walk(expr.left) or walk(expr.right)
            if isinstance(expr, (InList, IsNull)):
                return walk(expr.operand)
            if isinstance(expr, BoolOp):
                return walk(expr.left) or walk(expr.right)
            if isinstance(expr, NotOp):
                return walk(expr.operand)
            return False

        if self.where is not None and walk(self.where):
            return True
        if any(isinstance(item.key, quality_refs) for item in self.order_by):
            return True
        if any(isinstance(key, quality_refs) for key in self.group_by):
            return True
        for item in self.select_items or ():
            expr = item.expr
            if isinstance(expr, quality_refs):
                return True
            if isinstance(expr, AggregateCall) and isinstance(
                expr.operand, quality_refs
            ):
                return True
        return False
