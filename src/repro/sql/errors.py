"""QSQL error type and source-span rendering."""

from __future__ import annotations

from typing import Optional

from repro.errors import QueryError


def caret_snippet(source: str, start: int, end: int = -1) -> str:
    """Render the offending line of ``source`` with a caret underline.

    ``start``/``end`` are character offsets into ``source``; the snippet
    shows the line containing ``start`` with ``^`` marks under the
    ``start:end`` range (clamped to that line).

    >>> print(caret_snippet("SELECT x FORM t", 9, 13))
    SELECT x FORM t
             ^^^^
    """
    if not 0 <= start <= len(source):
        return ""
    line_start = source.rfind("\n", 0, start) + 1
    line_end = source.find("\n", start)
    if line_end < 0:
        line_end = len(source)
    line = source[line_start:line_end]
    if end <= start:
        end = start + 1
    width = max(1, min(end, line_end) - start)
    pad = " " * (start - line_start)
    return f"{line}\n{pad}{'^' * width}"


class SQLError(QueryError):
    """A QSQL query failed to lex, parse, analyze, or execute.

    Carries an optional source span: ``position`` (start offset into the
    query text), ``end`` (one past the last offending character), and
    ``source`` (the query text itself).  When both a position and the
    source are known, the message includes a caret snippet pointing at
    the offending characters.
    """

    def __init__(
        self,
        message: str,
        position: int = -1,
        end: int = -1,
        source: Optional[str] = None,
    ) -> None:
        self.raw_message = message
        self.position = position
        self.end = end if end > position else (position + 1 if position >= 0 else -1)
        self.source = source
        rendered = message
        if position >= 0:
            rendered = f"{message} (at position {position})"
            if source is not None:
                snippet = caret_snippet(source, position, self.end)
                if snippet:
                    rendered = f"{rendered}\n{snippet}"
        super().__init__(rendered)

    @property
    def span(self) -> Optional[tuple[int, int]]:
        """The ``(start, end)`` offsets, or None when unknown."""
        if self.position < 0:
            return None
        return (self.position, self.end)

    def with_source(self, source: str) -> "SQLError":
        """A copy of this error with the query text attached.

        Used by :func:`repro.sql.parser.parse` so every parse error
        carries a caret snippet, regardless of where it was raised.
        """
        if self.source is not None:
            return self
        return SQLError(self.raw_message, self.position, self.end, source)
