"""QSQL error type."""

from repro.errors import QueryError


class SQLError(QueryError):
    """A QSQL query failed to lex, parse, or execute."""

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position
