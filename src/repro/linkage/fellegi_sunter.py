"""The Fellegi–Sunter probabilistic record-linkage model [10].

For each compared field, the model holds an *m*-probability (the field
agrees given the pair is a true match) and a *u*-probability (the field
agrees given a non-match).  A pair's total match weight is the sum of
per-field log2 likelihood ratios: ``log2(m/u)`` on agreement,
``log2((1-m)/(1-u))`` on disagreement.  Two thresholds partition pairs
into links, possible links (clerical review), and non-links.

``estimate_u_from_data`` and the simple EM routine let the model be fit
without labelled pairs, as in the classical formulation.
"""

from __future__ import annotations

import enum
import math
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import LinkageError

Comparator = Callable[[Any, Any], float]


class MatchDecision(enum.Enum):
    """The Fellegi–Sunter three-way decision."""

    LINK = "link"
    POSSIBLE = "possible"
    NON_LINK = "non_link"


class FieldModel:
    """m/u probabilities and comparator for one field.

    Parameters
    ----------
    field:
        Record field name.
    comparator:
        Similarity in [0, 1]; values ≥ ``agree_threshold`` count as
        agreement.
    m / u:
        Conditional agreement probabilities (0 < u < m < 1 normally —
        an informative field agrees more often among matches).
    """

    def __init__(
        self,
        field: str,
        comparator: Comparator,
        m: float = 0.9,
        u: float = 0.1,
        agree_threshold: float = 0.85,
    ) -> None:
        if not 0.0 < m < 1.0 or not 0.0 < u < 1.0:
            raise LinkageError(f"m and u must be in (0, 1); got m={m}, u={u}")
        if not 0.0 < agree_threshold <= 1.0:
            raise LinkageError("agree_threshold must be in (0, 1]")
        self.field = field
        self.comparator = comparator
        self.m = m
        self.u = u
        self.agree_threshold = agree_threshold

    def agrees(self, a: Mapping[str, Any], b: Mapping[str, Any]) -> bool:
        """Whether the two records agree on this field."""
        return self.comparator(a.get(self.field), b.get(self.field)) >= self.agree_threshold

    @property
    def agreement_weight(self) -> float:
        """log2(m/u): evidence for a match when the field agrees."""
        return math.log2(self.m / self.u)

    @property
    def disagreement_weight(self) -> float:
        """log2((1-m)/(1-u)): evidence against when the field disagrees."""
        return math.log2((1.0 - self.m) / (1.0 - self.u))

    def weight(self, a: Mapping[str, Any], b: Mapping[str, Any]) -> float:
        """This field's contribution to the pair's match weight."""
        return self.agreement_weight if self.agrees(a, b) else self.disagreement_weight

    def __repr__(self) -> str:
        return f"FieldModel({self.field!r}, m={self.m}, u={self.u})"


class FellegiSunterModel:
    """A full linkage model: field models + decision thresholds."""

    def __init__(
        self,
        fields: Sequence[FieldModel],
        upper_threshold: float = 3.0,
        lower_threshold: float = 0.0,
    ) -> None:
        if not fields:
            raise LinkageError("model requires at least one field")
        names = [f.field for f in fields]
        if len(set(names)) != len(names):
            raise LinkageError(f"duplicate field models: {names}")
        if lower_threshold > upper_threshold:
            raise LinkageError(
                "lower_threshold must not exceed upper_threshold"
            )
        self.fields = tuple(fields)
        self.upper_threshold = upper_threshold
        self.lower_threshold = lower_threshold

    # -- scoring ------------------------------------------------------------

    def weight(self, a: Mapping[str, Any], b: Mapping[str, Any]) -> float:
        """Total match weight of one pair."""
        return sum(field.weight(a, b) for field in self.fields)

    def decide(self, a: Mapping[str, Any], b: Mapping[str, Any]) -> MatchDecision:
        """Three-way decision for one pair."""
        weight = self.weight(a, b)
        if weight >= self.upper_threshold:
            return MatchDecision.LINK
        if weight > self.lower_threshold:
            return MatchDecision.POSSIBLE
        return MatchDecision.NON_LINK

    def agreement_pattern(
        self, a: Mapping[str, Any], b: Mapping[str, Any]
    ) -> tuple[bool, ...]:
        """The comparison vector (per-field agreement booleans)."""
        return tuple(field.agrees(a, b) for field in self.fields)

    # -- estimation ------------------------------------------------------------------

    def estimate_u_from_data(
        self,
        records: Sequence[Mapping[str, Any]],
        max_pairs: int = 20000,
    ) -> None:
        """Estimate u-probabilities from random (mostly non-match) pairs.

        Classic approximation: among all cross pairs of a file, true
        matches are rare, so the observed agreement rate estimates u.
        Deterministic: uses a strided sample of the pair space.
        """
        n = len(records)
        if n < 2:
            raise LinkageError("need at least two records to estimate u")
        total_pairs = n * (n - 1) // 2
        stride = max(1, total_pairs // max_pairs)
        agree_counts = [0] * len(self.fields)
        sampled = 0
        index = 0
        for i in range(n):
            for j in range(i + 1, n):
                if index % stride == 0:
                    sampled += 1
                    for k, field in enumerate(self.fields):
                        if field.agrees(records[i], records[j]):
                            agree_counts[k] += 1
                index += 1
        for k, field in enumerate(self.fields):
            u = agree_counts[k] / sampled if sampled else 0.5
            field.u = min(max(u, 1e-4), 1.0 - 1e-4)

    def fit_em(
        self,
        pairs: Sequence[tuple[Mapping[str, Any], Mapping[str, Any]]],
        iterations: int = 20,
        initial_match_rate: float = 0.1,
    ) -> float:
        """Fit m/u by expectation-maximization over unlabelled pairs.

        Uses the conditional-independence two-class mixture.  Returns the
        final estimated match proportion.  Probabilities are clamped away
        from 0/1 for numerical stability.
        """
        if not pairs:
            raise LinkageError("EM requires at least one pair")
        if not 0.0 < initial_match_rate < 1.0:
            raise LinkageError("initial_match_rate must be in (0, 1)")
        patterns = [self.agreement_pattern(a, b) for a, b in pairs]
        p = initial_match_rate
        m = [field.m for field in self.fields]
        u = [field.u for field in self.fields]

        def clamp(x: float) -> float:
            return min(max(x, 1e-4), 1.0 - 1e-4)

        for _ in range(iterations):
            # E step: responsibility of the match class for each pattern.
            responsibilities = []
            for pattern in patterns:
                like_m = p
                like_u = 1.0 - p
                for k, agrees in enumerate(pattern):
                    like_m *= m[k] if agrees else (1.0 - m[k])
                    like_u *= u[k] if agrees else (1.0 - u[k])
                total = like_m + like_u
                responsibilities.append(like_m / total if total > 0 else 0.5)
            # M step.
            weight_sum = sum(responsibilities)
            p = clamp(weight_sum / len(patterns))
            for k in range(len(self.fields)):
                agree_m = sum(
                    r for r, pattern in zip(responsibilities, patterns) if pattern[k]
                )
                agree_u = sum(
                    (1.0 - r)
                    for r, pattern in zip(responsibilities, patterns)
                    if pattern[k]
                )
                m[k] = clamp(agree_m / weight_sum) if weight_sum else m[k]
                non_match_sum = len(patterns) - weight_sum
                u[k] = clamp(agree_u / non_match_sum) if non_match_sum else u[k]
        for k, field in enumerate(self.fields):
            field.m = m[k]
            field.u = u[k]
        return p

    def __repr__(self) -> str:
        return (
            f"FellegiSunterModel({[f.field for f in self.fields]}, "
            f"thresholds=({self.lower_threshold}, {self.upper_threshold}))"
        )
