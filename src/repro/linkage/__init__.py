"""Probabilistic record linkage (related work [10][18][19]).

The paper's related-work section traces record-linking methodologies to
Newcombe (1959) and Fellegi & Sunter (1969) — "matching records in
different files where primary identifiers may not match for the same
individual".  In this reproduction the linkage machinery serves the
data quality administrator: duplicate detection is one of the concrete
inspection/certification mechanisms of §4, and benchmark E7 measures
its precision/recall over error-injected records.

Modules: :mod:`repro.linkage.comparators` (string similarity),
:mod:`repro.linkage.fellegi_sunter` (the decision model),
:mod:`repro.linkage.blocking` (candidate-pair generation), and
:mod:`repro.linkage.dedup` (duplicate detection over relations).
"""

from repro.linkage.comparators import (
    exact,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    numeric_closeness,
    soundex,
)
from repro.linkage.fellegi_sunter import FellegiSunterModel, FieldModel, MatchDecision
from repro.linkage.blocking import block_pairs, full_pairs
from repro.linkage.dedup import DuplicateFinder, LinkResult

__all__ = [
    "DuplicateFinder",
    "FellegiSunterModel",
    "FieldModel",
    "LinkResult",
    "MatchDecision",
    "block_pairs",
    "exact",
    "full_pairs",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "numeric_closeness",
    "soundex",
]
