"""Candidate-pair generation: full cross and blocked comparison.

Comparing every pair of an n-record file is O(n²); blocking restricts
comparison to pairs sharing a *blocking key* (e.g. the Soundex code of
the name — Newcombe's original trick [19]).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.errors import LinkageError

Record = Mapping[str, Any]
BlockingKey = Callable[[Record], Any]


def full_pairs(records: Sequence[Record]) -> Iterator[tuple[int, int]]:
    """All index pairs (i < j) — the unblocked comparison space."""
    n = len(records)
    for i in range(n):
        for j in range(i + 1, n):
            yield (i, j)


def block_pairs(
    records: Sequence[Record],
    keys: Sequence[BlockingKey],
) -> Iterator[tuple[int, int]]:
    """Index pairs sharing at least one blocking key value.

    Multiple keys implement multi-pass blocking (union of passes);
    pairs are yielded once, in (i, j) order with i < j.  Records whose
    key is None are excluded from that pass (an unknown key should not
    form a giant block).
    """
    if not keys:
        raise LinkageError("block_pairs requires at least one blocking key")
    seen: set[tuple[int, int]] = set()
    for key in keys:
        blocks: dict[Any, list[int]] = {}
        for index, record in enumerate(records):
            value = key(record)
            if value is None:
                continue
            blocks.setdefault(value, []).append(index)
        for indices in blocks.values():
            for a in range(len(indices)):
                for b in range(a + 1, len(indices)):
                    pair = (indices[a], indices[b])
                    if pair not in seen:
                        seen.add(pair)
                        yield pair


def field_key(field: str) -> BlockingKey:
    """Blocking key: the exact value of one field."""
    return lambda record: record.get(field)


def prefix_key(field: str, length: int) -> BlockingKey:
    """Blocking key: the first ``length`` characters of a string field."""
    if length <= 0:
        raise LinkageError("prefix length must be positive")

    def key(record: Record) -> Any:
        value = record.get(field)
        if value is None:
            return None
        return str(value)[:length].lower()

    return key


def soundex_key(field: str) -> BlockingKey:
    """Blocking key: the Soundex code of a string field."""
    from repro.linkage.comparators import soundex

    def key(record: Record) -> Any:
        value = record.get(field)
        if value is None:
            return None
        return soundex(str(value))

    return key


def reduction_ratio(
    records: Sequence[Record], keys: Sequence[BlockingKey]
) -> float:
    """Fraction of the full pair space that blocking avoids.

    1.0 means everything was pruned; 0.0 means no reduction.
    """
    total = len(records) * (len(records) - 1) // 2
    if total == 0:
        return 0.0
    blocked = sum(1 for _ in block_pairs(records, keys))
    return 1.0 - blocked / total
