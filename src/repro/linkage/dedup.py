"""Duplicate detection over relations, built on Fellegi–Sunter.

:class:`DuplicateFinder` ties the pieces together for the data quality
administrator: generate candidate pairs (optionally blocked), score
them with a :class:`~repro.linkage.fellegi_sunter.FellegiSunterModel`,
and report links/possible links plus evaluation metrics when the true
duplicate structure is known (benchmark E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import LinkageError
from repro.linkage.blocking import BlockingKey, block_pairs, full_pairs
from repro.linkage.fellegi_sunter import FellegiSunterModel, MatchDecision
from repro.relational.relation import Relation

Record = Mapping[str, Any]


@dataclass(frozen=True)
class LinkResult:
    """One scored candidate pair."""

    left_index: int
    right_index: int
    weight: float
    decision: MatchDecision


@dataclass
class DedupEvaluation:
    """Precision/recall of the LINK decisions against known truth."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


class DuplicateFinder:
    """Finds duplicate records in one file (relation or record list)."""

    def __init__(
        self,
        model: FellegiSunterModel,
        blocking_keys: Sequence[BlockingKey] = (),
    ) -> None:
        self.model = model
        self.blocking_keys = tuple(blocking_keys)

    # -- record extraction ----------------------------------------------------

    @staticmethod
    def _records(data: Relation | Sequence[Record]) -> list[Record]:
        if isinstance(data, Relation):
            return data.to_dicts()
        return list(data)

    # -- scoring ----------------------------------------------------------------

    def candidate_pairs(
        self, records: Sequence[Record]
    ) -> list[tuple[int, int]]:
        """The comparison space (blocked when keys are configured)."""
        if self.blocking_keys:
            return list(block_pairs(records, self.blocking_keys))
        return list(full_pairs(records))

    def score_pairs(self, data: Relation | Sequence[Record]) -> list[LinkResult]:
        """Score every candidate pair; sorted by descending weight."""
        records = self._records(data)
        results = []
        for i, j in self.candidate_pairs(records):
            weight = self.model.weight(records[i], records[j])
            results.append(
                LinkResult(i, j, weight, self._decide_from_weight(weight))
            )
        results.sort(key=lambda r: (-r.weight, r.left_index, r.right_index))
        return results

    def _decide_from_weight(self, weight: float) -> MatchDecision:
        if weight >= self.model.upper_threshold:
            return MatchDecision.LINK
        if weight > self.model.lower_threshold:
            return MatchDecision.POSSIBLE
        return MatchDecision.NON_LINK

    def links(self, data: Relation | Sequence[Record]) -> list[LinkResult]:
        """Pairs decided LINK."""
        return [r for r in self.score_pairs(data) if r.decision is MatchDecision.LINK]

    def duplicate_clusters(
        self, data: Relation | Sequence[Record]
    ) -> list[set[int]]:
        """Connected components of the LINK graph (clusters of duplicates)."""
        records = self._records(data)
        parent = list(range(len(records)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: int, b: int) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for result in self.links(records):
            union(result.left_index, result.right_index)
        clusters: dict[int, set[int]] = {}
        for index in range(len(records)):
            clusters.setdefault(find(index), set()).add(index)
        return [c for c in clusters.values() if len(c) > 1]

    # -- evaluation -----------------------------------------------------------------

    def evaluate(
        self,
        data: Relation | Sequence[Record],
        true_pair: Callable[[Record, Record], bool],
    ) -> DedupEvaluation:
        """Precision/recall of LINK decisions against ground truth.

        ``true_pair(a, b)`` says whether two records are really the same
        entity.  Recall is computed over the *full* pair space, so
        blocking that drops true pairs correctly costs recall.
        """
        records = self._records(data)
        linked = {
            (r.left_index, r.right_index)
            for r in self.score_pairs(records)
            if r.decision is MatchDecision.LINK
        }
        tp = fp = fn = 0
        for i, j in full_pairs(records):
            is_true = true_pair(records[i], records[j])
            is_linked = (i, j) in linked
            if is_true and is_linked:
                tp += 1
            elif is_linked:
                fp += 1
            elif is_true:
                fn += 1
        return DedupEvaluation(tp, fp, fn)

    def threshold_sweep(
        self,
        data: Relation | Sequence[Record],
        true_pair: Callable[[Record, Record], bool],
        thresholds: Sequence[float],
    ) -> list[dict[str, float]]:
        """Precision/recall/F1 across upper-threshold settings (E7).

        The expected shape: precision rises and recall falls with the
        threshold; F1 peaks at an interior value.
        """
        if not thresholds:
            raise LinkageError("threshold_sweep requires thresholds")
        records = self._records(data)
        scored = self.score_pairs(records)
        truth = {
            (i, j)
            for i, j in full_pairs(records)
            if true_pair(records[i], records[j])
        }
        rows = []
        for threshold in thresholds:
            linked = {
                (r.left_index, r.right_index)
                for r in scored
                if r.weight >= threshold
            }
            tp = len(linked & truth)
            fp = len(linked - truth)
            fn = len(truth - linked)
            evaluation = DedupEvaluation(tp, fp, fn)
            rows.append(
                {
                    "threshold": threshold,
                    "precision": evaluation.precision,
                    "recall": evaluation.recall,
                    "f1": evaluation.f1,
                }
            )
        return rows
