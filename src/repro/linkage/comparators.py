"""Field comparators for record linkage.

All similarity functions return values in [0, 1] where 1 means
identical; distance-style helpers (:func:`levenshtein`) return raw edit
distances.  ``None`` handling is uniform: comparing two ``None`` values
yields 1.0 (vacuous agreement); comparing ``None`` with a value yields
0.0 (no evidence of agreement).
"""

from __future__ import annotations

from typing import Any, Optional


def _null_guard(a: Any, b: Any) -> Optional[float]:
    if a is None and b is None:
        return 1.0
    if a is None or b is None:
        return 0.0
    return None


def exact(a: Any, b: Any) -> float:
    """1.0 iff the values are equal (after the None guard)."""
    guard = _null_guard(a, b)
    if guard is not None:
        return guard
    return 1.0 if a == b else 0.0


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute, all cost 1).

    >>> levenshtein("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: Any, b: Any) -> float:
    """Edit distance normalized to [0, 1]: 1 − d/max(len)."""
    guard = _null_guard(a, b)
    if guard is not None:
        return guard
    a, b = str(a), str(b)
    if not a and not b:
        return 1.0
    return 1.0 - levenshtein(a, b) / max(len(a), len(b))


def jaro(a: Any, b: Any) -> float:
    """Jaro similarity.

    >>> round(jaro("martha", "marhta"), 4)
    0.9444
    """
    guard = _null_guard(a, b)
    if guard is not None:
        return guard
    a, b = str(a), str(b)
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    a_flags = [False] * len(a)
    b_flags = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len(b))
        for j in range(start, end):
            if not b_flags[j] and b[j] == char_a:
                a_flags[i] = True
                b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, flagged in enumerate(a_flags):
        if flagged:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: Any, b: Any, prefix_scale: float = 0.1) -> float:
    """Jaro–Winkler: Jaro boosted for common prefixes (≤ 4 chars).

    >>> jaro_winkler("martha", "marhta") > jaro("martha", "marhta")
    True
    """
    base = jaro(a, b)
    if a is None or b is None:
        return base
    a, b = str(a), str(b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    **dict.fromkeys("l", "4"),
    **dict.fromkeys("mn", "5"),
    **dict.fromkeys("r", "6"),
}


def soundex(value: str) -> str:
    """American Soundex code of a name.

    >>> soundex("Robert")
    'R163'
    >>> soundex("Rupert")
    'R163'
    """
    cleaned = [c for c in value.lower() if c.isalpha()]
    if not cleaned:
        return "0000"
    first = cleaned[0]
    encoded = [first.upper()]
    previous_code = _SOUNDEX_CODES.get(first, "")
    for char in cleaned[1:]:
        code = _SOUNDEX_CODES.get(char, "")
        if code and code != previous_code:
            encoded.append(code)
        if char not in "hw":
            previous_code = code
    return (("".join(encoded)) + "000")[:4]


def soundex_match(a: Any, b: Any) -> float:
    """1.0 iff the two values share a Soundex code."""
    guard = _null_guard(a, b)
    if guard is not None:
        return guard
    return 1.0 if soundex(str(a)) == soundex(str(b)) else 0.0


def numeric_closeness(a: Any, b: Any, tolerance: float = 0.1) -> float:
    """1 at equality, linearly decaying to 0 at relative difference ≥ tolerance."""
    guard = _null_guard(a, b)
    if guard is not None:
        return guard
    try:
        x, y = float(a), float(b)
    except (TypeError, ValueError):
        return 0.0
    if x == y:
        return 1.0
    scale = max(abs(x), abs(y), 1e-12)
    relative = abs(x - y) / scale
    if relative >= tolerance:
        return 0.0
    return 1.0 - relative / tolerance
