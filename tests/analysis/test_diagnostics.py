"""Unit tests for the diagnostics engine (records, severities, rendering)."""

import pytest

from repro.analysis import (
    CODES,
    Diagnostic,
    Diagnostics,
    ERROR,
    INFO,
    QueryAnalysisError,
    Severity,
    Span,
    WARNING,
    code_info,
)
from repro.analysis.codes import render_code_table
from repro.analysis.diagnostics import severity_from_name
from repro.sql.errors import SQLError


class TestSeverity:
    def test_ordering(self):
        assert INFO < WARNING < ERROR
        assert max([INFO, ERROR, WARNING]) is ERROR

    def test_labels(self):
        assert ERROR.label == "error"
        assert Severity.WARNING.label == "warning"

    def test_from_name(self):
        assert severity_from_name("Error") is ERROR
        with pytest.raises(ValueError):
            severity_from_name("fatal")


class TestCodeRegistry:
    def test_registry_is_closed(self):
        with pytest.raises(KeyError):
            Diagnostic("DQ999", ERROR, "nope")

    def test_every_code_documented(self):
        for code, info in CODES.items():
            assert info.code == code
            assert info.title
            assert info.doc
            assert info.default_severity in (INFO, WARNING, ERROR)

    def test_code_families(self):
        families = {code[:3] for code in CODES}
        assert families == {"DQ1", "DQ2", "DQ3", "DQ4"}

    def test_code_table_lists_everything(self):
        table = render_code_table()
        for code in CODES:
            assert code in table

    def test_code_info_unknown(self):
        with pytest.raises(KeyError):
            code_info("DQ000")


class TestDiagnostics:
    def test_add_defaults_severity_from_registry(self):
        diagnostics = Diagnostics()
        d = diagnostics.add("DQ202", "no such column")
        assert d.severity is ERROR
        d2 = diagnostics.add("DQ204", "gap")
        assert d2.severity is WARNING

    def test_severity_override(self):
        diagnostics = Diagnostics()
        d = diagnostics.add("DQ204", "gap", severity=ERROR)
        assert d.is_error

    def test_queries(self):
        diagnostics = Diagnostics()
        diagnostics.add("DQ202", "a")
        diagnostics.add("DQ204", "b")
        diagnostics.add("DQ302", "c")
        assert diagnostics.has_errors
        assert len(diagnostics.errors()) == 1
        assert len(diagnostics.warnings()) == 1
        assert diagnostics.max_severity() is ERROR
        assert diagnostics.codes() == ["DQ202", "DQ204", "DQ302"]
        assert diagnostics.summary() == "1 error(s), 1 warning(s), 1 info"

    def test_empty(self):
        diagnostics = Diagnostics()
        assert not diagnostics
        assert not diagnostics.has_errors
        assert diagnostics.max_severity() is None
        assert diagnostics.render() == "no diagnostics"

    def test_render_with_span_includes_caret(self):
        sql = "SELECT nosuch FROM customer"
        diagnostics = Diagnostics()
        diagnostics.add(
            "DQ202", "unknown column", span=(7, 13), source=sql, context="q"
        )
        text = diagnostics.render()
        assert "DQ202 error [q]: unknown column" in text
        assert "^^^^^^" in text
        caret_line = text.splitlines()[-1]
        snippet_line = text.splitlines()[-2]
        assert snippet_line.index("nosuch") == caret_line.index("^")

    def test_span_of(self):
        assert Span.of(None) is None
        assert Span.of((3, 7)) == Span(3, 7)


class TestQueryAnalysisError:
    def test_carries_diagnostics_and_span(self):
        sql = "SELECT nosuch FROM customer"
        diagnostics = Diagnostics()
        diagnostics.add("DQ202", "unknown column", span=(7, 13), source=sql)
        error = QueryAnalysisError(diagnostics, sql)
        assert isinstance(error, SQLError)
        assert error.diagnostics is diagnostics
        assert error.position == 7 and error.end == 13
        message = str(error)
        assert "query rejected by static analysis" in message
        assert "DQ202" in message

    def test_without_anchored_span(self):
        diagnostics = Diagnostics()
        diagnostics.add("DQ201", "unknown relation")
        error = QueryAnalysisError(diagnostics)
        assert error.position == -1
