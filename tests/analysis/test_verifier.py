"""Mutation + golden tests for the plan-IR verifier (DQ40x).

Each mutation case hand-builds an ill-formed plan — the kind a buggy
rewrite rule or a stale cache entry would produce — and asserts the
verifier reports exactly the dedicated DQ40x code.  Golden files under
``tests/analysis/golden/verifier_*.txt`` pin the rendered message.
Regenerate with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/analysis/test_verifier.py
"""

import os
from pathlib import Path

import pytest

from repro.analysis import (
    CODES,
    PlanVerificationError,
    assert_plan_verifies,
    verify_cache_entry,
    verify_plan,
)
from repro.analysis.catalog import example_catalog
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.sql.executor import execute
from repro.sql.nodes import (
    ColumnRef,
    Comparison,
    Literal,
    OrderItem,
    QualityRef,
)
from repro.sql.optimizer import PlanContext
from repro.sql.parser import parse
from repro.sql.physical import compile_plan
from repro.sql.plan import (
    Filter,
    Limit,
    Materialize,
    QualityFilter,
    Scan,
    ScoreFilter,
    Sort,
    TopK,
)
from repro.sql.plancache import (
    PreparedStatement,
    clear_plan_cache,
    default_plan_cache,
    plan_statement,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

BIG_SCHEMA = schema(
    "big", [("id", "INT"), ("name", "STR"), ("score", "INT")], key=["id"]
)


def make_big(n: int = 80) -> Relation:
    relation = Relation(BIG_SCHEMA)
    for i in range(n):
        relation.insert({"id": i, "name": f"n{i}", "score": i % 7})
    return relation


BIG = make_big()
CATALOG = {**example_catalog(), "big": BIG}
CONTEXT = PlanContext.from_relations(CATALOG)


def _optimized(sql: str):
    plan, _, _ = plan_statement(parse(sql), CATALOG)
    return plan


# -- mutation cases: one ill-formed plan per DQ40x code ----------------------

MUTATIONS = {
    # Filter reads a column its input does not provide.
    "DQ401": lambda: Filter(
        Scan("big"), Comparison("=", ColumnRef("nosuch"), Literal(1))
    ),
    # Scan flag contradicts the catalog: 'big' is a plain relation.
    "DQ402": lambda: Scan("big", tagged=True),
    # Quality pushdown over an untagged scan (no tag store to answer it).
    "DQ403": lambda: QualityFilter(
        Scan("big"), (("name", "source", "==", "x"),)
    ),
    # QUALITY(...) evaluated over a subtree that carries no tags.
    "DQ404": lambda: Filter(
        Scan("big"),
        Comparison("=", QualityRef("name", "source"), Literal("x")),
    ),
    # Columnar scan whose batches never reach a Materialize boundary.
    "DQ405": lambda: Filter(
        Scan("big", columnar=True),
        Comparison(">", ColumnRef("score"), Literal(3)),
    ),
    # Vector-ineligible predicate inside a columnar fragment.
    "DQ406": lambda: Materialize(
        Filter(
            Scan("big", columnar=True),
            Comparison("=", QualityRef("name", "source"), Literal("x")),
        )
    ),
    # Fusion produced an impossible parameter.
    "DQ407": lambda: TopK(Scan("big"), (OrderItem(ColumnRef("id")),), -1),
    # Limit-over-Sort survived optimization (fuse_topk missed it).
    "DQ408": lambda: Limit(
        Sort(Scan("big"), (OrderItem(ColumnRef("id")),)), 5
    ),
    # Pruned scan with no governing Filter predicate justifying the
    # dropped buckets.
    "DQ410": lambda: Scan(
        "big", partitions=(0,), partition_total=8, partition_key="score"
    ),
    # Score pushdown over an untagged scan (no materialized arrays).
    "DQ411": lambda: ScoreFilter(
        Scan("big"), (("credibility", ">", 0.5),)
    ),
}


@pytest.mark.parametrize("code", sorted(MUTATIONS), ids=sorted(MUTATIONS))
def test_mutation_caught_by_dedicated_code(code):
    plan = MUTATIONS[code]()
    diagnostics = verify_plan(plan, CONTEXT, context_label=code.lower())
    assert code in diagnostics.codes(), (
        f"mutation for {code} produced {diagnostics.codes()}"
    )
    rendered = f"plan: {plan!r}\n{diagnostics.render()}\n"
    path = GOLDEN_DIR / f"verifier_{code.lower()}.txt"
    if os.environ.get("UPDATE_GOLDEN"):
        path.write_text(rendered, encoding="utf-8")
    assert rendered == path.read_text(encoding="utf-8")


def test_dq4_registry_closed():
    """Every registered DQ4xx code has a dedicated test exercising it:
    mutations here, DQ409 below, DQ42x in test_workload."""
    dq4 = {code for code in CODES if code.startswith("DQ4")}
    covered = (
        set(MUTATIONS)
        | {"DQ409"}
        | {"DQ420", "DQ421", "DQ422", "DQ423", "DQ424", "DQ425"}
    )
    assert covered == dq4


class TestCleanPlans:
    CLEAN = [
        "SELECT name FROM big WHERE score > 3",
        "SELECT name, score FROM big ORDER BY score DESC LIMIT 5",
        "SELECT COUNT(*) AS n FROM big",
        "SELECT co_name FROM customer WHERE QUALITY(address.source) = 'x'",
        "SELECT DISTINCT co_name FROM customer "
        "WHERE employees > 10 ORDER BY co_name LIMIT 3",
    ]

    @pytest.mark.parametrize("sql", CLEAN)
    def test_optimizer_output_verifies(self, sql):
        diagnostics = verify_plan(_optimized(sql), CONTEXT, sql=sql)
        assert not diagnostics, diagnostics.render()

    def test_columnar_plan_verifies(self):
        plan = _optimized("SELECT name FROM big WHERE score > 3")
        # the fixture is large enough that costing chose the columnar path
        assert "Materialize" in repr(plan)
        assert not verify_plan(plan, CONTEXT)

    def test_unknown_relation_is_lenient(self):
        plan = Filter(
            Scan("ghost"), Comparison("=", ColumnRef("x"), Literal(1))
        )
        assert not verify_plan(plan, CONTEXT)


class TestAssertAndOptimizeHooks:
    def test_assert_raises_with_diagnostics(self):
        with pytest.raises(PlanVerificationError) as excinfo:
            assert_plan_verifies(MUTATIONS["DQ403"](), CONTEXT)
        assert "DQ403" in str(excinfo.value)
        assert excinfo.value.diagnostics.has_errors

    def test_warning_does_not_raise(self):
        assert_plan_verifies(MUTATIONS["DQ408"](), CONTEXT)

    def test_optimize_verify_true_on_good_plan(self):
        from repro.sql.optimizer import optimize
        from repro.sql.plan import logical_plan

        statement = parse("SELECT name FROM big WHERE score > 3")
        plan = optimize(
            logical_plan(statement, tagged=False), CONTEXT, verify=True
        )
        assert plan is not None

    def test_env_flag(self, monkeypatch):
        from repro.analysis import verify_plans_enabled

        monkeypatch.delenv("REPRO_VERIFY_PLANS", raising=False)
        assert not verify_plans_enabled()
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "0")
        assert not verify_plans_enabled()
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        assert verify_plans_enabled()


class TestCacheEntryAudit:
    SQL = "SELECT name FROM big WHERE score > 3"

    def make_entry(self, relation=BIG, sanitize=False):
        statement = parse(self.SQL)
        plan, resolved, _ = plan_statement(statement, {"big": relation})
        compiled = compile_plan(plan, {"big": relation}, sanitize=sanitize)
        return PreparedStatement(
            self.SQL, statement, plan, compiled, resolved, None,
            columnar=True, sanitize=sanitize,
        )

    def test_fresh_entry_is_clean(self):
        entry = self.make_entry()
        assert not verify_cache_entry(entry, BIG)

    def test_stale_schema_identity(self):
        entry = self.make_entry()
        # Same column layout, freshly constructed schema object: the
        # entry's identity pin must notice the swap.
        rebuilt_schema = schema(
            "big",
            [("id", "INT"), ("name", "STR"), ("score", "INT")],
            key=["id"],
        )
        replacement = Relation(rebuilt_schema)
        for i in range(80):
            replacement.insert({"id": i, "name": f"n{i}", "score": i % 7})
        diagnostics = verify_cache_entry(entry, replacement)
        assert diagnostics.codes() == ["DQ409"]
        assert "stale relation schema" in diagnostics.render()

    def test_missing_columnar_band(self):
        entry = self.make_entry()
        entry.columnar_band = None  # simulate an incomplete cache key
        diagnostics = verify_cache_entry(entry, BIG)
        assert diagnostics.codes() == ["DQ409"]
        assert "columnar cost band" in diagnostics.render()

    def test_band_mismatch_after_growth(self):
        small = make_big(4)  # row side of COLUMNAR_MIN_ROWS
        entry = self.make_entry()
        diagnostics = verify_cache_entry(entry, small)
        assert "DQ409" in diagnostics.codes()

    def test_missing_partition_layout(self):
        entry = self.make_entry()
        entry.partition_layout = None  # simulate an incomplete cache key
        diagnostics = verify_cache_entry(entry, BIG)
        assert diagnostics.codes() == ["DQ409"]
        assert "partition layout" in diagnostics.render()

    def test_stale_partition_layout(self):
        from repro.relational import hash_partitions

        relation = make_big()
        statement = parse(self.SQL)
        plan, resolved, _ = plan_statement(statement, {"big": relation})
        compiled = compile_plan(plan, {"big": relation})
        entry = PreparedStatement(
            self.SQL, statement, plan, compiled, resolved, None,
        )
        relation.repartition(hash_partitions("score", 4))
        diagnostics = verify_cache_entry(entry, relation)
        assert diagnostics.codes() == ["DQ409"]
        assert "partition layout version" in diagnostics.render()

    def test_hit_path_catches_tampered_entry(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        clear_plan_cache()
        try:
            relation = make_big()
            result = execute(self.SQL, {"big": relation})
            assert len(result) > 0
            hit = default_plan_cache().lookup(self.SQL, {"big": relation})
            assert hit is not None
            entry, _ = hit
            entry.columnar_band = None  # tamper with the installed entry
            with pytest.raises(PlanVerificationError) as excinfo:
                execute(self.SQL, {"big": relation})
            assert "DQ409" in str(excinfo.value)
        finally:
            clear_plan_cache()

    def test_install_path_verifies_under_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        clear_plan_cache()
        try:
            relation = make_big()
            execute(self.SQL, {"big": relation})
            stats = default_plan_cache().stats()
            assert stats["statements"] == 1
            execute(self.SQL, {"big": relation})
            assert default_plan_cache().stats()["hits"] >= 1
        finally:
            clear_plan_cache()
