"""Golden-file tests for the QSQL semantic analyzer.

Each case renders the full diagnostics (code + severity + message +
caret snippet) for one query against the example catalog and compares
against ``tests/analysis/golden/<name>.txt``.  Regenerate with::

    UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/analysis/test_query_analyzer.py
"""

import os
from pathlib import Path

import pytest

from repro.analysis import analyze_query
from repro.analysis.catalog import example_catalog

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (golden file name, expected distinct codes, query)
CASES = [
    ("dq200_syntax", ["DQ200"], "SELECT co_name FORM customer"),
    ("dq201_unknown_relation", ["DQ201"], "SELECT x FROM nowhere"),
    ("dq202_unknown_column", ["DQ202"], "SELECT nosuch FROM customer"),
    (
        "dq203_unknown_indicator",
        ["DQ203"],
        "SELECT co_name FROM customer WHERE QUALITY(address.bogus) = 'x'",
    ),
    (
        "dq204_coverage_gap",
        ["DQ204"],
        "SELECT co_name FROM customer WHERE QUALITY(co_name.source) = 'sales'",
    ),
    (
        "dq206_order_by_after_aggregation",
        ["DQ206"],
        "SELECT co_name, COUNT(*) FROM customer GROUP BY co_name "
        "ORDER BY employees",
    ),
    ("dq207_sum_over_str", ["DQ207"], "SELECT SUM(co_name) FROM customer"),
    (
        "dq208_duplicate_output",
        ["DQ208", "DQ306"],
        "SELECT DISTINCT co_name, co_name FROM customer",
    ),
    (
        "dq210_type_mismatch",
        ["DQ210"],
        "SELECT co_name FROM customer WHERE employees > 'many'",
    ),
    (
        "dq210_date_needs_keyword",
        ["DQ210"],
        "SELECT co_name FROM customer WHERE QUALITY(address.creation_time) "
        "> '1991-01-01'",
    ),
    (
        "dq211_null_literal",
        ["DQ211"],
        "SELECT co_name FROM customer WHERE address = NULL",
    ),
    (
        "dq220_contradictory_bounds",
        ["DQ220"],
        "SELECT co_name FROM customer WHERE employees > 100 "
        "AND employees < 50",
    ),
    (
        "dq220_equality_conflict",
        ["DQ220"],
        "SELECT ticker FROM quotes WHERE QUALITY(price.source) = 'a' "
        "AND QUALITY(price.source) = 'b'",
    ),
    (
        "dq220_null_conflict",
        ["DQ220"],
        "SELECT co_name FROM customer WHERE address IS NULL "
        "AND address = '12 Jay St'",
    ),
    (
        "dq221_tautology",
        ["DQ221"],
        "SELECT co_name FROM customer WHERE employees > 100 "
        "OR NOT employees > 100",
    ),
    (
        "dq301_duplicate_conjunct",
        ["DQ301"],
        "SELECT co_name FROM customer WHERE co_name = 'A' "
        "AND co_name = 'A'",
    ),
    (
        "dq302_duplicate_in_option",
        ["DQ302"],
        "SELECT co_name FROM customer WHERE co_name IN ('A', 'B', 'A')",
    ),
    (
        "dq303_limit_zero",
        ["DQ303"],
        "SELECT co_name FROM customer LIMIT 0",
    ),
    (
        "dq304_self_comparison",
        ["DQ304"],
        "SELECT co_name FROM customer WHERE employees >= employees",
    ),
    (
        "dq305_constant_predicate",
        ["DQ305"],
        "SELECT co_name FROM customer WHERE 1 = 2",
    ),
    (
        "dq306_redundant_distinct",
        ["DQ306"],
        "SELECT DISTINCT co_name FROM customer",
    ),
    (
        "dq307_duplicate_order_key",
        ["DQ307"],
        "SELECT co_name FROM customer ORDER BY address, address DESC",
    ),
    (
        "clean_example_query",
        [],
        "SELECT co_name, employees FROM customer WHERE employees > 5000 "
        "AND QUALITY(address.creation_time) >= DATE '1991-01-01' "
        "AND QUALITY(employees.source) IN ('estimate', 'acct''g') "
        "ORDER BY employees DESC LIMIT 5",
    ),
]


@pytest.fixture(scope="module")
def catalog():
    return example_catalog()


@pytest.mark.parametrize(
    "name,codes,sql", CASES, ids=[case[0] for case in CASES]
)
def test_golden(name, codes, sql, catalog):
    diagnostics = analyze_query(sql, catalog, context=name)
    rendered = f"query: {sql}\n{diagnostics.render()}\n"
    path = GOLDEN_DIR / f"{name}.txt"
    if os.environ.get("UPDATE_GOLDEN"):
        path.write_text(rendered, encoding="utf-8")
    assert diagnostics.codes() == codes
    assert rendered == path.read_text(encoding="utf-8")


def test_golden_cases_cover_enough_codes():
    """The ISSUE acceptance floor: >= 8 distinct documented codes."""
    covered = {code for _, codes, _ in CASES for code in codes}
    assert len(covered) >= 8


class TestAnalyzerBehavior:
    """Non-golden semantic checks."""

    def test_quality_on_untagged_relation(self, customer_relation):
        diagnostics = analyze_query(
            "SELECT co_name FROM customer "
            "WHERE QUALITY(address.source) = 'x'",
            customer_relation,
        )
        assert "DQ205" in diagnostics.codes()
        assert diagnostics.has_errors

    def test_relation_name_mismatch(self, customer_relation):
        diagnostics = analyze_query(
            "SELECT co_name FROM suppliers", customer_relation
        )
        assert diagnostics.codes() == ["DQ201"]

    def test_no_source_still_checks_structure(self):
        diagnostics = analyze_query(
            "SELECT a FROM t WHERE x = 'p' AND x = 'q'"
        )
        assert "DQ220" in diagnostics.codes()

    def test_unanalyzable_source_type(self):
        diagnostics = analyze_query("SELECT a FROM t", 42)
        assert diagnostics.codes() == ["DQ201"]

    def test_database_source(self, customer_database):
        diagnostics = analyze_query(
            "SELECT co_name FROM customer", customer_database
        )
        assert not diagnostics
        diagnostics = analyze_query(
            "SELECT co_name FROM suppliers", customer_database
        )
        assert diagnostics.codes() == ["DQ201"]

    def test_in_list_type_mismatch(self, catalog):
        diagnostics = analyze_query(
            "SELECT co_name FROM customer WHERE employees IN (1, 'two')",
            catalog,
        )
        assert "DQ210" in diagnostics.codes()

    def test_disjoint_in_sets_contradict(self, catalog):
        diagnostics = analyze_query(
            "SELECT co_name FROM customer WHERE co_name IN ('A') "
            "AND co_name IN ('B')",
            catalog,
        )
        assert "DQ220" in diagnostics.codes()

    def test_eq_vs_neq_tautology(self, catalog):
        diagnostics = analyze_query(
            "SELECT co_name FROM customer WHERE co_name = 'A' "
            "OR co_name <> 'A'",
            catalog,
        )
        assert "DQ221" in diagnostics.codes()

    def test_bounds_with_equal_limits_strict(self, catalog):
        diagnostics = analyze_query(
            "SELECT co_name FROM customer WHERE employees >= 100 "
            "AND employees < 100",
            catalog,
        )
        assert "DQ220" in diagnostics.codes()

    def test_satisfiable_bounds_clean(self, catalog):
        diagnostics = analyze_query(
            "SELECT co_name FROM customer WHERE employees >= 100 "
            "AND employees <= 100",
            catalog,
        )
        assert not diagnostics.has_errors

    def test_spans_point_into_source(self, catalog):
        sql = "SELECT nosuch FROM customer"
        diagnostics = analyze_query(sql, catalog)
        (d,) = list(diagnostics)
        assert sql[d.span.start : d.span.end] == "nosuch"

    def test_aggregate_order_by_output_name_ok(self, catalog):
        diagnostics = analyze_query(
            "SELECT co_name, COUNT(*) AS n FROM customer "
            "GROUP BY co_name ORDER BY n",
            catalog,
        )
        assert not diagnostics.has_errors
