"""Property test: analyzer-accepted queries execute cleanly.

The contract the strict execution path relies on: if the analyzer
reports no error-severity diagnostic for a statement against a
schema-conforming tagged relation, executing that statement must not
raise ``SQLError`` or ``UnknownColumnError``.  (The analyzer may
*over*-reject — flagging queries that would run — but never
under-reject.)
"""

import datetime as dt

from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_query
from repro.errors import UnknownColumnError
from repro.relational.schema import schema
from repro.sql.errors import SQLError
from repro.sql.executor import execute
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import (
    IndicatorDefinition,
    IndicatorValue,
    TagSchema,
)
from repro.tagging.relation import TaggedRelation

T_SCHEMA = schema(
    "t",
    [
        ("id", "INT"),
        ("name", "STR"),
        ("score", "FLOAT"),
        ("born", "DATE"),
        ("active", "BOOL"),
    ],
    key=["id"],
)

T_TAGS = TagSchema(
    indicators=[
        IndicatorDefinition("source", "STR"),
        IndicatorDefinition("age", "FLOAT"),
        IndicatorDefinition("creation_time", "DATE"),
    ],
    required={"name": ["source"]},
    allowed={"name": ["age"], "score": ["source", "age", "creation_time"]},
)


def make_relation() -> TaggedRelation:
    relation = TaggedRelation(T_SCHEMA, T_TAGS)
    for i in range(6):
        relation.insert(
            {
                "id": i,
                "name": QualityCell(
                    f"name{i}",
                    [IndicatorValue("source", f"src{i % 2}")]
                    + ([IndicatorValue("age", float(i))] if i % 2 else []),
                ),
                "score": QualityCell(
                    i * 1.5,
                    [
                        IndicatorValue("source", "feed"),
                        IndicatorValue(
                            "creation_time", dt.date(1991, 1, 1 + i)
                        ),
                    ]
                    if i % 3 == 0
                    else (),
                ),
                "born": dt.date(1980 + i, 6, 15),
                "active": bool(i % 2),
            }
        )
    return relation


RELATION = make_relation()

# Mix of valid and invalid names so both acceptance and rejection paths
# are exercised.
columns = st.sampled_from(["id", "name", "score", "born", "active", "bogus"])
indicators = st.sampled_from(["source", "age", "creation_time", "missing"])
literals = st.sampled_from(
    ["7", "1.5", "'name2'", "DATE '1985-06-15'", "TRUE", "NULL", "'src1'"]
)
comparators = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def operands(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return draw(columns)
    if kind == 1:
        return f"QUALITY({draw(columns)}.{draw(indicators)})"
    return draw(literals)


@st.composite
def predicates(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return f"{draw(operands())} {draw(comparators)} {draw(operands())}"
    if kind == 1:
        options = ", ".join(
            draw(st.lists(literals, min_size=1, max_size=3))
        )
        negated = "NOT " if draw(st.booleans()) else ""
        return f"{draw(operands())} {negated}IN ({options})"
    negated = " NOT" if draw(st.booleans()) else ""
    return f"{draw(operands())} IS{negated} NULL"


@st.composite
def where_clauses(draw):
    parts = draw(st.lists(predicates(), min_size=1, max_size=3))
    joiners = draw(
        st.lists(
            st.sampled_from(["AND", "OR"]),
            min_size=len(parts) - 1,
            max_size=len(parts) - 1,
        )
    )
    clause = parts[0]
    for joiner, part in zip(joiners, parts[1:]):
        clause += f" {joiner} {part}"
    return clause


@st.composite
def select_statements(draw):
    shape = draw(st.integers(0, 3))
    if shape == 0:
        projection = "*"
    elif shape == 3:
        agg_col = draw(st.sampled_from(["id", "score", "bogus"]))
        projection = draw(
            st.sampled_from(
                [
                    "COUNT(*) AS n",
                    f"SUM({agg_col}) AS total",
                    f"MIN({agg_col}) AS low, COUNT(*) AS n",
                ]
            )
        )
    else:
        names = draw(st.lists(columns, min_size=1, max_size=3))
        projection = ", ".join(names)
    sql = f"SELECT {projection} FROM t"
    if draw(st.booleans()):
        sql += f" WHERE {draw(where_clauses())}"
    if shape != 3 and draw(st.booleans()):
        sql += f" ORDER BY {draw(columns)}"
        if draw(st.booleans()):
            sql += " DESC"
    if draw(st.booleans()):
        sql += f" LIMIT {draw(st.integers(0, 5))}"
    return sql


@settings(max_examples=300, deadline=None)
@given(sql=select_statements())
def test_accepted_queries_execute_cleanly(sql):
    diagnostics = analyze_query(sql, RELATION)
    if diagnostics.has_errors:
        return  # rejected; nothing to check
    try:
        execute(sql, RELATION)
    except (SQLError, UnknownColumnError) as exc:  # pragma: no cover
        raise AssertionError(
            f"analyzer accepted {sql!r} but execution raised {exc!r}"
        ) from exc


@settings(max_examples=100, deadline=None)
@given(sql=select_statements())
def test_strict_execute_matches_analyzer(sql):
    """strict=True raises exactly when the analyzer reports errors."""
    from repro.analysis import QueryAnalysisError

    diagnostics = analyze_query(sql, RELATION)
    if diagnostics.has_errors:
        try:
            execute(sql, RELATION, strict=True)
        except QueryAnalysisError as exc:
            assert exc.diagnostics.has_errors
        else:  # pragma: no cover
            raise AssertionError(
                f"strict execution accepted {sql!r} despite "
                f"{diagnostics.codes()}"
            )
    else:
        execute(sql, RELATION, strict=True)
