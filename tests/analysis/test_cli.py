"""Tests for the repro-lint CLI and the QSQL extractor."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main
from repro.analysis.codes import CODES
from repro.analysis.extract import (
    extract_queries_from_source,
    iter_python_files,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestExtractor:
    def test_plain_string(self):
        queries = extract_queries_from_source(
            'q = "SELECT a FROM t WHERE b = 1"\nother = "not sql"\n'
        )
        assert len(queries) == 1
        assert queries[0].sql == "SELECT a FROM t WHERE b = 1"
        assert queries[0].exact

    def test_implicit_concatenation(self):
        source = 'q = ("SELECT a FROM t "\n     "WHERE b = 1")\n'
        (query,) = extract_queries_from_source(source)
        assert query.sql == "SELECT a FROM t WHERE b = 1"

    def test_fstring_hole_inside_literal(self):
        source = "q = f\"SELECT a FROM t WHERE d >= DATE '{cutoff}'\"\n"
        (query,) = extract_queries_from_source(source)
        assert query.sql == "SELECT a FROM t WHERE d >= DATE '1991-01-01'"
        assert not query.exact

    def test_fstring_hole_outside_literal(self):
        source = 'q = f"SELECT a FROM t LIMIT {n}"\n'
        (query,) = extract_queries_from_source(source)
        assert query.sql == "SELECT a FROM t LIMIT 0"

    def test_escaped_quote_parity(self):
        source = (
            "q = f\"SELECT a FROM t WHERE s = 'acct''g' "
            'AND n > {threshold}"\n'
        )
        (query,) = extract_queries_from_source(source)
        assert query.sql.endswith("AND n > 0")

    def test_iter_python_files(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "b.py").write_text("y = 2\n")
        (sub / "c.txt").write_text("no\n")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]


class TestCLI:
    def test_examples_lint_clean(self, capsys):
        code = main([str(REPO_ROOT / "examples")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 error(s)" in out

    def test_scenarios_lint_clean(self, capsys):
        code = main(["--scenarios"])
        assert code == 0

    def test_bad_query_fails(self, capsys):
        code = main(["--sql", "SELECT nosuch FROM customer"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DQ202" in out

    def test_warning_passes_by_default(self, capsys):
        code = main(["--sql", "SELECT co_name FROM customer LIMIT 0"])
        assert code == 0

    def test_fail_on_warning(self, capsys):
        code = main(
            ["--fail-on", "warning", "--sql",
             "SELECT co_name FROM customer LIMIT 0"]
        )
        assert code == 1

    def test_no_catalog_mode(self, capsys):
        code = main(
            ["--catalog", "none", "--sql", "SELECT nosuch FROM anywhere"]
        )
        assert code == 0  # resolution checks need a catalog

    def test_codes_table(self, capsys):
        code = main(["--codes"])
        out = capsys.readouterr().out
        assert code == 0
        for registered in CODES:
            assert registered in out

    def test_nothing_to_lint_errors(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_missing_path(self, tmp_path, capsys):
        code = main([str(tmp_path / "ghost.py")])
        assert code == 2

    def test_file_with_bad_query(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text('q = "SELECT nosuch FROM customer"\n')
        code = main([str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert f"{bad}:1" in out

    def test_json_format(self, capsys):
        code = main(
            ["--format", "json", "--sql", "SELECT nosuch FROM customer"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["queries"] == 1
        assert payload["summary"]["errors"] == 1
        assert payload["summary"]["failed"] is True
        (finding,) = payload["findings"]
        assert finding["code"] == "DQ202"
        assert finding["severity"] == "error"
        assert finding["span"] == [7, 13]
        assert finding["context"] == "--sql"

    def test_json_format_clean(self, capsys):
        code = main(
            ["--format", "json", "--sql", "SELECT co_name FROM customer"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["findings"] == []
        assert payload["summary"]["failed"] is False

    def test_workload_flag(self, capsys):
        code = main(
            [
                "--workload",
                "--fail-on", "warning",
                "--sql", "SELECT co_name FROM customer WHERE employees > 1",
                "--sql", "SELECT co_name FROM customer WHERE employees > 2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "DQ420" in out

    def test_workload_flag_json(self, capsys):
        code = main(
            [
                "--workload",
                "--format", "json",
                "--sql",
                "SELECT co_name FROM customer "
                "WHERE QUALITY(address.source) = 'a'",
                "--sql",
                "SELECT co_name FROM customer "
                "WHERE QUALITY(address.source) = 'b'",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0  # DQ42x here are warnings/info; default gate is error
        codes = {finding["code"] for finding in payload["findings"]}
        assert "DQ421" in codes

    def test_examples_workload_gate(self, capsys):
        """The CI command: examples + scenarios + workload, warnings fatal."""
        code = main(
            [
                str(REPO_ROOT / "examples"),
                "--scenarios",
                "--workload",
                "--fail-on", "warning",
            ]
        )
        assert code == 0

    def test_demonstrates_at_least_eight_codes(self, capsys):
        """ISSUE acceptance: >= 8 distinct DQ codes via the CLI."""
        bad_queries = [
            "SELECT co_name FORM customer",                       # DQ200
            "SELECT x FROM nowhere",                              # DQ201
            "SELECT nosuch FROM customer",                        # DQ202
            "SELECT co_name FROM customer "
            "WHERE QUALITY(address.bogus) = 'x'",                 # DQ203
            "SELECT co_name FROM customer "
            "WHERE QUALITY(co_name.source) = 'x'",                # DQ204
            "SELECT SUM(co_name) FROM customer",                  # DQ207
            "SELECT co_name, co_name FROM customer",              # DQ208
            "SELECT co_name FROM customer WHERE employees > 'x'", # DQ210
            "SELECT co_name FROM customer WHERE address = NULL",  # DQ211
            "SELECT co_name FROM customer "
            "WHERE co_name = 'A' AND co_name = 'B'",              # DQ220
        ]
        argv = []
        for sql in bad_queries:
            argv.extend(["--sql", sql])
        code = main(argv)
        out = capsys.readouterr().out
        assert code == 1
        seen = {c for c in CODES if c in out}
        assert len(seen) >= 8
