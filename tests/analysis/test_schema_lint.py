"""Tests for the quality-schema linter (DQ1xx codes)."""

import pytest

from repro.analysis import (
    lint_database,
    lint_merge,
    lint_quality_schema,
    lint_rename,
    lint_tag_schema,
)
from repro.core.terminology import QualityIndicatorSpec
from repro.core.views import (
    ApplicationView,
    IndicatorAnnotation,
    ParameterAnnotation,
    ParameterView,
    QualitySchema,
)
from repro.core.terminology import QualityParameter
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.tagging.indicators import IndicatorDefinition, TagSchema
from repro.tagging.relation import TaggedRelation


@pytest.fixture
def drifted_tag_schema():
    """Tags a column the customer relation does not have."""
    return TagSchema(
        indicators=[IndicatorDefinition("source")],
        required={"fax_number": ["source"]},
    )


class TestTagSchemaLint:
    def test_dq101_drift(self, drifted_tag_schema, customer_schema):
        diagnostics = lint_tag_schema(
            drifted_tag_schema, customer_schema, context="customer"
        )
        assert diagnostics.codes() == ["DQ101"]
        (drift,) = list(diagnostics)
        assert "fax_number" in drift.message
        assert drift.is_error

    def test_dq102_unused_indicator(self, customer_schema):
        tag_schema = TagSchema(
            indicators=[
                IndicatorDefinition("source"),
                IndicatorDefinition("never_used"),
            ],
            allowed={"address": ["source"]},
        )
        diagnostics = lint_tag_schema(tag_schema, customer_schema)
        assert diagnostics.codes() == ["DQ102"]
        assert "never_used" in list(diagnostics)[0].message

    def test_clean(self, customer_tag_schema, customer_schema):
        diagnostics = lint_tag_schema(customer_tag_schema, customer_schema)
        assert not diagnostics

    def test_without_relation_schema_skips_drift(self, drifted_tag_schema):
        # Usage (DQ102) is judged from the tag schema alone; drift
        # (DQ101) needs the relation schema, so none is reported here.
        diagnostics = lint_tag_schema(drifted_tag_schema)
        assert not diagnostics


class TestMergeLint:
    def test_dq105_domain_conflict(self):
        a = TagSchema(
            indicators=[IndicatorDefinition("age", "FLOAT")],
            allowed={"price": ["age"]},
        )
        b = TagSchema(
            indicators=[IndicatorDefinition("age", "INT")],
            allowed={"volume": ["age"]},
        )
        diagnostics = lint_merge(a, b)
        assert diagnostics.codes() == ["DQ105"]
        assert "FLOAT" in list(diagnostics)[0].message
        # The lint predicts exactly what merge raises.
        from repro.errors import TagSchemaError

        with pytest.raises(TagSchemaError):
            a.merge(b)

    def test_compatible_merge_clean(self, customer_tag_schema):
        other = TagSchema(
            indicators=[IndicatorDefinition("source", "STR")],
            allowed={"co_name": ["source"]},
        )
        assert not lint_merge(customer_tag_schema, other)
        merged = customer_tag_schema.merge(other)
        assert "co_name" in merged.tagged_columns


class TestRenameLint:
    def test_dq106_collision(self, customer_tag_schema):
        diagnostics = lint_rename(
            customer_tag_schema, {"address": "x", "employees": "x"}
        )
        assert diagnostics.codes() == ["DQ106"]
        assert diagnostics.has_errors

    def test_injective_rename_clean(self, customer_tag_schema):
        assert not lint_rename(customer_tag_schema, {"address": "addr"})


class TestQualitySchemaLint:
    def _parameter_view(self, trading_er):
        view = ApplicationView(trading_er)
        return ParameterView(
            view,
            [
                ParameterAnnotation(
                    ("company_stock", "share_price"),
                    QualityParameter("timeliness"),
                ),
                ParameterAnnotation(
                    ("client", "telephone"), QualityParameter("accuracy")
                ),
            ],
        )

    def test_dq103_unoperationalized_parameter(self, trading_er):
        parameter_view = self._parameter_view(trading_er)
        quality_schema = QualitySchema(
            parameter_view.application_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("age", "FLOAT"),
                    derived_from=("timeliness",),
                )
            ],
        )
        diagnostics = lint_quality_schema(quality_schema, [parameter_view])
        assert diagnostics.codes() == ["DQ103"]
        assert "accuracy" in list(diagnostics)[0].message

    def test_dq104_dangling_reference(self, trading_er):
        parameter_view = self._parameter_view(trading_er)
        quality_schema = QualitySchema(
            parameter_view.application_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("age", "FLOAT"),
                    derived_from=("timeliness", "believability"),
                ),
                IndicatorAnnotation(
                    ("client", "telephone"),
                    QualityIndicatorSpec("collection_method"),
                    derived_from=("accuracy",),
                ),
            ],
        )
        diagnostics = lint_quality_schema(quality_schema, [parameter_view])
        assert diagnostics.codes() == ["DQ104"]
        assert "believability" in list(diagnostics)[0].message

    def test_dq105_conflicting_annotations(self, trading_er):
        view = ApplicationView(trading_er)
        quality_schema = QualitySchema(
            view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("age", "FLOAT"),
                ),
                IndicatorAnnotation(
                    ("client", "telephone"),
                    QualityIndicatorSpec("age", "INT"),
                ),
            ],
        )
        diagnostics = lint_quality_schema(quality_schema)
        assert diagnostics.codes() == ["DQ105"]

    def test_trading_methodology_is_clean(self):
        from repro.experiments.scenarios import run_trading_methodology

        modeling = run_trading_methodology()
        diagnostics = lint_quality_schema(
            modeling.quality_schema, modeling.parameter_views
        )
        assert not diagnostics


class TestDatabaseLint:
    def test_lints_every_tagged_relation(self, customer_schema):
        # A live TaggedRelation can't drift (check_against runs at
        # construction), but it can carry dead indicator definitions.
        sloppy = TagSchema(
            indicators=[
                IndicatorDefinition("source"),
                IndicatorDefinition("never_used"),
            ],
            allowed={"address": ["source"]},
        )
        catalog = {
            "customer": TaggedRelation(customer_schema, sloppy),
            "plain": Relation(schema("plain", [("x", "INT")])),
        }
        diagnostics = lint_database(catalog)
        assert diagnostics.codes() == ["DQ102"]
        assert all(d.context == "customer" for d in diagnostics)

    def test_clean_database(self, tagged_customers):
        assert not lint_database({"customer": tagged_customers})
