"""Tests for the cross-statement workload analyzer (DQ42x)."""

import pytest

from repro.analysis import analyze_workload, statement_fingerprint
from repro.analysis.catalog import example_catalog
from repro.sql.parser import parse


@pytest.fixture(scope="module")
def catalog():
    return example_catalog()


class TestFingerprint:
    def test_masks_literals_everywhere(self):
        a = parse("SELECT name FROM t WHERE score > 10 LIMIT 5")
        b = parse("SELECT name FROM t WHERE score > 99 LIMIT 50")
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_masks_in_lists_regardless_of_arity(self):
        a = parse("SELECT a FROM t WHERE b IN ('x')")
        b = parse("SELECT a FROM t WHERE b IN ('x', 'y', 'z')")
        assert statement_fingerprint(a) == statement_fingerprint(b)

    def test_distinct_and_direction_are_structural(self):
        a = parse("SELECT a FROM t ORDER BY a")
        b = parse("SELECT a FROM t ORDER BY a DESC")
        c = parse("SELECT DISTINCT a FROM t ORDER BY a")
        assert statement_fingerprint(a) != statement_fingerprint(b)
        assert statement_fingerprint(a) != statement_fingerprint(c)

    def test_rendering(self):
        statement = parse(
            "SELECT a, COUNT(*) AS n FROM t WHERE b = 1 "
            "GROUP BY a ORDER BY a LIMIT 3"
        )
        assert statement_fingerprint(statement) == (
            "SELECT a, COUNT(*) AS n FROM t WHERE b = ? "
            "GROUP BY a ORDER BY a ASC LIMIT ?"
        )


class TestDuplicateShapes:
    def test_dq420_on_literal_variants(self):
        diagnostics = analyze_workload(
            [
                ("SELECT a FROM t WHERE b > 1", "x.py:1"),
                ("SELECT a FROM t WHERE b > 2", "y.py:9"),
            ]
        )
        assert diagnostics.codes() == ["DQ420"]
        assert "x.py:1" in diagnostics[0].message or "x.py:1" in (
            diagnostics[0].context
        )

    def test_identical_texts_share_a_cache_entry(self):
        diagnostics = analyze_workload(
            [
                ("SELECT a FROM t WHERE b > 1", "x"),
                ("SELECT a FROM t WHERE b > 1", "y"),
            ]
        )
        assert "DQ420" not in diagnostics.codes()

    def test_different_shapes_do_not_group(self):
        diagnostics = analyze_workload(
            [
                ("SELECT a FROM t WHERE b > 1", "x"),
                ("SELECT a FROM t WHERE b > 1 ORDER BY a", "y"),
            ]
        )
        assert "DQ420" not in diagnostics.codes()


class TestQualityViews:
    def test_dq421_contradictory_views(self):
        diagnostics = analyze_workload(
            [
                (
                    "SELECT a FROM t WHERE QUALITY(a.source) = 'ledger'",
                    "view1",
                ),
                (
                    "SELECT a FROM t WHERE QUALITY(a.source) = 'feed'",
                    "view2",
                ),
            ]
        )
        assert "DQ421" in diagnostics.codes()
        (finding,) = [d for d in diagnostics if d.code == "DQ421"]
        assert "view1" in finding.message and "view2" in finding.message

    def test_dq421_contradictory_bounds(self):
        diagnostics = analyze_workload(
            [
                ("SELECT a FROM t WHERE QUALITY(a.age) < 5", "fresh"),
                ("SELECT a FROM t WHERE QUALITY(a.age) > 10", "stale"),
            ]
        )
        assert "DQ421" in diagnostics.codes()

    def test_no_dq421_on_overlapping_ranges(self):
        diagnostics = analyze_workload(
            [
                ("SELECT a FROM t WHERE QUALITY(a.age) < 10", "x"),
                ("SELECT a FROM t WHERE QUALITY(a.age) > 5", "y"),
            ]
        )
        assert "DQ421" not in diagnostics.codes()

    def test_no_dq421_across_different_indicators(self):
        diagnostics = analyze_workload(
            [
                ("SELECT a FROM t WHERE QUALITY(a.source) = 'x'", "p"),
                ("SELECT a FROM t WHERE QUALITY(a.origin) = 'y'", "q"),
            ]
        )
        assert "DQ421" not in diagnostics.codes()

    def test_dq422_strict_subset(self):
        diagnostics = analyze_workload(
            [
                (
                    "SELECT a FROM t WHERE QUALITY(a.source) IN ('x')",
                    "narrow",
                ),
                (
                    "SELECT a FROM t WHERE QUALITY(a.source) IN ('x', 'y')",
                    "wide",
                ),
            ]
        )
        assert "DQ422" in diagnostics.codes()
        (finding,) = [d for d in diagnostics if d.code == "DQ422"]
        assert finding.severity.label == "info"
        assert "narrow" in finding.message

    def test_no_dq422_on_equal_sets(self):
        diagnostics = analyze_workload(
            [
                ("SELECT a FROM t WHERE QUALITY(a.s) IN ('x', 'y')", "p"),
                ("SELECT b FROM t WHERE QUALITY(a.s) IN ('y', 'x')", "q"),
            ]
        )
        assert "DQ422" not in diagnostics.codes()

    def test_value_predicates_are_ignored(self):
        # DQ421/DQ422 are about *quality* views; plain value filters
        # conflicting across statements is ordinary business logic.
        diagnostics = analyze_workload(
            [
                ("SELECT a FROM t WHERE b = 1", "p"),
                ("SELECT a FROM t WHERE b = 2", "q"),
            ]
        )
        assert "DQ421" not in diagnostics.codes()


class TestUnqueriedIndicators:
    def test_dq423_lists_unused_indicators(self, catalog):
        diagnostics = analyze_workload(
            [
                (
                    "SELECT co_name FROM customer "
                    "WHERE QUALITY(address.source) = 'sales'",
                    "only-source",
                )
            ],
            catalog,
        )
        (finding,) = [d for d in diagnostics if d.code == "DQ423"]
        assert finding.severity.label == "info"
        assert "creation_time" in finding.message
        assert "'source'" not in finding.message

    def test_no_dq423_without_catalog(self):
        diagnostics = analyze_workload(
            [("SELECT co_name FROM customer", "x")]
        )
        assert "DQ423" not in diagnostics.codes()

    def test_no_dq423_for_unreferenced_relations(self, catalog):
        # 'ticks' defines indicators, but the workload never reads the
        # relation — that is not the workload's problem.
        diagnostics = analyze_workload(
            [("SELECT a FROM elsewhere", "x")], catalog
        )
        assert "DQ423" not in diagnostics.codes()


class TestPartitionCandidates:
    WORKLOAD = [
        ("SELECT id FROM events WHERE region = 'north'", "view-a"),
        ("SELECT id FROM events WHERE region = 'south' AND n > 3", "view-b"),
        ("SELECT id FROM events WHERE region IN ('east', 'west')", "view-c"),
    ]

    def test_dq424_suggests_most_pinned_column(self):
        diagnostics = analyze_workload(self.WORKLOAD)
        (finding,) = [d for d in diagnostics if d.code == "DQ424"]
        assert finding.severity.label == "info"
        assert "events.region" in finding.message
        assert "3 distinct" in finding.message

    def test_one_statement_is_not_a_pattern(self):
        diagnostics = analyze_workload(self.WORKLOAD[:1])
        assert "DQ424" not in diagnostics.codes()

    def test_repeated_texts_count_once(self):
        diagnostics = analyze_workload([self.WORKLOAD[0]] * 3)
        assert "DQ424" not in diagnostics.codes()

    def test_non_equality_predicates_do_not_vote(self):
        diagnostics = analyze_workload(
            [
                ("SELECT id FROM events WHERE n > 1", "a"),
                ("SELECT id FROM events WHERE n > 2", "b"),
                ("SELECT id FROM events WHERE n NOT IN (3, 4)", "c"),
            ]
        )
        assert "DQ424" not in diagnostics.codes()

    def test_already_partitioned_relation_is_quiet(self):
        from repro.relational import hash_partitions
        from repro.relational.relation import Relation
        from repro.relational.schema import schema as make_schema

        relation = Relation(
            make_schema("events", [("id", "INT"), ("region", "STR"), ("n", "INT")])
        )
        relation.repartition(hash_partitions("region", 8))
        diagnostics = analyze_workload(self.WORKLOAD, {"events": relation})
        assert "DQ424" not in diagnostics.codes()

    def test_quality_refs_do_not_vote(self):
        diagnostics = analyze_workload(
            [
                (
                    "SELECT co_name FROM customer "
                    "WHERE QUALITY(address.source) = 'a'",
                    "qa",
                ),
                (
                    "SELECT co_name FROM customer "
                    "WHERE QUALITY(address.source) = 'a'",
                    "qb",
                ),
            ]
        )
        assert "DQ424" not in diagnostics.codes()


class TestUnregisteredParameters:
    SQL = (
        "SELECT co_name FROM customer WHERE QUALITY(credibility) > 0.5"
    )

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        from repro.quality.materialize import clear_profiles

        clear_profiles()
        yield
        clear_profiles()

    def test_dq425_for_unregistered_parameter(self):
        diagnostics = analyze_workload([(self.SQL, "grade-view")])
        (finding,) = [d for d in diagnostics if d.code == "DQ425"]
        assert finding.severity.label == "info"
        assert "QUALITY(credibility)" in finding.message
        assert "'customer'" in finding.message

    def test_repeated_references_report_once(self):
        diagnostics = analyze_workload(
            [(self.SQL, "view-a"), (self.SQL, "view-b")]
        )
        assert diagnostics.codes().count("DQ425") == 1

    def test_registered_parameter_is_quiet(self):
        from repro.quality.materialize import (
            ScoringProfile,
            register_profile,
        )
        from repro.quality.scoring import credibility_scorer

        register_profile(
            ScoringProfile(
                "workload-test", [credibility_scorer({"acct'g": 0.9})]
            )
        )
        diagnostics = analyze_workload([(self.SQL, "grade-view")])
        assert "DQ425" not in diagnostics.codes()


class TestRobustness:
    def test_parse_failures_are_skipped(self):
        diagnostics = analyze_workload(
            [
                ("SELECT a FORM t", "bad"),
                ("SELECT a FROM t WHERE b > 1", "ok1"),
                ("SELECT a FROM t WHERE b > 2", "ok2"),
            ]
        )
        assert diagnostics.codes() == ["DQ420"]

    def test_accepts_objects_with_sql_and_context(self):
        class Extracted:
            def __init__(self, sql, context):
                self.sql = sql
                self.context = context

        diagnostics = analyze_workload(
            [
                Extracted("SELECT a FROM t WHERE b > 1", "x"),
                Extracted("SELECT a FROM t WHERE b > 2", "y"),
            ]
        )
        assert diagnostics.codes() == ["DQ420"]

    def test_empty_workload(self):
        assert not analyze_workload([])
