"""EXPLAIN ANALYZE, the stats hook, ambient metrics, and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis.diagnostics import QueryAnalysisError
from repro.obs import metrics as obs_metrics
from repro.obs.cli import main as cli_main
from repro.obs.stats import StatsCollector
from repro.relational.catalog import Database
from repro.relational.schema import Column, RelationSchema
from repro.sql import clear_plan_cache, execute
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import (
    IndicatorDefinition,
    IndicatorValue,
    TagSchema,
)
from repro.tagging.relation import TaggedRelation


@pytest.fixture
def tagged():
    schema = RelationSchema(
        "t", [Column("a", "INT"), Column("b", "INT"), Column("c", "STR")]
    )
    tags = TagSchema(
        [IndicatorDefinition("source", "STR")],
        allowed={"a": ["source"]},
    )
    relation = TaggedRelation(schema, tags)
    for index in range(20):
        relation.insert(
            {
                "a": QualityCell(
                    index,
                    [IndicatorValue("source", "s1" if index % 2 else "s2")],
                ),
                "b": QualityCell(index * 3),
                "c": QualityCell("xyz"[index % 3]),
            }
        )
    return relation


SQL = (
    "SELECT a, b FROM t "
    "WHERE QUALITY(a.source) = 's1' AND b > 6 "
    "ORDER BY b DESC LIMIT 4"
)


class TestExplainAnalyze:
    def test_annotates_rows_time_selectivity(self, tagged):
        clear_plan_cache()
        result = execute(f"EXPLAIN ANALYZE {SQL}", tagged)
        assert result.schema.column_names == ("plan",)
        text = "\n".join(row["plan"] for row in result)
        # Same operators as plain EXPLAIN...
        assert "Project" in text and "TopK" in text
        assert "QualityFilter" in text
        assert "Scan [t (tagged)]" in text
        # ...but annotated with measured facts from a real execution.
        assert "rows=4" in text  # the TopK/Project output
        assert " ms" in text and "time=" in text
        assert "selectivity=" in text
        # 10 of 20 rows carry source=s1: the columnar scan ratio.
        assert "selectivity=50.0%" in text

    def test_matches_plain_explain_shape(self, tagged):
        plain = execute(f"EXPLAIN {SQL}", tagged)
        analyzed = execute(f"EXPLAIN ANALYZE {SQL}", tagged)
        def strip(row):
            return row["plan"].split("  (")[0]

        assert [strip(r) for r in analyzed] == [r["plan"] for r in plain]

    def test_not_cached(self, tagged):
        clear_plan_cache()
        with obs_metrics.instrumented() as registry:
            execute(f"EXPLAIN ANALYZE {SQL}", tagged)
            execute(f"EXPLAIN ANALYZE {SQL}", tagged)
            hits = registry.get("qsql.plancache.hits")
        assert hits is None or hits.value == 0

    def test_rejected_without_planner(self, tagged):
        for sql in (f"EXPLAIN {SQL}", f"EXPLAIN ANALYZE {SQL}"):
            with pytest.raises(QueryAnalysisError) as info:
                execute(sql, tagged, planner=False)
            (diagnostic,) = info.value.diagnostics
            assert diagnostic.code == "DQ209"
            assert "planner" in diagnostic.message


class TestStatsCollector:
    def test_planner_cold_then_cached(self, tagged):
        clear_plan_cache()
        collector = StatsCollector()
        cold = execute(SQL, tagged, stats=collector)
        assert collector.filled and collector.planned
        assert not collector.cache_hit
        assert collector.rows == len(cold) == 4
        assert collector.seconds > 0
        assert collector.sql == SQL
        root = collector.execution.root
        assert root.executed and root.rows_out == 4

        warm = execute(SQL, tagged, stats=collector)
        assert collector.cache_hit
        assert collector.rows == len(warm) == 4
        quality = collector.execution.operator("QualityFilter")
        assert quality is not None and quality.executed
        assert collector.execution.selectivity(quality) == pytest.approx(0.5)

    def test_interpreter_path_builds_stage_chain(self, tagged):
        collector = StatsCollector()
        result = execute(SQL, tagged, planner=False, stats=collector)
        assert collector.filled and not collector.planned
        assert not collector.cache_hit
        assert collector.rows == len(result) == 4
        labels = [node.label for node in collector.execution.nodes]
        # Root-first chain: last clause down to the source scan.
        assert labels[-1].startswith("Scan [t")
        assert any(label.startswith("Filter") for label in labels)
        assert any(label.startswith("Limit") for label in labels)
        rendered = "\n".join(collector.execution.render_lines())
        assert "rows=" in rendered and "selectivity=" in rendered
        assert SQL in collector.render()
        assert "path: interpreter" in collector.render()

    def test_collection_does_not_change_results(self, tagged):
        clear_plan_cache()
        plain = [row.values_tuple() for row in execute(SQL, tagged)]
        collected = [
            row.values_tuple()
            for row in execute(SQL, tagged, stats=StatsCollector())
        ]
        assert plain == collected


class TestAmbientMetrics:
    def test_engine_counters_flow_when_enabled(self, tagged):
        clear_plan_cache()
        with obs_metrics.instrumented() as registry:
            registry.reset()
            execute(SQL, tagged)  # cold: miss + columnar scan
            execute(SQL, tagged)  # warm: hit
            assert registry.get("qsql.plancache.misses").value == 1
            assert registry.get("qsql.plancache.hits").value == 1
            assert registry.get("qsql.executions").value == 2
            assert registry.get("qsql.statement_seconds").count == 2
            assert registry.get("columnar.scans").value >= 2
            assert registry.get("columnar.rows_scanned").value >= 2 * len(
                tagged
            )
            assert registry.get("columnar.scan_selectivity").count >= 2

    def test_disabled_by_default_records_nothing(self, tagged):
        clear_plan_cache()
        registry = obs_metrics.global_registry()
        registry.clear()
        execute(SQL, tagged)
        assert len(registry) == 0

    def test_database_metrics_property(self):
        assert Database("corp").metrics is obs_metrics.global_registry()


class TestCli:
    def test_scenario_smoke(self, capsys):
        assert cli_main(["--scenario", "e2", "--scale", "20"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE:" in out
        assert "rows=" in out
        assert "qsql.plancache.hits (counter): 1" in out
        assert "trace (cold statement):" in out

    def test_scenario_columnar(self, capsys):
        assert cli_main(["--scenario", "columnar", "--scale", "200"]) == 0
        out = capsys.readouterr().out
        assert "Scan [readings (plain, columnar)]" in out
        assert "batch=columnar" in out
        assert "Materialize [columnar -> rows]" in out
        assert "columnar.relation_builds (counter): 1" in out

    def test_scenario_json_format(self, capsys):
        assert (
            cli_main(
                ["--scenario", "e3", "--scale", "16", "--format", "json"]
            )
            == 0
        )
        out = capsys.readouterr().out
        start = out.index("{")
        snapshot = json.loads(out[start : out.rindex("}") + 1])
        assert snapshot["polygen.joins"]["value"] == 1

    def test_trend_pass_and_fail(self, tmp_path, capsys):
        healthy = tmp_path / "BENCH_OK.json"
        healthy.write_text(
            json.dumps(
                [
                    {
                        "bench": "e2_tagged_scan_fast",
                        "n": 10,
                        "seconds": 0.01,
                        "ops_per_sec": 100.0,
                        "speedup": 4.2,
                    },
                    {
                        "bench": "obs_disabled_execute",
                        "n": 10,
                        "seconds": 0.01,
                        "ops_per_sec": 100.0,
                        "overhead": 1.01,
                    },
                ]
            )
        )
        assert cli_main(["--trend", str(healthy)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

        broken = tmp_path / "BENCH_BAD.json"
        broken.write_text(
            json.dumps(
                [
                    {
                        "bench": "qsql_cached_statement",
                        "n": 10,
                        "seconds": 0.01,
                        "ops_per_sec": 100.0,
                        "speedup": 1.1,
                    }
                ]
            )
        )
        assert cli_main(["--trend", str(broken)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "below floor" in captured.err
