"""Metric instruments: semantics, bucketing, thread safety, exporters."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.export import to_json, to_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_reset(self):
        counter = Counter("c")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.dec(4)
        gauge.inc(1)
        assert gauge.value == 7


class TestHistogram:
    def test_bucketing_places_each_observation_once(self):
        histogram = Histogram("h", buckets=(1, 5, 10))
        for value in (0.5, 1.0, 1.1, 5.0, 7.0, 10.0, 11.0, 99.0):
            histogram.observe(value)
        # <=1: {0.5, 1.0}; <=5: {1.1, 5.0}; <=10: {7.0, 10.0}; +Inf: rest
        assert histogram.bucket_counts == (2, 2, 2, 2)
        assert histogram.cumulative_counts() == (2, 4, 6, 8)
        assert histogram.count == 8
        assert histogram.sum == pytest.approx(134.6)
        assert histogram.mean() == pytest.approx(134.6 / 8)

    def test_boundary_is_inclusive(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(1.0)
        assert histogram.bucket_counts == (1, 0)

    def test_empty_mean_is_none(self):
        assert Histogram("h", buckets=(1,)).mean() is None

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(5, 1))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.get("a") is registry.counter("a")
        assert registry.get("missing") is None

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.histogram("h", buckets=(1,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["a"] == {"kind": "counter", "value": 3.0}
        assert snap["h"]["count"] == 1
        registry.reset()
        assert registry.counter("a").value == 0
        assert registry.histogram("h", buckets=(1,)).count == 0

    def test_thread_safety_smoke(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        histogram = registry.histogram("lat", buckets=(0.5,))
        per_thread, n_threads = 1000, 8

        def work():
            for i in range(per_thread):
                counter.inc()
                histogram.observe(i % 2)  # alternates the two buckets

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = per_thread * n_threads
        assert counter.value == total
        assert histogram.count == total
        assert sum(histogram.bucket_counts) == total


class TestEnabledFlag:
    def test_off_by_default_and_context_restores(self):
        assert not obs_metrics.enabled()
        with obs_metrics.instrumented() as registry:
            assert obs_metrics.enabled()
            assert registry is obs_metrics.global_registry()
            with obs_metrics.instrumented():
                assert obs_metrics.enabled()
            # The inner exit must not switch off an outer block.
            assert obs_metrics.enabled()
        assert not obs_metrics.enabled()


class TestExporters:
    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("qsql.plancache.hits", "cache hits").inc(4)
        registry.gauge("pool.size").set(2)
        histogram = registry.histogram("qsql.latency", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(5.0)
        return registry

    def test_json_round_trips(self):
        data = json.loads(to_json(self.build()))
        assert data["qsql.plancache.hits"]["value"] == 4
        assert data["qsql.latency"]["counts"] == [1, 0, 1]

    def test_prometheus_text_format(self):
        text = to_prometheus(self.build())
        assert "# TYPE qsql_plancache_hits counter" in text
        assert "qsql_plancache_hits 4" in text
        assert "# HELP qsql_plancache_hits cache hits" in text
        assert "pool_size 2" in text
        assert 'qsql_latency_bucket{le="0.1"} 1' in text
        assert 'qsql_latency_bucket{le="+Inf"} 2' in text
        assert "qsql_latency_count 2" in text

    def test_prometheus_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""
