"""Property: stats collection never changes query results.

For randomly generated statements over random relations, execution with
a :class:`StatsCollector` attached — and with ambient metrics enabled —
must return exactly what the uninstrumented planner path, the
uninstrumented interpreter path, and the naive reference interpreter
return.  Observation must be free of observer effects.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.experiments.naive import naive_execute
from repro.obs import metrics as obs_metrics
from repro.obs.stats import StatsCollector
from repro.sql import clear_plan_cache, execute
from tests.sql.test_planner_equivalence import (
    canonical,
    plain_relations,
    statements,
    tagged_relations,
)


def assert_observation_free(sql, relation):
    clear_plan_cache()
    baseline = canonical(execute(sql, relation))
    naive = canonical(naive_execute(sql, relation))

    planned = StatsCollector()
    with obs_metrics.instrumented():
        cold = canonical(execute(sql, relation, stats=planned))
        warm = canonical(execute(sql, relation, stats=planned))
    interpreted = StatsCollector()
    unplanned = canonical(
        execute(sql, relation, planner=False, stats=interpreted)
    )

    assert cold == baseline
    assert warm == baseline  # the cached-plan path, collector attached
    assert unplanned == baseline
    assert naive == baseline

    assert planned.filled and planned.planned and planned.cache_hit
    assert interpreted.filled and not interpreted.planned
    n_rows = len(baseline[1])
    assert planned.rows == n_rows
    assert interpreted.rows == n_rows
    if interpreted.execution is not None:
        assert interpreted.execution.rows == n_rows


class TestObservationIsFree:
    @settings(max_examples=60, deadline=None)
    @given(plain_relations(), statements(quality=False))
    def test_plain(self, relation, sql):
        assert_observation_free(sql, relation)

    @settings(max_examples=60, deadline=None)
    @given(tagged_relations(), statements(quality=True))
    def test_tagged(self, relation, sql):
        assert_observation_free(sql, relation)
