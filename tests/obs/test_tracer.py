"""Span tracer: nesting, exception safety, rendering, thread isolation."""

from __future__ import annotations

import threading

import pytest

from repro.obs.trace import Tracer, global_tracer


def test_nesting_builds_parent_child_tree():
    tracer = Tracer()
    with tracer.span("parse", sql="SELECT 1"):
        with tracer.span("plan"):
            pass
        with tracer.span("compile"):
            pass
    (root,) = tracer.roots()
    assert root.name == "parse"
    assert root.attributes == {"sql": "SELECT 1"}
    assert [child.name for child in root.children] == ["plan", "compile"]
    assert root.children[0].children == []
    assert root.error is None
    assert root.seconds >= 0.0


def test_current_tracks_the_open_span():
    tracer = Tracer()
    assert tracer.current() is None
    with tracer.span("outer") as outer:
        assert tracer.current() is outer
        with tracer.span("inner") as inner:
            assert tracer.current() is inner
        assert tracer.current() is outer
    assert tracer.current() is None


def test_exception_closes_span_and_records_error():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                raise RuntimeError("boom")
    (root,) = tracer.roots()
    assert root.error == "RuntimeError"
    assert root.children[0].error == "RuntimeError"
    # The stack unwound: new spans start fresh roots, not orphans.
    with tracer.span("next"):
        pass
    assert [span.name for span in tracer.roots()] == ["outer", "next"]


def test_render_lines_indents_children():
    tracer = Tracer()
    with tracer.span("qsql.parse"):
        with tracer.span("qsql.plan", relation="t"):
            pass
    lines = tracer.render_lines()
    assert lines[0].startswith("qsql.parse:")
    assert lines[0].endswith("ms")
    assert lines[1].startswith("  qsql.plan:")
    assert "relation='t'" in lines[1]


def test_clear_discards_finished_spans():
    tracer = Tracer()
    with tracer.span("a"):
        pass
    tracer.clear()
    assert list(tracer.roots()) == []
    assert tracer.render_lines() == []


def test_threads_do_not_share_span_stacks():
    tracer = Tracer()
    barrier = threading.Barrier(2)
    errors = []

    def work(name):
        try:
            with tracer.span(name) as span:
                barrier.wait(timeout=5)
                # Each thread sees only its own open span.
                assert tracer.current() is span
                barrier.wait(timeout=5)
        except Exception as exc:  # pragma: no cover - diagnostic aid
            errors.append(exc)

    threads = [
        threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert sorted(span.name for span in tracer.roots()) == ["t0", "t1"]


def test_global_tracer_is_a_singleton():
    assert global_tracer() is global_tracer()
