"""Run the library's docstring examples as tests.

Every ``>>>`` example in a public docstring must stay executable —
documentation that silently rots is itself a data quality defect.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_module_names() -> list[str]:
    names = ["repro"]
    for module_info in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if module_info.name == "repro.__main__":
            continue
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_module_names())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
