"""Shared fixtures for the test suite."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation


@pytest.fixture
def customer_schema():
    """The paper's customer relation schema (Tables 1-2)."""
    return schema(
        "customer",
        [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
        key=["co_name"],
    )


@pytest.fixture
def customer_relation(customer_schema):
    """The Table 1 rows."""
    return Relation.from_tuples(
        customer_schema,
        [("Fruit Co", "12 Jay St", 4004), ("Nut Co", "62 Lois Av", 700)],
    )


@pytest.fixture
def customer_database(customer_schema):
    """A database holding the Table 1 rows."""
    db = Database("corp")
    db.create_relation(customer_schema)
    db.insert(
        "customer",
        {"co_name": "Fruit Co", "address": "12 Jay St", "employees": 4004},
    )
    db.insert(
        "customer",
        {"co_name": "Nut Co", "address": "62 Lois Av", "employees": 700},
    )
    return db


@pytest.fixture
def customer_tag_schema():
    """(creation_time, source) allowed on address and employees."""
    return TagSchema(
        indicators=[
            IndicatorDefinition("creation_time", "DATE"),
            IndicatorDefinition("source", "STR"),
        ],
        allowed={
            "address": ["creation_time", "source"],
            "employees": ["creation_time", "source"],
        },
    )


@pytest.fixture
def tagged_customers(customer_schema, customer_tag_schema):
    """The Table 2 rows, fully tagged."""
    relation = TaggedRelation(customer_schema, customer_tag_schema)
    relation.insert(
        {
            "co_name": "Fruit Co",
            "address": QualityCell(
                "12 Jay St",
                [
                    IndicatorValue("creation_time", dt.date(1991, 1, 2)),
                    IndicatorValue("source", "sales"),
                ],
            ),
            "employees": QualityCell(
                4004,
                [
                    IndicatorValue("creation_time", dt.date(1991, 10, 3)),
                    IndicatorValue("source", "Nexis"),
                ],
            ),
        }
    )
    relation.insert(
        {
            "co_name": "Nut Co",
            "address": QualityCell(
                "62 Lois Av",
                [
                    IndicatorValue("creation_time", dt.date(1991, 10, 24)),
                    IndicatorValue("source", "acct'g"),
                ],
            ),
            "employees": QualityCell(
                700,
                [
                    IndicatorValue("creation_time", dt.date(1991, 10, 9)),
                    IndicatorValue("source", "estimate"),
                ],
            ),
        }
    )
    return relation


@pytest.fixture
def trading_er():
    """The Figure 3 trading ER schema."""
    from repro.experiments.scenarios import trading_er_schema

    return trading_er_schema()
