"""Unit tests for QSQL execution."""

import datetime as dt

import pytest

from repro.relational.relation import Relation
from repro.sql import SQLError, execute
from repro.tagging.relation import TaggedRelation


class TestPlainExecution:
    def test_select_star(self, customer_relation):
        result = execute("SELECT * FROM customer", customer_relation)
        assert len(result) == 2
        assert result.schema.column_names == ("co_name", "address", "employees")

    def test_projection(self, customer_relation):
        result = execute("SELECT co_name FROM customer", customer_relation)
        assert result.schema.column_names == ("co_name",)

    def test_where(self, customer_relation):
        result = execute(
            "SELECT co_name FROM customer WHERE employees > 1000",
            customer_relation,
        )
        assert result.to_dicts() == [{"co_name": "Fruit Co"}]

    def test_string_comparison(self, customer_relation):
        result = execute(
            "SELECT * FROM customer WHERE address = '62 Lois Av'",
            customer_relation,
        )
        assert len(result) == 1

    def test_in_and_not_in(self, customer_relation):
        assert (
            len(
                execute(
                    "SELECT * FROM customer WHERE employees IN (700, 999)",
                    customer_relation,
                )
            )
            == 1
        )
        assert (
            len(
                execute(
                    "SELECT * FROM customer WHERE employees NOT IN (700)",
                    customer_relation,
                )
            )
            == 1
        )

    def test_order_and_limit(self, customer_relation):
        result = execute(
            "SELECT co_name FROM customer ORDER BY employees DESC LIMIT 1",
            customer_relation,
        )
        assert result.to_dicts() == [{"co_name": "Fruit Co"}]

    def test_boolean_logic(self, customer_relation):
        result = execute(
            "SELECT * FROM customer WHERE employees > 100 AND "
            "(co_name = 'Nut Co' OR co_name = 'Fruit Co')",
            customer_relation,
        )
        assert len(result) == 2

    def test_not(self, customer_relation):
        result = execute(
            "SELECT * FROM customer WHERE NOT employees > 1000",
            customer_relation,
        )
        assert len(result) == 1

    def test_null_semantics(self):
        from repro.relational.schema import schema

        rel = Relation.from_dicts(
            schema("t", [("a", "INT")]), [{"a": 1}, {"a": None}]
        )
        # Comparisons with NULL are never true.
        assert len(execute("SELECT * FROM t WHERE a > 0", rel)) == 1
        assert len(execute("SELECT * FROM t WHERE a IS NULL", rel)) == 1
        assert len(execute("SELECT * FROM t WHERE a IS NOT NULL", rel)) == 1

    def test_distinct(self):
        from repro.relational.schema import schema

        rel = Relation.from_dicts(
            schema("t", [("a", "INT")]), [{"a": 1}, {"a": 1}, {"a": 2}]
        )
        assert len(execute("SELECT DISTINCT a FROM t", rel)) == 2

    def test_unknown_column(self, customer_relation):
        with pytest.raises(Exception):
            execute("SELECT ghost FROM customer", customer_relation)

    def test_from_mismatch(self, customer_relation):
        with pytest.raises(SQLError):
            execute("SELECT * FROM other", customer_relation)


class TestQualityExecution:
    def test_quality_filter(self, tagged_customers):
        result = execute(
            "SELECT co_name FROM customer WHERE "
            "QUALITY(employees.source) <> 'estimate'",
            tagged_customers,
        )
        assert [row.value("co_name") for row in result] == ["Fruit Co"]

    def test_quality_date_comparison(self, tagged_customers):
        result = execute(
            "SELECT co_name FROM customer WHERE "
            "QUALITY(address.creation_time) >= DATE '1991-06-01'",
            tagged_customers,
        )
        assert [row.value("co_name") for row in result] == ["Nut Co"]

    def test_escaped_source_literal(self, tagged_customers):
        result = execute(
            "SELECT * FROM customer WHERE QUALITY(address.source) = 'acct''g'",
            tagged_customers,
        )
        assert len(result) == 1

    def test_missing_tag_is_null(self, tagged_customers):
        # co_name cells carry no tags: QUALITY(...) IS NULL holds.
        result = execute(
            "SELECT * FROM customer WHERE QUALITY(co_name.source) IS NULL",
            tagged_customers,
        )
        assert len(result) == 2

    def test_order_by_quality(self, tagged_customers):
        result = execute(
            "SELECT co_name FROM customer ORDER BY "
            "QUALITY(address.creation_time) DESC",
            tagged_customers,
        )
        assert [row.value("co_name") for row in result] == [
            "Nut Co",
            "Fruit Co",
        ]

    def test_result_keeps_tags(self, tagged_customers):
        result = execute(
            "SELECT address FROM customer WHERE employees = 700",
            tagged_customers,
        )
        assert isinstance(result, TaggedRelation)
        assert result.rows[0]["address"].tag_value("source") == "acct'g"

    def test_quality_on_plain_rejected(self, customer_relation):
        with pytest.raises(SQLError):
            execute(
                "SELECT * FROM customer WHERE QUALITY(address.source) = 'x'",
                customer_relation,
            )

    def test_quality_order_on_plain_rejected(self, customer_relation):
        with pytest.raises(SQLError):
            execute(
                "SELECT * FROM customer ORDER BY QUALITY(address.source)",
                customer_relation,
            )

    def test_mixed_value_and_quality(self, tagged_customers):
        result = execute(
            "SELECT co_name FROM customer WHERE employees > 100 AND "
            "QUALITY(employees.source) IN ('Nexis', 'acct''g')",
            tagged_customers,
        )
        assert len(result) == 1


class TestDatabaseSources:
    def test_execute_against_database(self, customer_database):
        result = execute(
            "SELECT co_name FROM customer WHERE employees < 1000",
            customer_database,
        )
        assert result.to_dicts() == [{"co_name": "Nut Co"}]

    def test_execute_against_mapping(self, tagged_customers):
        result = execute(
            "SELECT * FROM customer LIMIT 1", {"customer": tagged_customers}
        )
        assert len(result) == 1

    def test_unknown_relation_in_mapping(self, tagged_customers):
        with pytest.raises(SQLError):
            execute("SELECT * FROM ghost", {"customer": tagged_customers})

    def test_unsupported_source(self):
        with pytest.raises(SQLError):
            execute("SELECT * FROM t", 42)


class TestMultiKeyOrdering:
    def test_mixed_directions(self):
        from repro.relational.schema import schema

        rel = Relation.from_tuples(
            schema("t", [("g", "STR"), ("n", "INT")]),
            [("a", 1), ("a", 2), ("b", 1), ("b", 2)],
        )
        result = execute("SELECT * FROM t ORDER BY g DESC, n ASC", rel)
        assert [(r["g"], r["n"]) for r in result] == [
            ("b", 1),
            ("b", 2),
            ("a", 1),
            ("a", 2),
        ]
