"""Planner equivalence properties: planned ≡ unplanned ≡ naive.

Three independent QSQL implementations must agree on every statement:

- ``execute(sql, rel)`` — the planner path (logical plan → optimizer
  rewrites → compiled physical plan, with plan caching);
- ``execute(sql, rel, planner=False)`` — the direct interpretation
  path (one compiled closure per clause, no plan);
- ``naive_execute(sql, rel)`` — the AST-walking per-row reference
  interpreter in :mod:`repro.experiments.naive`.

Statements are generated randomly over plain, tagged, and
polygen-derived sources, so values, tags, *and* polygen source
provenance are all checked for equality.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.naive import naive_execute
from repro.polygen import algebra as polygen_algebra
from repro.polygen.bridge import polygen_to_tagged
from repro.polygen.model import PolygenRelation
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.sql import clear_plan_cache, execute
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import (
    IndicatorDefinition,
    IndicatorValue,
    TagSchema,
)
from repro.tagging.relation import TaggedRelation

SCHEMA = RelationSchema(
    "t", [Column("a", "INT"), Column("b", "INT"), Column("c", "STR")]
)
TAGS = TagSchema(
    [IndicatorDefinition("source", "STR"), IndicatorDefinition("age", "INT")],
    allowed={"a": ["source", "age"], "c": ["source"]},
)

INT_VALUES = st.one_of(st.none(), st.integers(0, 5))
STR_VALUES = st.one_of(st.none(), st.sampled_from(["x", "y", "z"]))
SOURCES = st.one_of(st.none(), st.sampled_from(["s1", "s2"]))
COMPARE_OPS = ["=", "<>", "!=", "<", "<=", ">", ">="]
QUALITY_REFS = ["QUALITY(a.source)", "QUALITY(a.age)", "QUALITY(c.source)"]


@st.composite
def plain_relations(draw):
    rows = draw(
        st.lists(st.tuples(INT_VALUES, INT_VALUES, STR_VALUES), max_size=12)
    )
    return Relation.from_tuples(SCHEMA, rows)


@st.composite
def tagged_relations(draw):
    rows = draw(
        st.lists(
            st.tuples(
                INT_VALUES,
                INT_VALUES,
                STR_VALUES,
                SOURCES,  # a.source
                st.one_of(st.none(), st.integers(0, 3)),  # a.age
                SOURCES,  # c.source
            ),
            max_size=12,
        )
    )
    relation = TaggedRelation(SCHEMA, TAGS)
    for a, b, c, a_source, a_age, c_source in rows:
        a_tags = []
        if a_source is not None:
            a_tags.append(IndicatorValue("source", a_source))
        if a_age is not None:
            a_tags.append(IndicatorValue("age", a_age))
        c_tags = []
        if c_source is not None:
            c_tags.append(IndicatorValue("source", c_source))
        relation.insert(
            {
                "a": QualityCell(a, a_tags),
                "b": QualityCell(b),
                "c": QualityCell(c, c_tags),
            }
        )
    return relation


@st.composite
def operands(draw, quality):
    kinds = ["col", "col", "lit"] + (["qual"] if quality else [])
    kind = draw(st.sampled_from(kinds))
    if kind == "col":
        return draw(st.sampled_from(["a", "b", "c"]))
    if kind == "qual":
        return draw(st.sampled_from(QUALITY_REFS))
    return draw(
        st.sampled_from(["0", "1", "3", "5", "'x'", "'s1'", "NULL", "TRUE"])
    )


@st.composite
def predicates(draw, quality, depth=2):
    if depth > 0 and draw(st.integers(0, 2)) == 0:
        op = draw(st.sampled_from(["AND", "OR"]))
        left = draw(predicates(quality=quality, depth=depth - 1))
        right = draw(predicates(quality=quality, depth=depth - 1))
        return f"({left} {op} {right})"
    if depth > 0 and draw(st.integers(0, 4)) == 0:
        inner = draw(predicates(quality=quality, depth=depth - 1))
        return f"NOT ({inner})"
    kind = draw(st.sampled_from(["cmp", "cmp", "in", "null"]))
    if kind == "cmp":
        left = draw(operands(quality=quality))
        right = draw(operands(quality=quality))
        op = draw(st.sampled_from(COMPARE_OPS))
        return f"{left} {op} {right}"
    targets = ["a", "b", "c"] + (QUALITY_REFS if quality else [])
    target = draw(st.sampled_from(targets))
    negated = "NOT " if draw(st.booleans()) else ""
    if kind == "in":
        options = draw(
            st.lists(
                st.sampled_from(["0", "1", "2", "'x'", "'s1'"]),
                min_size=1,
                max_size=3,
            )
        )
        return f"{target} {negated}IN ({', '.join(options)})"
    return f"{target} IS {negated}NULL"


@st.composite
def order_clauses(draw, keys):
    chosen = draw(st.lists(st.sampled_from(keys), max_size=2, unique=True))
    if not chosen:
        return ""
    rendered = [
        f"{key} DESC" if draw(st.booleans()) else key for key in chosen
    ]
    return " ORDER BY " + ", ".join(rendered)


@st.composite
def statements(draw, quality):
    where = draw(st.one_of(st.none(), predicates(quality=quality)))
    where_clause = f" WHERE {where}" if where else ""
    limit = draw(st.one_of(st.none(), st.integers(0, 8)))
    limit_clause = f" LIMIT {limit}" if limit is not None else ""

    if draw(st.integers(0, 3)) == 0:  # aggregate statement
        group = draw(st.sampled_from([(), ("a",), ("c",), ("a", "c")]))
        pool = [
            "COUNT(*) AS n",
            "SUM(a) AS sa",
            "AVG(b) AS ab",
            "MIN(c) AS mc",
            "MAX(a) AS ma",
        ]
        if quality:
            pool += ["AVG(QUALITY(a.age)) AS qa", "MAX(QUALITY(a.source)) AS qs"]
        aggregates = draw(
            st.lists(st.sampled_from(pool), min_size=1, max_size=3, unique=True)
        )
        select = ", ".join(list(group) + aggregates)
        group_clause = f" GROUP BY {', '.join(group)}" if group else ""
        order_keys = list(group) + [a.split(" AS ")[1] for a in aggregates]
        order_clause = draw(order_clauses(order_keys))
        return (
            f"SELECT {select} FROM t{where_clause}{group_clause}"
            f"{order_clause}{limit_clause}"
        )

    distinct = "DISTINCT " if draw(st.booleans()) else ""
    kind = draw(st.sampled_from(["star", "cols"] + (["qual"] if quality else [])))
    if kind == "star":
        select = "*"
    elif kind == "cols":
        columns = draw(
            st.lists(
                st.sampled_from(["a", "b", "c"]),
                min_size=1,
                max_size=3,
                unique=True,
            )
        )
        rendered = []
        for position, column in enumerate(columns):
            if draw(st.booleans()):
                rendered.append(f"{column} AS r{position}")
            else:
                rendered.append(column)
        select = ", ".join(rendered)
    else:
        select = "c, QUALITY(a.age) AS qa, QUALITY(a.source) AS qs"
    order_keys = ["a", "b", "c"] + (QUALITY_REFS if quality else [])
    order_clause = draw(order_clauses(order_keys))
    return (
        f"SELECT {distinct}{select} FROM t{where_clause}"
        f"{order_clause}{limit_clause}"
    )


def canonical(result):
    if isinstance(result, TaggedRelation):
        return (result.schema.column_names, [row.cells for row in result])
    return (result.schema.column_names, [row.values_tuple() for row in result])


def assert_three_way(sql, relation):
    clear_plan_cache()
    planned_cold = canonical(execute(sql, relation))
    planned_cached = canonical(execute(sql, relation))  # plan-cache hit
    unplanned = canonical(execute(sql, relation, planner=False))
    naive = canonical(naive_execute(sql, relation))
    assert planned_cold == planned_cached
    assert planned_cold == unplanned
    assert planned_cold == naive


class TestThreeWayEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(plain_relations(), statements(quality=False))
    def test_plain(self, relation, sql):
        assert_three_way(sql, relation)

    @settings(max_examples=120, deadline=None)
    @given(tagged_relations(), statements(quality=True))
    def test_tagged(self, relation, sql):
        assert_three_way(sql, relation)


# -- polygen-derived sources --------------------------------------------------

LEFT_SCHEMA = RelationSchema("l", [Column("k", "INT"), Column("lval", "STR")])
RIGHT_SCHEMA = RelationSchema("r", [Column("rk", "INT"), Column("rval", "INT")])


@st.composite
def federated_tagged(draw):
    """Join two single-source polygen relations and bridge to tags.

    The resulting ``source`` / ``intermediate_sources`` tags encode the
    polygen provenance, so comparing full cells across the three
    engines checks that polygen sources survive identically.
    """
    left_rows = draw(
        st.lists(st.tuples(st.integers(0, 3), STR_VALUES), max_size=8)
    )
    right_rows = draw(
        st.lists(st.tuples(st.integers(0, 3), INT_VALUES), max_size=8)
    )
    left = PolygenRelation.from_relation(
        Relation.from_tuples(LEFT_SCHEMA, left_rows), "db1"
    )
    right = PolygenRelation.from_relation(
        Relation.from_tuples(RIGHT_SCHEMA, right_rows), "db2"
    )
    joined = polygen_algebra.equi_join(left, right, [("k", "rk")], "fed")
    return polygen_to_tagged(joined)


class TestPolygenEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        federated_tagged(),
        st.sampled_from(
            [
                "SELECT * FROM fed",
                "SELECT * FROM fed WHERE QUALITY(k.source) = 'db1'",
                "SELECT k, lval FROM fed WHERE QUALITY(lval.source) <> 'db2' "
                "ORDER BY k DESC, lval",
                "SELECT DISTINCT k, rval FROM fed "
                "WHERE QUALITY(k.intermediate_sources) IS NOT NULL LIMIT 5",
                "SELECT k, COUNT(*) AS n, MAX(QUALITY(rval.source)) AS src "
                "FROM fed GROUP BY k ORDER BY n DESC, k",
                "SELECT lval, QUALITY(k.source) AS origin FROM fed "
                "WHERE rval >= 2 ORDER BY QUALITY(rval.source), k LIMIT 4",
            ]
        ),
    )
    def test_federation_three_way(self, relation, sql):
        assert_three_way(sql, relation)
