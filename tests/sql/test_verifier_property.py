"""Property test: analyzer-accepted statements yield verifier-clean plans.

The plan verifier's core contract: for every statement the semantic
analyzer accepts, the optimizer's output passes static verification —
under every flag combination the engine supports (planner on/off,
columnar on/off, cold plan vs. cached plan), with the
``REPRO_VERIFY_PLANS`` runtime hooks armed throughout.  The statement
strategies are shared with :mod:`tests.analysis.test_property` so the
corpus spans projections, quality predicates, aggregates, ordering,
and limits, valid and invalid alike.
"""

import pytest
from hypothesis import given, settings

from repro.analysis import analyze_query, verify_plan
from repro.sql import optimizer as optimizer_mod
from repro.sql.executor import execute
from repro.sql.optimizer import PlanContext
from repro.sql.parser import parse
from repro.sql.plancache import clear_plan_cache, plan_statement
from tests.analysis.test_property import RELATION, select_statements

#: Plain (untagged) twin of the property fixture: exercises the
#: columnar access path, which only plans over plain relations.
PLAIN = RELATION.values_relation()

SOURCES = {"tagged": RELATION, "plain": PLAIN}


@pytest.fixture(scope="module", autouse=True)
def verified_mode():
    """Arm runtime verification and make the tiny fixtures columnar-
    eligible for the whole module."""
    import os

    old_env = os.environ.get("REPRO_VERIFY_PLANS")
    old_min = optimizer_mod.COLUMNAR_MIN_ROWS
    os.environ["REPRO_VERIFY_PLANS"] = "1"
    optimizer_mod.COLUMNAR_MIN_ROWS = 0
    clear_plan_cache()
    yield
    optimizer_mod.COLUMNAR_MIN_ROWS = old_min
    if old_env is None:
        os.environ.pop("REPRO_VERIFY_PLANS", None)
    else:
        os.environ["REPRO_VERIFY_PLANS"] = old_env
    clear_plan_cache()


@settings(max_examples=60, deadline=None)
@given(sql=select_statements())
def test_accepted_statements_plan_verifier_clean(sql):
    for name, source in SOURCES.items():
        if analyze_query(sql, source).has_errors:
            continue  # rejected statements never reach the planner
        for columnar in (False, True):
            plan, relation, _ = plan_statement(
                parse(sql), source, columnar=columnar
            )
            context = PlanContext.from_relations({"t": relation})
            diagnostics = verify_plan(plan, context, sql=sql)
            assert not diagnostics.has_errors, (
                f"{name}/columnar={columnar}: {sql!r} planned to an "
                f"unverifiable tree:\n{diagnostics.render()}"
            )


@settings(max_examples=40, deadline=None)
@given(sql=select_statements())
def test_execute_under_verified_mode(sql):
    """Cold and cached execution, both paths, with verification and the
    columnar sanitizer armed: accepted statements run without raising
    and both engine paths agree."""
    if analyze_query(sql, RELATION).has_errors:
        return
    reference = execute(sql, RELATION, planner=False)
    cold = execute(sql, RELATION, planner=True)
    cached = execute(sql, RELATION, planner=True)
    assert len(cold) == len(cached)
    assert len(reference) == len(cold)
