"""Partition pruning: bucket derivation, plan shape, and equivalence.

Partitioning is a physical layout decision — it must never change what
a statement returns.  Three layers pin that down here:

- unit tests for :func:`derive_partition_buckets`, the single
  derivation shared by the optimizer rewrite and the DQ410 verifier;
- EXPLAIN shape tests that the ``prune_partitions`` rewrite bakes a
  ``partitions=k/N`` restriction into the scan while keeping the
  governing Filter in place;
- a Hypothesis property that a partitioned relation agrees with its
  flat twin and the naive reference across planner × columnar ×
  cold/warm-cache variations, including mutation-then-requery after a
  ``repartition()`` invalidates the cached plan.

Pruned scans feed surviving shards in bucket order, which can permute
ties relative to the flat canonical row list, so the property compares
order-insensitively (sorted canonical rows) and omits LIMIT — a tie
under LIMIT legitimately admits several row sets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.naive import naive_execute
from repro.relational import hash_partitions, range_partitions
from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.sql import clear_plan_cache, execute
from repro.sql import optimizer
from repro.sql.nodes import (
    BoolOp,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
)
from repro.sql.optimizer import derive_partition_buckets

from tests.sql.test_planner_equivalence import (
    canonical,
    plain_relations,
    predicates,
)


def col(name):
    return ColumnRef(name)


def lit(value):
    return Literal(value)


HASH_C = hash_partitions("c", 4)
RANGE_A = range_partitions("a", [2, 4])  # buckets: (<2), [2,4), (>=4)


class TestDeriveBuckets:
    def test_equality_pins_one_bucket(self):
        buckets = derive_partition_buckets(
            HASH_C, Comparison("=", col("c"), lit("x"))
        )
        assert buckets == frozenset({HASH_C.bucket_of("x")})

    def test_equality_is_symmetric(self):
        assert derive_partition_buckets(
            HASH_C, Comparison("=", lit("x"), col("c"))
        ) == frozenset({HASH_C.bucket_of("x")})

    def test_equality_with_null_matches_nothing(self):
        assert derive_partition_buckets(
            HASH_C, Comparison("=", col("c"), lit(None))
        ) == frozenset()

    def test_in_list_unions_options(self):
        buckets = derive_partition_buckets(
            HASH_C, InList(col("c"), ("x", "y", None))
        )
        assert buckets == frozenset(
            {HASH_C.bucket_of("x"), HASH_C.bucket_of("y")}
        )

    def test_not_in_derives_nothing(self):
        assert (
            derive_partition_buckets(
                HASH_C, InList(col("c"), ("x",), negated=True)
            )
            is None
        )

    def test_is_null_pins_the_null_bucket(self):
        assert derive_partition_buckets(
            HASH_C, IsNull(col("c"))
        ) == frozenset({HASH_C.bucket_of(None)})
        assert (
            derive_partition_buckets(HASH_C, IsNull(col("c"), negated=True))
            is None
        )

    def test_range_layout_prunes_inequalities(self):
        assert derive_partition_buckets(
            RANGE_A, Comparison("<", col("a"), lit(1))
        ) == frozenset({0})
        assert derive_partition_buckets(
            RANGE_A, Comparison(">=", col("a"), lit(4))
        ) == frozenset({2})
        assert derive_partition_buckets(
            RANGE_A, Comparison(">", col("a"), lit(2))
        ) == frozenset({1, 2})

    def test_hash_layout_ignores_inequalities(self):
        # Hash buckets carry no value order: a < comparison says
        # nothing about which buckets can match.
        assert (
            derive_partition_buckets(
                HASH_C, Comparison("<", col("c"), lit("x"))
            )
            is None
        )

    def test_and_intersects_or_unions(self):
        x_eq = Comparison("=", col("c"), lit("x"))
        y_eq = Comparison("=", col("c"), lit("y"))
        both = derive_partition_buckets(HASH_C, BoolOp("AND", x_eq, y_eq))
        assert both == frozenset(
            {HASH_C.bucket_of("x")} & {HASH_C.bucket_of("y")}
        )
        either = derive_partition_buckets(HASH_C, BoolOp("OR", x_eq, y_eq))
        assert either == frozenset(
            {HASH_C.bucket_of("x"), HASH_C.bucket_of("y")}
        )

    def test_and_keeps_derivable_side(self):
        pred = BoolOp(
            "AND",
            Comparison("=", col("c"), lit("x")),
            Comparison(">", col("b"), lit(1)),
        )
        assert derive_partition_buckets(HASH_C, pred) == frozenset(
            {HASH_C.bucket_of("x")}
        )

    def test_underivable_or_side_poisons_the_union(self):
        pred = BoolOp(
            "OR",
            Comparison("=", col("c"), lit("x")),
            Comparison(">", col("b"), lit(1)),
        )
        assert derive_partition_buckets(HASH_C, pred) is None

    def test_non_key_predicates_derive_nothing(self):
        assert (
            derive_partition_buckets(
                HASH_C, Comparison("=", col("b"), lit(1))
            )
            is None
        )
        assert (
            derive_partition_buckets(HASH_C, Comparison("=", col("c"), col("b")))
            is None
        )

    def test_boolean_literals(self):
        assert derive_partition_buckets(HASH_C, lit(True)) is None
        assert derive_partition_buckets(HASH_C, lit(False)) == frozenset()


# -- plan shape ---------------------------------------------------------------

EVENTS = RelationSchema(
    "events",
    [Column("id", "INT"), Column("region", "STR"), Column("n", "INT")],
)


def make_database(buckets=8):
    database = Database("pruning")
    relation = database.create_relation(
        EVENTS,
        enforce_key=False,
        partition_by=hash_partitions("region", buckets),
    )
    for i in range(60):
        relation.insert(
            {"id": i, "region": ["e", "w", "n", "s"][i % 4], "n": i % 7}
        )
    return database, relation


def explain(sql, source):
    clear_plan_cache()
    return "\n".join(row["plan"] for row in execute(f"EXPLAIN {sql}", source))


class TestPlanShape:
    def test_equality_scan_is_pruned(self):
        database, relation = make_database()
        plan = explain("SELECT id FROM events WHERE region = 'e'", database)
        assert "partitions=1/8" in plan
        # the Filter stays above the pruned scan: pruning only shrinks
        # the rows fed into it, it never replaces the predicate.
        assert "Filter" in plan

    def test_in_list_keeps_every_option_bucket(self):
        database, relation = make_database()
        spec = relation.partition_spec
        survivors = {spec.bucket_of("e"), spec.bucket_of("w")}
        plan = explain(
            "SELECT id FROM events WHERE region IN ('e', 'w')", database
        )
        assert f"partitions={len(survivors)}/8" in plan

    def test_contradiction_prunes_to_zero(self):
        database, _ = make_database()
        # 'e' and 's' hash into different buckets, so the AND of the
        # two equalities intersects to the empty bucket set.
        sql = (
            "SELECT id FROM events WHERE region = 'e' AND region = 's'"
        )
        assert "partitions=0/8" in explain(sql, database)
        clear_plan_cache()
        assert len(execute(sql, database)) == 0

    def test_non_key_predicate_scans_everything(self):
        database, _ = make_database()
        plan = explain("SELECT id FROM events WHERE n = 3", database)
        assert "partitions=" not in plan

    def test_flat_relation_never_prunes(self):
        database = Database("flat")
        relation = database.create_relation(EVENTS, enforce_key=False)
        relation.insert({"id": 1, "region": "e", "n": 0})
        plan = explain("SELECT id FROM events WHERE region = 'e'", database)
        assert "partitions=" not in plan

    def test_explain_analyze_reports_partition_rows(self):
        database, relation = make_database()
        clear_plan_cache()
        rendered = "\n".join(
            row["plan"]
            for row in execute(
                "EXPLAIN ANALYZE SELECT id FROM events WHERE region = 'e'",
                database,
                columnar=False,
            )
        )
        assert "partitions=1/8" in rendered
        assert "partition_rows=" in rendered


class TestRepartitionInvalidation:
    SQL = "SELECT id FROM events WHERE region = 'e'"

    def test_cached_plan_survives_relayout(self):
        database, relation = make_database(buckets=8)
        clear_plan_cache()
        baseline = sorted(r["id"] for r in execute(self.SQL, database))
        # The cached plan pins the 8-bucket layout; repartitioning must
        # miss it and replan against the 4-bucket layout.
        relation.repartition(hash_partitions("region", 4))
        assert sorted(r["id"] for r in execute(self.SQL, database)) == baseline
        assert "partitions=1/4" in explain(self.SQL, database)

    def test_mutation_then_requery_after_repartition(self):
        database, relation = make_database(buckets=8)
        clear_plan_cache()
        before = len(execute(self.SQL, database))
        relation.repartition(range_partitions("n", [3]))
        relation.insert({"id": 999, "region": "e", "n": 1})
        result = execute(self.SQL, database)
        assert len(result) == before + 1
        assert 999 in {r["id"] for r in result}

    def test_dropping_the_layout_falls_back_to_flat_scans(self):
        database, relation = make_database(buckets=8)
        clear_plan_cache()
        baseline = sorted(r["id"] for r in execute(self.SQL, database))
        relation.repartition(None)
        assert sorted(r["id"] for r in execute(self.SQL, database)) == baseline
        assert "partitions=" not in explain(self.SQL, database)


# -- equivalence property -----------------------------------------------------

LAYOUTS = [
    hash_partitions("c", 4),
    hash_partitions("c", 2),
    hash_partitions("a", 4),
    range_partitions("a", [2, 4]),
]

#: Conjuncts that pin the partition key, so the rewrite actually fires
#: (a purely random predicate rarely restricts the key column).
KEY_PINS = [
    "c = 'x'",
    "c = 'y'",
    "c IN ('x', 'z')",
    "c IS NULL",
    "a = 1",
    "a IN (0, 3)",
    "a < 3",
    "a >= 2",
]


@st.composite
def pruning_statements(draw):
    """SELECTs whose WHERE usually restricts a partition key.

    No LIMIT: a pruned scan feeds shards in bucket order, so ties
    under LIMIT could legitimately pick different rows than the flat
    twin.  ORDER BY is harmless — comparison is order-insensitive.
    """
    pin = draw(st.one_of(st.none(), st.sampled_from(KEY_PINS)))
    extra = draw(st.one_of(st.none(), predicates(quality=False)))
    conjuncts = [part for part in (pin, extra) if part]
    where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
    if draw(st.booleans()):
        select = draw(
            st.sampled_from(
                ["*", "a", "a, c", "DISTINCT c", "b, a, c", "DISTINCT a, b"]
            )
        )
    else:
        select = draw(
            st.sampled_from(
                [
                    "COUNT(*) AS n",
                    "c, COUNT(*) AS n",
                    "SUM(a) AS sa, MIN(b) AS mb",
                ]
            )
        )
        if select.startswith("c,"):
            return f"SELECT {select} FROM t{where} GROUP BY c"
    return f"SELECT {select} FROM t{where}"


def sorted_canonical(result):
    columns, rows = canonical(result)

    def cell_key(cell):
        return (cell is None, cell.__class__.__name__, cell or 0)

    return columns, sorted(rows, key=lambda row: tuple(map(cell_key, row)))


@pytest.fixture(autouse=True)
def columnar_everywhere(monkeypatch):
    # Force even tiny generated relations onto the columnar path, as
    # in test_columnar_equivalence — otherwise costing would route all
    # of them back to rows and the columnar × pruning product would go
    # untested.
    monkeypatch.setattr(optimizer, "COLUMNAR_MIN_ROWS", 0)
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestPartitionEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(
        plain_relations(),
        st.sampled_from(LAYOUTS),
        pruning_statements(),
    )
    def test_partitioned_agrees_with_flat_and_naive(
        self, relation, layout, sql
    ):
        partitioned = relation.copy()
        partitioned.repartition(layout)
        clear_plan_cache()
        cold = sorted_canonical(execute(sql, partitioned))
        cached = sorted_canonical(execute(sql, partitioned))
        row_path = sorted_canonical(
            execute(sql, partitioned, columnar=False)
        )
        unplanned = sorted_canonical(
            execute(sql, partitioned, planner=False)
        )
        flat = sorted_canonical(execute(sql, relation))
        naive = sorted_canonical(naive_execute(sql, relation))
        assert cold == cached
        assert cold == row_path
        assert cold == unplanned
        assert cold == flat
        assert cold == naive

    @settings(max_examples=40, deadline=None)
    @given(plain_relations(), pruning_statements())
    def test_repartition_then_requery_on_a_cached_plan(self, relation, sql):
        partitioned = relation.copy()
        partitioned.repartition(hash_partitions("c", 4))
        clear_plan_cache()
        first = sorted_canonical(execute(sql, partitioned))
        partitioned.repartition(range_partitions("a", [3]))
        after_relayout = sorted_canonical(execute(sql, partitioned))
        assert first == after_relayout
        partitioned.insert({"a": 1, "b": 1, "c": "x"})
        requeried = sorted_canonical(execute(sql, partitioned))
        relation.insert({"a": 1, "b": 1, "c": "x"})
        assert requeried == sorted_canonical(execute(sql, relation))
