"""Plan-cache behavior: hits, invalidation, and mutation safety."""

from __future__ import annotations

import pytest

from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.sql.plancache import PlanCache, execute_planned
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import (
    IndicatorDefinition,
    IndicatorValue,
    TagSchema,
)
from repro.tagging.relation import TaggedRelation


def make_relation(name="t", rows=((1, "x"), (2, "y"), (3, "x"))):
    schema = RelationSchema(name, [Column("a", "INT"), Column("b", "STR")])
    return Relation.from_tuples(schema, rows)


def values(result):
    return [row.values_tuple() for row in result]


class TestHitsAndMisses:
    def test_repeat_statement_hits(self):
        cache = PlanCache()
        relation = make_relation()
        sql = "SELECT a FROM t WHERE b = 'x'"
        first = execute_planned(sql, relation, cache=cache)
        second = execute_planned(sql, relation, cache=cache)
        assert values(first) == values(second) == [(1,), (3,)]
        stats = cache.stats()
        assert stats == {"statements": 1, "hits": 1, "misses": 1}

    def test_different_statements_cached_separately(self):
        cache = PlanCache()
        relation = make_relation()
        execute_planned("SELECT a FROM t", relation, cache=cache)
        execute_planned("SELECT b FROM t", relation, cache=cache)
        assert cache.stats()["statements"] == 2

    def test_explain_is_not_cached(self):
        cache = PlanCache()
        relation = make_relation()
        execute_planned("EXPLAIN SELECT a FROM t", relation, cache=cache)
        assert cache.stats()["statements"] == 0

    def test_lru_eviction_bounds_size(self):
        cache = PlanCache(max_statements=3)
        relation = make_relation()
        for limit in range(5):
            execute_planned(
                f"SELECT a FROM t LIMIT {limit}", relation, cache=cache
            )
        assert cache.stats()["statements"] == 3


class TestInvalidation:
    def test_schema_identity_mismatch_misses(self):
        cache = PlanCache()
        sql = "SELECT a FROM t"
        execute_planned(sql, make_relation(), cache=cache)
        # A structurally identical but *recreated* relation must miss:
        # the cached plan was compiled against different schema objects.
        other = make_relation(rows=((9, "z"),))
        result = execute_planned(sql, other, cache=cache)
        assert values(result) == [(9,)]
        assert cache.hits == 0 and cache.misses == 2

    def test_same_schema_different_rows_hits(self):
        cache = PlanCache()
        schema = RelationSchema(
            "t", [Column("a", "INT"), Column("b", "STR")]
        )
        relation = Relation.from_tuples(schema, [(1, "x")])
        sql = "SELECT a FROM t"
        execute_planned(sql, relation, cache=cache)
        # Same schema object, new data: the cached plan binds the
        # relation at execution time, so the hit sees the new rows.
        relation.insert({"a": 2, "b": "y"})
        result = execute_planned(sql, relation, cache=cache)
        assert values(result) == [(1,), (2,)]
        assert cache.hits == 1

    def test_catalog_version_invalidates_database_plans(self):
        database = Database("db")
        schema = RelationSchema(
            "t", [Column("a", "INT"), Column("b", "STR")]
        )
        relation = database.create_relation(schema)
        relation.insert({"a": 1, "b": "x"})
        cache = PlanCache()
        sql = "SELECT a FROM t"
        execute_planned(sql, database, cache=cache)
        execute_planned(sql, database, cache=cache)
        assert cache.hits == 1
        # create/drop bumps catalog_version: the cached entry goes stale.
        database.create_relation(
            RelationSchema("u", [Column("x", "INT")])
        )
        result = execute_planned(sql, database, cache=cache)
        assert values(result) == [(1,)]
        assert cache.hits == 1 and cache.misses == 2

    def test_repartition_invalidates_pruned_plan(self):
        from repro.relational import hash_partitions
        from repro.sql.plan import Scan

        cache = PlanCache()
        relation = make_relation()
        relation.repartition(hash_partitions("b", 8))
        sql = "SELECT a FROM t WHERE b = 'x'"
        first = execute_planned(sql, relation, cache=cache)
        entry = cache.lookup(sql, relation)[0]

        def scan_of(plan):
            node = plan
            while not isinstance(node, Scan):
                node = node.child
            return node

        pruned = scan_of(entry.plan)
        assert pruned.partitions is not None
        assert pruned.partition_total == 8
        # Relayout: the entry pins the old partition layout version, so
        # the lookup misses and the replan targets the new bucket count.
        relation.repartition(hash_partitions("b", 2))
        assert cache.lookup(sql, relation) is None
        second = execute_planned(sql, relation, cache=cache)
        assert values(second) == values(first) == [(1,), (3,)]
        fresh = scan_of(cache.lookup(sql, relation)[0].plan)
        assert fresh.partition_total == 2
        assert cache.stats()["misses"] == 3  # cold, stale lookup, replan

    def test_drop_and_recreate_recompiles(self):
        database = Database("db")
        schema = RelationSchema(
            "t", [Column("a", "INT"), Column("b", "STR")]
        )
        database.create_relation(schema).insert({"a": 1, "b": "x"})
        cache = PlanCache()
        sql = "SELECT * FROM t"
        execute_planned(sql, database, cache=cache)
        database.drop_relation("t")
        replacement = RelationSchema(
            "t", [Column("a", "INT"), Column("c", "INT")]
        )
        database.create_relation(replacement).insert({"a": 5, "c": 7})
        result = execute_planned(sql, database, cache=cache)
        assert result.schema.column_names == ("a", "c")
        assert values(result) == [(5, 7)]


class TestTaggedPlans:
    def test_columnar_store_rebuilds_after_mutation(self):
        schema = RelationSchema("t", [Column("a", "INT")])
        tags = TagSchema(
            [IndicatorDefinition("source", "STR")],
            allowed={"a": ["source"]},
        )
        relation = TaggedRelation(schema, tags)
        for index in range(4):
            relation.insert(
                {
                    "a": QualityCell(
                        index,
                        [IndicatorValue("source", "s1" if index < 2 else "s2")],
                    )
                }
            )
        cache = PlanCache()
        sql = "SELECT a FROM t WHERE QUALITY(a.source) = 's1'"
        first = execute_planned(sql, relation, cache=cache)
        assert values(first) == [(0,), (1,)]
        # Mutate the relation: the cached plan must not serve the stale
        # columnar store (TaggedRelation.version gates the store cache).
        relation.insert(
            {"a": QualityCell(9, [IndicatorValue("source", "s1")])}
        )
        second = execute_planned(sql, relation, cache=cache)
        assert values(second) == [(0,), (1,), (9,)]
        assert cache.hits == 1

    def test_strict_mode_checked_once_then_cached(self):
        relation = make_relation()
        cache = PlanCache()
        sql = "SELECT a FROM t"
        execute_planned(sql, relation, cache=cache, strict=True)
        entry = cache.lookup(sql, relation)[0]
        assert entry.strict_checked is True

    def test_strict_errors_still_raise_on_cached_plan(self):
        from repro.analysis.diagnostics import QueryAnalysisError

        relation = make_relation()
        cache = PlanCache()
        sql = "SELECT a FROM t WHERE b = 'x' AND b <> 'x'"
        # Plan compiles and caches fine without strict...
        execute_planned(sql, relation, cache=cache)
        # ...but strict mode on the *cached* entry still analyzes.
        with pytest.raises(QueryAnalysisError):
            execute_planned(sql, relation, cache=cache, strict=True)


class TestColumnarKeying:
    """The cache key must cover columnar mode and the costing band.

    Before this keying existed, a plan compiled under ``columnar=True``
    would be served to a ``columnar=False`` caller (wrong mode), and a
    row plan compiled while the relation sat under COLUMNAR_MIN_ROWS
    would keep being served after the relation grew past it (stale
    access-path choice).  Both assertions below fail under the old
    keying.
    """

    SQL = "SELECT a FROM t WHERE a >= 0"

    def big_relation(self):
        from repro.sql import optimizer

        n = optimizer.COLUMNAR_MIN_ROWS + 36
        return make_relation(rows=[(i, "x") for i in range(n)])

    def test_mode_toggle_compiles_two_coexisting_entries(self):
        from repro.sql.plan import Materialize

        cache = PlanCache()
        relation = self.big_relation()
        execute_planned(self.SQL, relation, cache=cache, columnar=True)
        execute_planned(self.SQL, relation, cache=cache, columnar=False)
        assert cache.misses == 2  # the row-path call must NOT hit
        entries = cache._entries[self.SQL]
        assert sorted(e.columnar_mode for e in entries) == [False, True]
        by_mode = {e.columnar_mode: e for e in entries}
        assert isinstance(by_mode[True].plan, Materialize)
        assert not isinstance(by_mode[False].plan, Materialize)

    def test_mode_toggle_then_both_modes_hit(self):
        cache = PlanCache()
        relation = self.big_relation()
        execute_planned(self.SQL, relation, cache=cache, columnar=True)
        execute_planned(self.SQL, relation, cache=cache, columnar=False)
        execute_planned(self.SQL, relation, cache=cache, columnar=True)
        execute_planned(self.SQL, relation, cache=cache, columnar=False)
        assert cache.hits == 2 and cache.misses == 2

    def test_growth_past_threshold_replans_columnar(self):
        from repro.sql import optimizer
        from repro.sql.plan import Materialize

        cache = PlanCache()
        relation = make_relation(rows=[(i, "x") for i in range(4)])
        execute_planned(self.SQL, relation, cache=cache)
        entry = cache.lookup(self.SQL, relation)[0]
        assert entry.columnar_band is False
        assert not isinstance(entry.plan, Materialize)
        # Grow past the costing threshold: the cached row plan's band
        # no longer matches, so the lookup must miss and replan.
        for i in range(optimizer.COLUMNAR_MIN_ROWS + 10):
            relation.insert({"a": 100 + i, "b": "y"})
        result = execute_planned(self.SQL, relation, cache=cache)
        assert len(result) == 4 + optimizer.COLUMNAR_MIN_ROWS + 10
        fresh = cache.lookup(self.SQL, relation)[0]
        assert fresh.columnar_band is True
        assert isinstance(fresh.plan, Materialize)

    def test_shrink_below_threshold_replans_rows(self):
        from repro.sql.plan import Materialize

        cache = PlanCache()
        relation = self.big_relation()
        execute_planned(self.SQL, relation, cache=cache)
        assert isinstance(cache.lookup(self.SQL, relation)[0].plan, Materialize)
        relation.delete(lambda row: row["a"] >= 4)
        fresh = cache.lookup(self.SQL, relation)
        # lookup() counts a miss for the stale band; the next planned
        # execution compiles a row plan.
        assert fresh is None
        result = execute_planned(self.SQL, relation, cache=cache)
        assert len(result) == 4
        assert not isinstance(
            cache.lookup(self.SQL, relation)[0].plan, Materialize
        )

    def test_tagged_entries_carry_no_band(self):
        schema = RelationSchema("t", [Column("a", "INT")])
        tags = TagSchema(
            [IndicatorDefinition("source", "STR")], allowed={"a": ["source"]}
        )
        relation = TaggedRelation(schema, tags)
        for index in range(80):
            relation.insert({"a": QualityCell(index)})
        cache = PlanCache()
        execute_planned(self.SQL, relation, cache=cache)
        entry = cache.lookup(self.SQL, relation)[0]
        # Costing never applies to tagged sources, so size changes must
        # not invalidate their plans.
        assert entry.columnar_band is None
        relation.insert({"a": QualityCell(999)})
        assert cache.lookup(self.SQL, relation) is not None


class TestAnalysisMemo:
    """Strict-mode analysis is memoized beside the plan cache."""

    def _count_analyzer_calls(self, monkeypatch):
        import repro.analysis.query as query_mod

        calls = []
        real = query_mod.analyze_statement

        def counting(statement, source, sql=None, context=""):
            calls.append(sql)
            return real(statement, source, sql=sql, context=context)

        monkeypatch.setattr(query_mod, "analyze_statement", counting)
        return calls

    def test_repeat_strict_analysis_hits_memo(self, monkeypatch):
        from repro.sql.parser import parse
        from repro.sql.plancache import AnalysisMemo, run_strict_analysis

        calls = self._count_analyzer_calls(monkeypatch)
        relation = make_relation()
        memo = AnalysisMemo()
        sql = "SELECT a FROM t"
        statement = parse(sql)
        for _ in range(3):
            run_strict_analysis(statement, relation, sql, memo)
        assert len(calls) == 1
        assert memo.stats() == {"statements": 1, "hits": 2, "misses": 1}

    def test_memoized_rejection_replays_diagnostics(self, monkeypatch):
        from repro.analysis import QueryAnalysisError
        from repro.sql.parser import parse
        from repro.sql.plancache import AnalysisMemo, run_strict_analysis

        calls = self._count_analyzer_calls(monkeypatch)
        relation = make_relation()
        memo = AnalysisMemo()
        sql = "SELECT nosuch FROM t"
        statement = parse(sql)
        for _ in range(2):
            with pytest.raises(QueryAnalysisError) as excinfo:
                run_strict_analysis(statement, relation, sql, memo)
            assert "DQ202" in str(excinfo.value)
        assert len(calls) == 1

    def test_schema_swap_invalidates_memo(self, monkeypatch):
        from repro.sql.parser import parse
        from repro.sql.plancache import AnalysisMemo, run_strict_analysis

        calls = self._count_analyzer_calls(monkeypatch)
        memo = AnalysisMemo()
        sql = "SELECT a FROM t"
        statement = parse(sql)
        run_strict_analysis(statement, make_relation(), sql, memo)
        run_strict_analysis(statement, make_relation(), sql, memo)
        # Each make_relation() builds a fresh schema object; identity
        # validation must re-analyze rather than reuse the verdict.
        assert len(calls) == 2

    def test_execute_planned_strict_uses_default_memo(self, monkeypatch):
        from repro.sql.plancache import clear_plan_cache

        calls = self._count_analyzer_calls(monkeypatch)
        clear_plan_cache()
        try:
            relation = make_relation()
            for _ in range(3):
                execute_planned("SELECT a FROM t", relation, strict=True)
            assert len(calls) == 1
        finally:
            clear_plan_cache()

    def test_unplanned_strict_shares_the_memo(self, monkeypatch):
        from repro.sql.executor import execute
        from repro.sql.plancache import clear_plan_cache

        calls = self._count_analyzer_calls(monkeypatch)
        clear_plan_cache()
        try:
            relation = make_relation()
            execute("SELECT a FROM t", relation, strict=True, planner=False)
            execute("SELECT a FROM t", relation, strict=True, planner=True)
            assert len(calls) == 1
        finally:
            clear_plan_cache()
