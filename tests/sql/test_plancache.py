"""Plan-cache behavior: hits, invalidation, and mutation safety."""

from __future__ import annotations

import pytest

from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.sql.plancache import PlanCache, execute_planned
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import (
    IndicatorDefinition,
    IndicatorValue,
    TagSchema,
)
from repro.tagging.relation import TaggedRelation


def make_relation(name="t", rows=((1, "x"), (2, "y"), (3, "x"))):
    schema = RelationSchema(name, [Column("a", "INT"), Column("b", "STR")])
    return Relation.from_tuples(schema, rows)


def values(result):
    return [row.values_tuple() for row in result]


class TestHitsAndMisses:
    def test_repeat_statement_hits(self):
        cache = PlanCache()
        relation = make_relation()
        sql = "SELECT a FROM t WHERE b = 'x'"
        first = execute_planned(sql, relation, cache=cache)
        second = execute_planned(sql, relation, cache=cache)
        assert values(first) == values(second) == [(1,), (3,)]
        stats = cache.stats()
        assert stats == {"statements": 1, "hits": 1, "misses": 1}

    def test_different_statements_cached_separately(self):
        cache = PlanCache()
        relation = make_relation()
        execute_planned("SELECT a FROM t", relation, cache=cache)
        execute_planned("SELECT b FROM t", relation, cache=cache)
        assert cache.stats()["statements"] == 2

    def test_explain_is_not_cached(self):
        cache = PlanCache()
        relation = make_relation()
        execute_planned("EXPLAIN SELECT a FROM t", relation, cache=cache)
        assert cache.stats()["statements"] == 0

    def test_lru_eviction_bounds_size(self):
        cache = PlanCache(max_statements=3)
        relation = make_relation()
        for limit in range(5):
            execute_planned(
                f"SELECT a FROM t LIMIT {limit}", relation, cache=cache
            )
        assert cache.stats()["statements"] == 3


class TestInvalidation:
    def test_schema_identity_mismatch_misses(self):
        cache = PlanCache()
        sql = "SELECT a FROM t"
        execute_planned(sql, make_relation(), cache=cache)
        # A structurally identical but *recreated* relation must miss:
        # the cached plan was compiled against different schema objects.
        other = make_relation(rows=((9, "z"),))
        result = execute_planned(sql, other, cache=cache)
        assert values(result) == [(9,)]
        assert cache.hits == 0 and cache.misses == 2

    def test_same_schema_different_rows_hits(self):
        cache = PlanCache()
        schema = RelationSchema(
            "t", [Column("a", "INT"), Column("b", "STR")]
        )
        relation = Relation.from_tuples(schema, [(1, "x")])
        sql = "SELECT a FROM t"
        execute_planned(sql, relation, cache=cache)
        # Same schema object, new data: the cached plan binds the
        # relation at execution time, so the hit sees the new rows.
        relation.insert({"a": 2, "b": "y"})
        result = execute_planned(sql, relation, cache=cache)
        assert values(result) == [(1,), (2,)]
        assert cache.hits == 1

    def test_catalog_version_invalidates_database_plans(self):
        database = Database("db")
        schema = RelationSchema(
            "t", [Column("a", "INT"), Column("b", "STR")]
        )
        relation = database.create_relation(schema)
        relation.insert({"a": 1, "b": "x"})
        cache = PlanCache()
        sql = "SELECT a FROM t"
        execute_planned(sql, database, cache=cache)
        execute_planned(sql, database, cache=cache)
        assert cache.hits == 1
        # create/drop bumps catalog_version: the cached entry goes stale.
        database.create_relation(
            RelationSchema("u", [Column("x", "INT")])
        )
        result = execute_planned(sql, database, cache=cache)
        assert values(result) == [(1,)]
        assert cache.hits == 1 and cache.misses == 2

    def test_drop_and_recreate_recompiles(self):
        database = Database("db")
        schema = RelationSchema(
            "t", [Column("a", "INT"), Column("b", "STR")]
        )
        database.create_relation(schema).insert({"a": 1, "b": "x"})
        cache = PlanCache()
        sql = "SELECT * FROM t"
        execute_planned(sql, database, cache=cache)
        database.drop_relation("t")
        replacement = RelationSchema(
            "t", [Column("a", "INT"), Column("c", "INT")]
        )
        database.create_relation(replacement).insert({"a": 5, "c": 7})
        result = execute_planned(sql, database, cache=cache)
        assert result.schema.column_names == ("a", "c")
        assert values(result) == [(5, 7)]


class TestTaggedPlans:
    def test_columnar_store_rebuilds_after_mutation(self):
        schema = RelationSchema("t", [Column("a", "INT")])
        tags = TagSchema(
            [IndicatorDefinition("source", "STR")],
            allowed={"a": ["source"]},
        )
        relation = TaggedRelation(schema, tags)
        for index in range(4):
            relation.insert(
                {
                    "a": QualityCell(
                        index,
                        [IndicatorValue("source", "s1" if index < 2 else "s2")],
                    )
                }
            )
        cache = PlanCache()
        sql = "SELECT a FROM t WHERE QUALITY(a.source) = 's1'"
        first = execute_planned(sql, relation, cache=cache)
        assert values(first) == [(0,), (1,)]
        # Mutate the relation: the cached plan must not serve the stale
        # columnar store (TaggedRelation.version gates the store cache).
        relation.insert(
            {"a": QualityCell(9, [IndicatorValue("source", "s1")])}
        )
        second = execute_planned(sql, relation, cache=cache)
        assert values(second) == [(0,), (1,), (9,)]
        assert cache.hits == 1

    def test_strict_mode_checked_once_then_cached(self):
        relation = make_relation()
        cache = PlanCache()
        sql = "SELECT a FROM t"
        execute_planned(sql, relation, cache=cache, strict=True)
        entry = cache.lookup(sql, relation)[0]
        assert entry.strict_checked is True

    def test_strict_errors_still_raise_on_cached_plan(self):
        from repro.analysis.diagnostics import QueryAnalysisError

        relation = make_relation()
        cache = PlanCache()
        sql = "SELECT a FROM t WHERE b = 'x' AND b <> 'x'"
        # Plan compiles and caches fine without strict...
        execute_planned(sql, relation, cache=cache)
        # ...but strict mode on the *cached* entry still analyzes.
        with pytest.raises(QueryAnalysisError):
            execute_planned(sql, relation, cache=cache, strict=True)
