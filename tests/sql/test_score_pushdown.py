"""End-to-end tests for ``QUALITY(parameter)`` scoring pushdown.

The parameter form (``QUALITY(credibility) > 0.8``) resolves against
the relation's registered :class:`ScoringProfile` and is pushed into
the materialized score arrays (a ``ScoreFilter`` plan node); the tag
form (``QUALITY(column.indicator)``) keeps its own pushdown.  Every
pushed plan must agree with the planner-off per-cell path.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_query
from repro.sql.errors import SQLError
from repro.quality.materialize import (
    ScoringProfile,
    clear_profiles,
    materializer_for,
    register_profile,
)
from repro.quality.scoring import credibility_scorer, timeliness_scorer
from repro.relational import hash_partitions
from repro.relational.schema import schema
from repro.sql import clear_plan_cache, execute
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import (
    IndicatorDefinition,
    IndicatorValue,
    TagSchema,
)
from repro.tagging.relation import TaggedRelation

SOURCES = [None, "audit", "phone", "fax"]


@pytest.fixture(autouse=True)
def _clean_state():
    clear_profiles()
    clear_plan_cache()
    yield
    clear_profiles()
    clear_plan_cache()


def make_relation(n=24):
    tag_schema = TagSchema(
        indicators=[
            IndicatorDefinition("source"),
            IndicatorDefinition("age", "FLOAT"),
        ],
        allowed={"v": ["source", "age"]},
    )
    relation = TaggedRelation(
        schema("readings", [("k", "INT"), ("v", "STR")]), tag_schema
    )
    for k in range(n):
        tags = []
        source = SOURCES[k % len(SOURCES)]
        if source is not None:
            tags.append(IndicatorValue("source", source))
        if k % 5:
            tags.append(IndicatorValue("age", float(10 * (k % 13))))
        relation.insert({"k": k, "v": QualityCell(f"v{k}", tags)})
    return relation


def register(ratings=None):
    return register_profile(
        ScoringProfile(
            "grades",
            [
                credibility_scorer(ratings or {"audit": 0.9, "phone": 0.3}),
                timeliness_scorer(100.0),
            ],
        ),
        relations=["readings"],
    )


def explain(sql, source):
    return "\n".join(row["plan"] for row in execute(f"EXPLAIN {sql}", source))


def canonical(result):
    return sorted(row.values_tuple() for row in result)


class TestPlanShape:
    def test_score_conjunct_becomes_score_filter(self):
        relation = make_relation()
        register()
        plan = explain(
            "SELECT k FROM readings WHERE QUALITY(credibility) > 0.5",
            relation,
        )
        assert "ScoreFilter [QUALITY(credibility) > 0.5" in plan
        assert "Filter" not in plan.replace("ScoreFilter", "")

    def test_residual_value_predicate_survives(self):
        relation = make_relation()
        register()
        plan = explain(
            "SELECT k FROM readings "
            "WHERE QUALITY(credibility) > 0.5 AND k >= 4",
            relation,
        )
        assert "ScoreFilter" in plan
        assert "Filter [k >= 4]" in plan

    def test_score_filter_stacks_on_tag_pushdown(self):
        relation = make_relation()
        register()
        plan = explain(
            "SELECT k FROM readings "
            "WHERE QUALITY(v.source) = 'audit' "
            "AND QUALITY(timeliness) >= 0.4",
            relation,
        )
        assert "ScoreFilter" in plan
        assert "QualityFilter" in plan

    def test_unregistered_relation_keeps_per_row_filter(self):
        relation = make_relation()
        register()
        clear_profiles()  # no binding: the rewrite must not fire
        register_profile(
            ScoringProfile(
                "unbound", [credibility_scorer({"audit": 0.9})]
            )
        )
        plan = explain(
            "SELECT k FROM readings WHERE QUALITY(credibility) > 0.5",
            relation,
        )
        assert "ScoreFilter" not in plan
        assert "Filter" in plan


class TestEquivalence:
    def test_pushdown_matches_planner_off_and_oracle(self):
        relation = make_relation()
        register()
        sql = (
            "SELECT k FROM readings WHERE QUALITY(credibility) > 0.5"
        )
        pushed = execute(sql, relation)
        reference = execute(sql, relation, planner=False)
        assert canonical(pushed) == canonical(reference)
        scores = materializer_for(relation).row_scores("credibility")
        oracle = sorted(
            (row.value("k"),)
            for row, score in zip(relation.row_batch(), scores)
            if score is not None and score > 0.5
        )
        assert canonical(pushed) == oracle
        assert 0 < len(pushed) < len(relation)

    def test_mixed_tag_score_and_value_predicates(self):
        relation = make_relation()
        register()
        sql = (
            "SELECT k FROM readings "
            "WHERE QUALITY(v.source) <> 'fax' "
            "AND QUALITY(timeliness) >= 0.4 AND k < 20"
        )
        assert canonical(execute(sql, relation)) == canonical(
            execute(sql, relation, planner=False)
        )

    def test_scores_in_projection_and_order_by(self):
        relation = make_relation()
        register()
        sql = (
            "SELECT k, QUALITY(credibility) AS cred FROM readings "
            "WHERE QUALITY(credibility) >= 0.3 "
            "ORDER BY QUALITY(credibility) DESC, k LIMIT 6"
        )
        pushed = execute(sql, relation)
        reference = execute(sql, relation, planner=False)
        assert [r.values_tuple() for r in pushed] == [
            r.values_tuple() for r in reference
        ]
        creds = [row["cred"] for row in pushed]
        assert creds == sorted(creds, reverse=True)

    def test_partitioned_relation_prunes_and_pushes(self):
        relation = make_relation(n=48)
        relation.repartition(hash_partitions("k", 8))
        register()
        sql = (
            "SELECT k FROM readings "
            "WHERE k = 5 AND QUALITY(timeliness) >= 0.1"
        )
        plan = explain(sql, relation)
        assert "partitions=1/8" in plan
        assert "ScoreFilter" in plan
        assert canonical(execute(sql, relation)) == canonical(
            execute(sql, relation, planner=False)
        )

    def test_unpruned_partitioned_scan_uses_flat_block(self):
        relation = make_relation(n=48)
        relation.repartition(hash_partitions("k", 8))
        register()
        sql = (
            "SELECT k FROM readings WHERE QUALITY(credibility) > 0.5"
        )
        assert canonical(execute(sql, relation)) == canonical(
            execute(sql, relation, planner=False)
        )


class TestDiagnosticsAndErrors:
    def test_dq212_for_unbound_relation(self):
        relation = make_relation()
        diagnostics = analyze_query(
            "SELECT k FROM readings WHERE QUALITY(credibility) > 0.5",
            relation,
        )
        assert "DQ212" in diagnostics.codes()
        assert diagnostics.has_errors

    def test_dq212_for_undefined_parameter(self):
        relation = make_relation()
        register()
        diagnostics = analyze_query(
            "SELECT k FROM readings WHERE QUALITY(accuracy) > 0.5",
            relation,
        )
        assert "DQ212" in diagnostics.codes()

    def test_registered_parameter_is_clean(self):
        relation = make_relation()
        register()
        diagnostics = analyze_query(
            "SELECT k FROM readings WHERE QUALITY(credibility) > 0.5",
            relation,
        )
        assert not diagnostics.has_errors

    def test_dq205_for_untagged_relation(self):
        from repro.relational.relation import Relation

        plain = Relation(schema("plain", [("k", "INT")]))
        plain.insert({"k": 1})
        diagnostics = analyze_query(
            "SELECT k FROM plain WHERE QUALITY(credibility) > 0.5", plain
        )
        assert "DQ205" in diagnostics.codes()
        with pytest.raises(SQLError):
            execute(
                "SELECT k FROM plain WHERE QUALITY(credibility) > 0.5",
                plain,
            )

    def test_execute_without_profile_raises(self):
        relation = make_relation()
        with pytest.raises(SQLError, match="no registered scoring profile"):
            execute(
                "SELECT k FROM readings "
                "WHERE QUALITY(credibility) > 0.5",
                relation,
            )


class TestPlanCacheInvalidation:
    def test_reregistration_invalidates_cached_plans(self):
        relation = make_relation()
        register()
        sql = (
            "SELECT k FROM readings WHERE QUALITY(credibility) > 0.5"
        )
        first = execute(sql, relation)
        assert len(first) > 0
        # Replace the profile with one that rates every source below
        # the cut; a stale cached plan would keep the old hits.
        register(ratings={"audit": 0.4, "phone": 0.1})
        assert len(execute(sql, relation)) == 0

    def test_score_free_statements_are_not_pinned(self):
        from repro.sql.plancache import PlanCache, execute_planned

        cache = PlanCache()
        relation = make_relation()
        register()
        plain_sql = "SELECT k FROM readings WHERE k > 3"
        scored_sql = (
            "SELECT k FROM readings WHERE QUALITY(credibility) > 0.5"
        )
        execute_planned(plain_sql, relation, cache=cache)
        execute_planned(scored_sql, relation, cache=cache)
        assert cache.lookup(plain_sql, relation)[0].scoring_version is None
        scored = cache.lookup(scored_sql, relation)[0]
        assert scored.scoring_version is not None
        # A registry mutation stales only the score-reading entry.
        register(ratings={"audit": 0.8})
        assert cache.lookup(plain_sql, relation) is not None
        assert cache.lookup(scored_sql, relation) is None
