"""Property-based tests for QSQL.

Strategy: generate random comparison predicates over a fixed relation
and check the QSQL answer equals a direct Python evaluation of the same
predicate (differential testing of parser + executor).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.sql import execute

COLUMNS = ["a", "b"]
OPS = {
    "=": lambda x, y: x == y,
    "<>": lambda x, y: x != y,
    "<": lambda x, y: x < y,
    "<=": lambda x, y: x <= y,
    ">": lambda x, y: x > y,
    ">=": lambda x, y: x >= y,
}


@st.composite
def relations(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.one_of(st.none(), st.integers(0, 20)),
                st.one_of(st.none(), st.integers(0, 20)),
            ),
            max_size=15,
        )
    )
    return Relation.from_tuples(
        schema("t", [("a", "INT"), ("b", "INT")]), rows
    )


@st.composite
def simple_predicates(draw):
    column = draw(st.sampled_from(COLUMNS))
    op = draw(st.sampled_from(sorted(OPS)))
    literal = draw(st.integers(0, 20))
    return column, op, literal


class TestDifferentialComparison:
    @settings(max_examples=60)
    @given(relations(), simple_predicates())
    def test_single_comparison(self, rel, predicate):
        column, op, literal = predicate
        result = execute(
            f"SELECT * FROM t WHERE {column} {op} {literal}", rel
        )
        expected = [
            row
            for row in rel
            if row[column] is not None and OPS[op](row[column], literal)
        ]
        assert [r.values_tuple() for r in result] == [
            r.values_tuple() for r in expected
        ]

    @settings(max_examples=40)
    @given(relations(), simple_predicates(), simple_predicates())
    def test_and_is_intersection(self, rel, p1, p2):
        c1, o1, l1 = p1
        c2, o2, l2 = p2
        combined = execute(
            f"SELECT * FROM t WHERE {c1} {o1} {l1} AND {c2} {o2} {l2}", rel
        )
        first = execute(f"SELECT * FROM t WHERE {c1} {o1} {l1}", rel)
        refined = execute(
            f"SELECT * FROM t WHERE {c2} {o2} {l2}", first
        )
        assert [r.values_tuple() for r in combined] == [
            r.values_tuple() for r in refined
        ]

    @settings(max_examples=40)
    @given(relations(), simple_predicates())
    def test_not_partitions(self, rel, predicate):
        column, op, literal = predicate
        positive = execute(
            f"SELECT * FROM t WHERE {column} {op} {literal}", rel
        )
        negative = execute(
            f"SELECT * FROM t WHERE NOT {column} {op} {literal}", rel
        )
        # NOT includes NULL rows (the comparison is not-true for them).
        assert len(positive) + len(negative) == len(rel)

    @settings(max_examples=40)
    @given(relations())
    def test_is_null_partitions(self, rel):
        nulls = execute("SELECT * FROM t WHERE a IS NULL", rel)
        non_nulls = execute("SELECT * FROM t WHERE a IS NOT NULL", rel)
        assert len(nulls) + len(non_nulls) == len(rel)

    @settings(max_examples=40)
    @given(relations(), st.integers(0, 10))
    def test_limit_bounds(self, rel, n):
        result = execute(f"SELECT * FROM t LIMIT {n}", rel)
        assert len(result) == min(n, len(rel))

    @settings(max_examples=40)
    @given(relations())
    def test_order_by_sorted(self, rel):
        result = execute("SELECT * FROM t ORDER BY a", rel)
        values = [row["a"] for row in result]
        present = [v for v in values if v is not None]
        assert present == sorted(present)
        # NULLs first under the engine's None-safe ordering.
        if None in values:
            assert values.index(None) == 0


class TestAggregateProperties:
    @settings(max_examples=50)
    @given(relations(), simple_predicates())
    def test_count_star_matches_filter_cardinality(self, rel, predicate):
        column, op, literal = predicate
        where = f"{column} {op} {literal}"
        counted = execute(
            f"SELECT COUNT(*) AS n FROM t WHERE {where}", rel
        ).to_dicts()[0]["n"]
        filtered = execute(f"SELECT * FROM t WHERE {where}", rel)
        assert counted == len(filtered)

    @settings(max_examples=50)
    @given(relations())
    def test_grouped_counts_partition(self, rel):
        grouped = execute(
            "SELECT a, COUNT(*) AS n FROM t GROUP BY a", rel
        )
        assert sum(row["n"] for row in grouped) == len(rel)
        # One group per distinct a value (None included).
        distinct_a = {row["a"] for row in rel}
        assert len(grouped) == (len(distinct_a) if len(rel) else 0)

    @settings(max_examples=50)
    @given(relations())
    def test_min_max_bracket_avg(self, rel):
        row = execute(
            "SELECT MIN(a) AS low, AVG(a) AS mean, MAX(a) AS high FROM t",
            rel,
        ).to_dicts()[0]
        if row["mean"] is not None:
            assert row["low"] <= row["mean"] <= row["high"]
        else:
            assert row["low"] is None and row["high"] is None


class TestParserRobustness:
    """The parser must fail *closed*: any input either parses or raises
    SQLError — never an arbitrary exception."""

    @settings(max_examples=120)
    @given(st.text(max_size=80))
    def test_arbitrary_text(self, text):
        from repro.sql import SQLError, parse

        try:
            parse(text)
        except SQLError:
            pass

    @settings(max_examples=80)
    @given(
        st.lists(
            st.sampled_from(
                [
                    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "t", "a",
                    "b", "*", ",", "(", ")", "=", "<", ">", "1", "'x'",
                    "QUALITY", ".", "IS", "NULL", "IN", "ORDER", "BY",
                    "LIMIT", "DESC",
                ]
            ),
            max_size=15,
        )
    )
    def test_token_soup(self, words):
        from repro.sql import SQLError, parse

        try:
            parse(" ".join(words))
        except SQLError:
            pass

    @settings(max_examples=60)
    @given(st.text(max_size=60))
    def test_executor_never_crashes_differently(self, text):
        from repro.errors import ReproError
        from repro.relational.relation import Relation
        from repro.sql import execute

        rel = Relation.from_tuples(
            schema("t", [("a", "INT"), ("b", "INT")]), [(1, 2)]
        )
        try:
            execute(text, rel)
        except ReproError:
            pass


class TestStorageRoundTripProperty:
    @settings(max_examples=40)
    @given(relations())
    def test_relation_json_round_trip(self, rel):
        from repro.relational.storage import relation_from_dict, relation_to_dict

        assert relation_from_dict(relation_to_dict(rel)) == rel
