"""Tests for SQLError position reporting and token/node source spans."""

import pytest

from repro.sql.errors import SQLError, caret_snippet
from repro.sql.lexer import tokenize
from repro.sql.nodes import ColumnRef
from repro.sql.parser import parse


class TestCaretSnippet:
    def test_single_line(self):
        snippet = caret_snippet("SELECT a FROM t", 7, 8)
        lines = snippet.split("\n")
        assert lines[0] == "SELECT a FROM t"
        assert lines[1].index("^") == 7

    def test_multichar_span(self):
        snippet = caret_snippet("SELECT name FROM t", 7, 11)
        assert "^^^^" in snippet

    def test_out_of_range_position(self):
        assert caret_snippet("abc", -1, 2) == ""

    def test_span_on_later_line(self):
        text = "SELECT a\nFROM t WHERE b = 1"
        position = text.index("WHERE")
        snippet = caret_snippet(text, position, position + 5)
        lines = snippet.split("\n")
        assert lines[0] == "FROM t WHERE b = 1"
        assert lines[1].index("^") == 7


class TestSQLErrorSpans:
    def test_position_and_end(self):
        error = SQLError("boom", 4, 9)
        assert error.position == 4
        assert error.end == 9
        assert error.span == (4, 9)

    def test_end_defaults_to_one_past_position(self):
        error = SQLError("boom", 4)
        assert error.span == (4, 5)

    def test_no_position_no_span(self):
        error = SQLError("boom")
        assert error.span is None
        assert str(error) == "boom"

    def test_with_source_renders_caret(self):
        error = SQLError("bad token", 7, 11).with_source("SELECT name FROM t")
        message = str(error)
        assert "bad token (at position 7)" in message
        assert "^^^^" in message
        assert error.raw_message == "bad token"

    def test_parse_error_carries_query_text(self):
        with pytest.raises(SQLError) as excinfo:
            parse("SELECT co_name FORM customer")
        error = excinfo.value
        assert error.source == "SELECT co_name FORM customer"
        assert error.span == (15, 19)
        assert error.source[error.position : error.end] == "FORM"
        assert "^^^^" in str(error)

    def test_lexer_error_carries_query_text(self):
        with pytest.raises(SQLError) as excinfo:
            parse("SELECT a FROM t WHERE b = 'oops")
        error = excinfo.value
        assert error.source is not None
        assert error.position == 26  # the opening quote
        assert "unterminated" in error.raw_message

    def test_unexpected_character(self):
        with pytest.raises(SQLError) as excinfo:
            tokenize("SELECT a ; b")
        assert excinfo.value.position == 9

    def test_grouping_error_has_item_span(self):
        sql = "SELECT co_name, COUNT(*) FROM customer"
        with pytest.raises(SQLError) as excinfo:
            parse(sql)
        error = excinfo.value
        assert sql[error.position : error.end] == "co_name"


class TestTokenSpans:
    def test_every_token_span_matches_text(self):
        sql = "SELECT name, COUNT(*) FROM t WHERE a >= 10 AND b = 'x y'"
        for token in tokenize(sql):
            if token.kind == "EOF":
                continue
            start, end = token.span
            assert 0 <= start < end <= len(sql)
            text = sql[start:end]
            if token.kind == "STRING":
                assert text == "'x y'"
            elif token.kind == "NUMBER":
                assert text == "10"
            elif token.kind == "OPERATOR":
                assert text in (">=", "=")
            elif token.kind in ("KEYWORD", "IDENT"):
                assert text.upper() == str(token.value).upper()


class TestNodeSpans:
    def test_spans_slice_to_their_constructs(self):
        sql = (
            "SELECT co_name FROM customer "
            "WHERE QUALITY(address.source) = 'sales' AND employees > 10"
        )
        statement = parse(sql)
        assert sql[slice(*statement.relation_span)] == "customer"
        conjunction = statement.where
        left, right = conjunction.left, conjunction.right
        assert sql[slice(*left.span)] == "QUALITY(address.source) = 'sales'"
        assert sql[slice(*right.span)] == "employees > 10"
        assert sql[slice(*left.left.span)] == "QUALITY(address.source)"
        assert sql[slice(*conjunction.span)] == (
            "QUALITY(address.source) = 'sales' AND employees > 10"
        )

    def test_spans_excluded_from_equality(self):
        assert ColumnRef("a", span=(0, 1)) == ColumnRef("a")
        assert hash(ColumnRef("a", span=(0, 1))) == hash(ColumnRef("a"))

    def test_parsing_same_text_twice_yields_equal_asts(self):
        sql = "SELECT a, b FROM t WHERE a IN (1, 2) ORDER BY b"
        assert parse(sql) == parse(sql)
