"""Unit tests for the QSQL parser."""

import datetime as dt

import pytest

from repro.sql.errors import SQLError
from repro.sql.nodes import (
    BoolOp,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Literal,
    NotOp,
    QualityRef,
)
from repro.sql.parser import parse


class TestSelectClause:
    def test_star(self):
        statement = parse("SELECT * FROM t")
        assert statement.columns is None
        assert statement.relation == "t"

    def test_column_list(self):
        statement = parse("SELECT a, b, c FROM t")
        assert statement.columns == ("a", "b", "c")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct
        assert not parse("SELECT a FROM t").distinct

    def test_missing_from(self):
        with pytest.raises(SQLError):
            parse("SELECT a WHERE b = 1")

    def test_trailing_garbage(self):
        with pytest.raises(SQLError):
            parse("SELECT a FROM t extra")


class TestWhereClause:
    def test_comparison(self):
        statement = parse("SELECT * FROM t WHERE employees > 100")
        where = statement.where
        assert isinstance(where, Comparison)
        assert where.op == ">"
        assert where.left == ColumnRef("employees")
        assert where.right == Literal(100)

    def test_quality_ref(self):
        statement = parse(
            "SELECT * FROM t WHERE QUALITY(address.source) = 'acct''g'"
        )
        where = statement.where
        assert where.left == QualityRef("address", "source")
        assert where.right == Literal("acct'g")

    def test_date_literal(self):
        statement = parse(
            "SELECT * FROM t WHERE QUALITY(a.creation_time) >= DATE '1991-06-01'"
        )
        assert statement.where.right == Literal(dt.date(1991, 6, 1))

    def test_bad_date(self):
        with pytest.raises(SQLError):
            parse("SELECT * FROM t WHERE a = DATE 'June 1st'")

    def test_boolean_precedence_and_over_or(self):
        statement = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        where = statement.where
        assert isinstance(where, BoolOp) and where.op == "OR"
        assert isinstance(where.right, BoolOp) and where.right.op == "AND"

    def test_parentheses_override(self):
        statement = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        where = statement.where
        assert isinstance(where, BoolOp) and where.op == "AND"
        assert isinstance(where.left, BoolOp) and where.left.op == "OR"

    def test_not(self):
        statement = parse("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(statement.where, NotOp)

    def test_in_list(self):
        statement = parse("SELECT * FROM t WHERE src IN ('a', 'b')")
        where = statement.where
        assert isinstance(where, InList)
        assert where.options == ("a", "b")
        assert not where.negated

    def test_not_in(self):
        statement = parse("SELECT * FROM t WHERE src NOT IN (1, 2)")
        assert statement.where.negated

    def test_is_null(self):
        statement = parse("SELECT * FROM t WHERE a IS NULL")
        where = statement.where
        assert isinstance(where, IsNull) and not where.negated

    def test_is_not_null(self):
        statement = parse("SELECT * FROM t WHERE a IS NOT NULL")
        assert statement.where.negated

    def test_boolean_literals(self):
        statement = parse("SELECT * FROM t WHERE flag = TRUE")
        assert statement.where.right == Literal(True)

    def test_dangling_predicate(self):
        with pytest.raises(SQLError):
            parse("SELECT * FROM t WHERE a")

    def test_dangling_not(self):
        with pytest.raises(SQLError):
            parse("SELECT * FROM t WHERE a NOT b")


class TestOrderLimit:
    def test_order_by_columns(self):
        statement = parse("SELECT * FROM t ORDER BY a DESC, b")
        assert len(statement.order_by) == 2
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending

    def test_order_by_quality(self):
        statement = parse(
            "SELECT * FROM t ORDER BY QUALITY(a.creation_time) ASC"
        )
        assert statement.order_by[0].key == QualityRef("a", "creation_time")

    def test_limit(self):
        assert parse("SELECT * FROM t LIMIT 5").limit == 5

    def test_limit_validation(self):
        with pytest.raises(SQLError):
            parse("SELECT * FROM t LIMIT 2.5")


class TestUsesQuality:
    def test_in_where(self):
        assert parse(
            "SELECT * FROM t WHERE QUALITY(a.s) = 'x'"
        ).uses_quality()

    def test_in_order_by(self):
        assert parse("SELECT * FROM t ORDER BY QUALITY(a.s)").uses_quality()

    def test_nested(self):
        assert parse(
            "SELECT * FROM t WHERE NOT (a = 1 AND QUALITY(b.s) IS NULL)"
        ).uses_quality()

    def test_absent(self):
        assert not parse("SELECT * FROM t WHERE a = 1").uses_quality()
