"""Unit tests for QSQL aggregates, GROUP BY, aliases, and QUALITY values."""

import datetime as dt

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.sql import SQLError, execute, parse
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation


@pytest.fixture
def emps():
    return Relation.from_tuples(
        schema("emps", [("dept", "STR"), ("salary", "INT")]),
        [
            ("sales", 50),
            ("sales", 60),
            ("acctg", 70),
            ("acctg", None),
        ],
    )


@pytest.fixture
def aged_ticks():
    tag_schema = TagSchema(
        indicators=[IndicatorDefinition("age", "FLOAT")],
        allowed={"price": ["age"]},
    )
    rel = TaggedRelation(
        schema("ticks", [("ticker", "STR"), ("price", "FLOAT")]), tag_schema
    )
    for ticker, price, age in [
        ("A", 10.0, 1.0),
        ("A", 12.0, 3.0),
        ("B", 20.0, 5.0),
        ("B", 22.0, None),
    ]:
        tags = [IndicatorValue("age", age)] if age is not None else []
        rel.insert({"ticker": ticker, "price": QualityCell(price, tags)})
    return rel


class TestParsing:
    def test_aggregate_items(self):
        statement = parse("SELECT COUNT(*), AVG(salary) AS mean FROM emps")
        assert statement.has_aggregates
        items = statement.select_items
        assert items[0].output_name == "count_all"
        assert items[1].output_name == "mean"

    def test_group_by_parsed(self):
        from repro.sql.nodes import ColumnRef

        statement = parse(
            "SELECT dept, COUNT(*) FROM emps GROUP BY dept"
        )
        assert statement.group_by == (ColumnRef("dept"),)

    def test_group_by_quality_parsed(self):
        from repro.sql.nodes import QualityRef

        statement = parse(
            "SELECT QUALITY(price.age) AS age, COUNT(*) FROM ticks "
            "GROUP BY QUALITY(price.age)"
        )
        assert statement.group_by == (QualityRef("price", "age"),)
        assert statement.uses_quality()

    def test_group_by_requires_aggregate(self):
        with pytest.raises(SQLError):
            parse("SELECT dept FROM emps GROUP BY dept")

    def test_ungrouped_column_rejected(self):
        with pytest.raises(SQLError):
            parse("SELECT dept, salary, COUNT(*) FROM emps GROUP BY dept")

    def test_star_only_for_count(self):
        with pytest.raises(SQLError):
            parse("SELECT SUM(*) FROM emps")

    def test_distinct_with_aggregates_rejected(self):
        with pytest.raises(SQLError):
            parse("SELECT DISTINCT COUNT(*) FROM emps")

    def test_plain_columns_backcompat(self):
        assert parse("SELECT a, b FROM t").columns == ("a", "b")

    def test_quality_in_aggregate_flags_quality(self):
        assert parse(
            "SELECT AVG(QUALITY(price.age)) FROM ticks"
        ).uses_quality()


class TestGlobalAggregates:
    def test_count_star_counts_rows(self, emps):
        result = execute("SELECT COUNT(*) AS n FROM emps", emps)
        assert result.to_dicts() == [{"n": 4}]

    def test_count_column_skips_nulls(self, emps):
        result = execute("SELECT COUNT(salary) AS n FROM emps", emps)
        assert result.to_dicts() == [{"n": 3}]

    def test_sum_avg_min_max(self, emps):
        result = execute(
            "SELECT SUM(salary) AS total, AVG(salary) AS mean, "
            "MIN(salary) AS low, MAX(salary) AS high FROM emps",
            emps,
        )
        row = result.to_dicts()[0]
        assert row == {"total": 180, "mean": 60.0, "low": 50, "high": 70}

    def test_empty_relation_one_row(self, emps):
        empty = emps.empty_like()
        result = execute("SELECT COUNT(*) AS n FROM emps", empty)
        assert result.to_dicts() == [{"n": 0}]

    def test_where_applies_before_aggregation(self, emps):
        result = execute(
            "SELECT COUNT(*) AS n FROM emps WHERE dept = 'sales'", emps
        )
        assert result.to_dicts() == [{"n": 2}]


class TestGroupBy:
    def test_grouped_counts(self, emps):
        result = execute(
            "SELECT dept, COUNT(*) AS n FROM emps GROUP BY dept", emps
        )
        assert result.to_dicts() == [
            {"dept": "sales", "n": 2},
            {"dept": "acctg", "n": 2},
        ]

    def test_order_by_output_column(self, emps):
        result = execute(
            "SELECT dept, SUM(salary) AS total FROM emps "
            "GROUP BY dept ORDER BY total DESC",
            emps,
        )
        assert [r["dept"] for r in result] == ["sales", "acctg"]

    def test_limit_after_grouping(self, emps):
        result = execute(
            "SELECT dept, COUNT(*) AS n FROM emps GROUP BY dept LIMIT 1",
            emps,
        )
        assert len(result) == 1

    def test_order_by_unknown_output_rejected(self, emps):
        with pytest.raises(Exception):
            execute(
                "SELECT dept, COUNT(*) AS n FROM emps "
                "GROUP BY dept ORDER BY ghost",
                emps,
            )


class TestQualityAggregates:
    def test_avg_of_tag_values(self, aged_ticks):
        result = execute(
            "SELECT AVG(QUALITY(price.age)) AS mean_age FROM ticks",
            aged_ticks,
        )
        assert result.to_dicts() == [{"mean_age": 3.0}]

    def test_grouped_tag_aggregates(self, aged_ticks):
        result = execute(
            "SELECT ticker, COUNT(QUALITY(price.age)) AS tagged, "
            "MIN(QUALITY(price.age)) AS freshest "
            "FROM ticks GROUP BY ticker",
            aged_ticks,
        )
        rows = {r["ticker"]: r for r in result.to_dicts()}
        assert rows["A"] == {"ticker": "A", "tagged": 2, "freshest": 1.0}
        # B's second tick is untagged: COUNT skips it.
        assert rows["B"] == {"ticker": "B", "tagged": 1, "freshest": 5.0}

    def test_aggregate_result_is_plain(self, aged_ticks):
        result = execute("SELECT COUNT(*) AS n FROM ticks", aged_ticks)
        assert isinstance(result, Relation)

    def test_quality_aggregate_on_plain_rejected(self, emps):
        with pytest.raises(SQLError):
            execute("SELECT AVG(QUALITY(salary.age)) FROM emps", emps)

    def test_group_by_quality(self, aged_ticks):
        """The administrator's per-source report in one statement."""
        result = execute(
            "SELECT QUALITY(price.age) AS age, COUNT(*) AS n "
            "FROM ticks GROUP BY QUALITY(price.age) ORDER BY n DESC",
            aged_ticks,
        )
        rows = result.to_dicts()
        # Four distinct age tags (1, 3, 5, None): four groups of one.
        assert len(rows) == 4
        assert {row["age"] for row in rows} == {1.0, 3.0, 5.0, None}

    def test_group_by_quality_on_plain_rejected(self, emps):
        with pytest.raises(SQLError):
            execute(
                "SELECT QUALITY(salary.age) AS a, COUNT(*) FROM emps "
                "GROUP BY QUALITY(salary.age)",
                emps,
            )


class TestComputedProjection:
    def test_quality_value_as_column(self, aged_ticks):
        result = execute(
            "SELECT ticker, QUALITY(price.age) AS age FROM ticks",
            aged_ticks,
        )
        assert isinstance(result, Relation)
        assert result.to_dicts()[0] == {"ticker": "A", "age": 1.0}
        # Untagged cell surfaces as NULL.
        assert result.to_dicts()[3] == {"ticker": "B", "age": None}

    def test_alias_on_plain_column(self, emps):
        result = execute("SELECT dept AS department FROM emps", emps)
        assert result.schema.column_names == ("department",)

    def test_alias_keeps_tags_on_tagged_source(self, aged_ticks):
        result = execute("SELECT price AS p FROM ticks", aged_ticks)
        assert isinstance(result, TaggedRelation)
        assert result.rows[0]["p"].tag_value("age") == 1.0
