"""Columnar access paths: planner choice, escape hatch, edge cases."""

import pytest

from repro.obs.stats import StatsCollector
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.sql import clear_plan_cache, execute
from repro.sql import optimizer
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation

SCHEMA = RelationSchema(
    "t", [Column("a", "INT"), Column("b", "INT"), Column("c", "STR")]
)


def make_relation(n):
    return Relation.from_tuples(
        SCHEMA,
        [
            (i, None if i % 5 == 0 else i % 7, ["x", "y", "z"][i % 3])
            for i in range(n)
        ],
    )


def explain(sql, source, **kwargs):
    return "\n".join(
        row["plan"] for row in execute(f"EXPLAIN {sql}", source, **kwargs)
    )


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestAccessPathChoice:
    def test_scan_heavy_plan_goes_columnar_over_threshold(self):
        relation = make_relation(200)
        plan = explain("SELECT a FROM t WHERE a > 10", relation)
        assert "Materialize [columnar -> rows]" in plan
        assert "Scan [t (plain, columnar)]" in plan

    def test_small_relation_stays_on_row_path(self):
        relation = make_relation(10)
        assert len(relation) < optimizer.COLUMNAR_MIN_ROWS
        plan = explain("SELECT a FROM t WHERE a > 1", relation)
        assert "columnar" not in plan
        assert "Scan [t (plain)]" in plan

    def test_threshold_is_costing_not_hardcode(self, monkeypatch):
        monkeypatch.setattr(optimizer, "COLUMNAR_MIN_ROWS", 0)
        relation = make_relation(10)
        plan = explain("SELECT a FROM t WHERE a > 1", relation)
        assert "Scan [t (plain, columnar)]" in plan

    def test_bare_scan_stays_on_row_path(self):
        # SELECT * is a row_batch() passthrough — transposing to arrays
        # and materializing back would only add work.
        plan = explain("SELECT * FROM t", make_relation(200))
        assert "columnar" not in plan

    def test_limit_only_stays_on_row_path(self):
        plan = explain("SELECT * FROM t LIMIT 5", make_relation(200))
        assert "columnar" not in plan

    def test_topk_only_stays_on_row_path(self):
        plan = explain(
            "SELECT * FROM t ORDER BY a LIMIT 5", make_relation(200)
        )
        assert "columnar" not in plan

    def test_filter_then_topk_goes_columnar(self):
        plan = explain(
            "SELECT a, c FROM t WHERE b >= 2 ORDER BY a DESC LIMIT 5",
            make_relation(200),
        )
        assert "Materialize [columnar -> rows]" in plan
        # The whole chain sits inside the columnar fragment.
        assert plan.index("Materialize") < plan.index("Project")
        assert plan.index("Project") < plan.index("TopK")
        assert plan.index("TopK") < plan.index("Filter")

    def test_tagged_relation_stays_on_row_path(self):
        tags = TagSchema(
            [IndicatorDefinition("source", "STR")], allowed={"a": ["source"]}
        )
        tagged = TaggedRelation(SCHEMA, tags)
        for i in range(100):
            tagged.insert(
                {
                    "a": QualityCell(i, [IndicatorValue("source", "s1")]),
                    "b": QualityCell(i % 7),
                    "c": QualityCell("x"),
                }
            )
        plan = explain("SELECT a FROM t WHERE a > 10", tagged)
        assert "columnar" not in plan

    def test_aggregate_above_columnar_filter(self):
        plan = explain(
            "SELECT COUNT(*) AS n FROM t WHERE a > 10", make_relation(200)
        )
        # The aggregate needs rows; the filter below it still vectorizes.
        assert "Aggregate" in plan
        assert "Materialize [columnar -> rows]" in plan
        assert plan.index("Aggregate") < plan.index("Materialize")

    def test_distinct_above_columnar_fragment(self):
        plan = explain(
            "SELECT DISTINCT c FROM t WHERE a > 10", make_relation(200)
        )
        assert "Distinct" in plan
        assert "Materialize [columnar -> rows]" in plan

    def test_escape_hatch_forces_row_plans(self):
        relation = make_relation(200)
        plan = explain(
            "SELECT a FROM t WHERE a > 10", relation, columnar=False
        )
        assert "columnar" not in plan

    def test_escape_hatch_same_result(self):
        relation = make_relation(200)
        sql = "SELECT a, c FROM t WHERE b >= 2 ORDER BY a DESC, c LIMIT 9"
        fast = execute(sql, relation)
        slow = execute(sql, relation, columnar=False)
        assert [r.values_tuple() for r in fast] == [
            r.values_tuple() for r in slow
        ]


class TestExplainAnalyze:
    def test_columnar_operators_annotated(self):
        relation = make_relation(200)
        lines = [
            row["plan"]
            for row in execute(
                "EXPLAIN ANALYZE SELECT a FROM t WHERE a > 10", relation
            )
        ]
        text = "\n".join(lines)
        assert "batch=columnar" in text
        scan_line = next(l for l in lines if "Scan [t (plain, columnar)]" in l)
        assert "rows=200" in scan_line
        assert "columns=3" in scan_line
        filter_line = next(l for l in lines if l.lstrip("│├└─ ").startswith("Filter"))
        assert "rows=189" in filter_line
        assert "batch=columnar" in filter_line
        materialize_line = next(l for l in lines if "Materialize" in l)
        assert "rows=189" in materialize_line
        assert "batch=columnar" not in materialize_line

    def test_stats_collector_sees_columnar_tree(self):
        relation = make_relation(200)
        collector = StatsCollector()
        execute("SELECT a FROM t WHERE a > 10", relation, stats=collector)
        text = "\n".join(collector.execution.render_lines())
        assert "batch=columnar" in text


class TestSelectionVectorEdgeCases:
    SQL = "SELECT a FROM t WHERE {where}"

    def run_both(self, sql, relation):
        clear_plan_cache()
        fast = execute(sql, relation)
        slow = execute(sql, relation, columnar=False)
        assert [r.values_tuple() for r in fast] == [
            r.values_tuple() for r in slow
        ]
        return fast

    def test_empty_result(self):
        result = self.run_both(
            "SELECT a FROM t WHERE a > 100000", make_relation(100)
        )
        assert len(result) == 0

    def test_all_pass(self):
        result = self.run_both(
            "SELECT a FROM t WHERE a >= 0", make_relation(100)
        )
        assert len(result) == 100

    def test_null_heavy_column(self):
        relation = Relation.from_tuples(
            SCHEMA,
            [(i, None, None if i % 2 else "x") for i in range(100)],
        )
        result = self.run_both("SELECT a FROM t WHERE b >= 0", relation)
        assert len(result) == 0  # NULL never compares true
        kept = self.run_both("SELECT a FROM t WHERE b IS NULL", relation)
        assert len(kept) == 100

    def test_not_over_nulls_passes_them(self):
        relation = Relation.from_tuples(
            SCHEMA, [(i, None if i % 2 else 1, "x") for i in range(100)]
        )
        # NOT(b = 1): rows with NULL b fail the inner test, so NOT keeps
        # them — the columnar complement must match.
        result = self.run_both("SELECT a FROM t WHERE NOT (b = 1)", relation)
        assert len(result) == 50

    def test_or_preserves_row_order(self):
        relation = make_relation(150)
        result = self.run_both(
            "SELECT a FROM t WHERE c = 'z' OR a < 20", relation
        )
        values = [row["a"] for row in result]
        assert values == sorted(values)  # ascending row order == a order

    def test_in_and_not_in(self):
        relation = make_relation(150)
        self.run_both("SELECT a FROM t WHERE c IN ('x', 'q')", relation)
        self.run_both("SELECT a FROM t WHERE b NOT IN (1, 2)", relation)

    def test_column_vs_column(self):
        relation = make_relation(150)
        self.run_both("SELECT a FROM t WHERE b < a", relation)

    def test_delete_then_scan_alignment(self):
        # A cached columnar plan re-executed after deletes must rebuild
        # the value store (version-gated) and return the live rows.
        relation = make_relation(200)
        sql = "SELECT a FROM t WHERE a >= 0"
        clear_plan_cache()
        first = execute(sql, relation)
        assert len(first) == 200
        relation.delete(lambda row: row["a"] < 100)
        second = execute(sql, relation)  # cache hit, fresh arrays
        assert len(second) == 100
        assert [row["a"] for row in second] == list(range(100, 200))

    def test_insert_then_scan_sees_new_rows(self):
        relation = make_relation(100)
        sql = "SELECT a FROM t WHERE a >= 0"
        clear_plan_cache()
        assert len(execute(sql, relation)) == 100
        relation.insert({"a": 500, "b": 1, "c": "x"})
        assert len(execute(sql, relation)) == 101
