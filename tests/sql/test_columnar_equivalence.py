"""Columnar equivalence properties: columnar ≡ row-path ≡ naive.

The columnar access path must be invisible in every result: for any
generated statement over a plain relation, the planner's vectorized
path (column arrays + selection vectors, late materialization) has to
agree byte-for-byte with the row-at-a-time planned path, the direct
interpreter, and the naive AST-walking reference.

``COLUMNAR_MIN_ROWS`` is forced to 0 so even tiny generated relations
take the columnar path — otherwise the small random relations would
all be costed back onto the row path and the property would test
nothing.  The plan cache keys on the costing band through the same
module constant, so cached re-execution stays coherent under the
override.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.experiments.naive import naive_execute
from repro.sql import clear_plan_cache, execute
from repro.sql import optimizer

from tests.sql.test_planner_equivalence import (
    canonical,
    plain_relations,
    statements,
)


@pytest.fixture(autouse=True)
def columnar_everywhere(monkeypatch):
    monkeypatch.setattr(optimizer, "COLUMNAR_MIN_ROWS", 0)
    clear_plan_cache()
    yield
    clear_plan_cache()


def assert_columnar_three_way(sql, relation):
    clear_plan_cache()
    columnar_cold = canonical(execute(sql, relation))
    columnar_cached = canonical(execute(sql, relation))  # plan-cache hit
    row_planned = canonical(execute(sql, relation, columnar=False))
    unplanned = canonical(execute(sql, relation, planner=False))
    naive = canonical(naive_execute(sql, relation))
    assert columnar_cold == columnar_cached
    assert columnar_cold == row_planned
    assert columnar_cold == unplanned
    assert columnar_cold == naive


class TestColumnarEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(plain_relations(), statements(quality=False))
    def test_plain(self, relation, sql):
        assert_columnar_three_way(sql, relation)
