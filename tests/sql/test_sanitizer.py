"""Columnar sanitizer checks (armed by ``REPRO_VERIFY_PLANS``).

Unit tests drive the check functions directly with corrupted batches;
the end-to-end tests run real columnar statements with the sanitizer
wrappers installed and assert they stay silent on well-formed plans.
"""

import pytest

from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.sql import optimizer as optimizer_mod
from repro.sql.executor import execute
from repro.sql.physical import (
    ColumnarSanitizerError,
    _check_columnar_batch,
    _check_scan_indices,
    _fragment_ordered,
    sanitize_enabled,
)
from repro.sql.plan import Limit, Scan, TopK
from repro.sql.plancache import clear_plan_cache

T_SCHEMA = schema("t", [("a", "INT"), ("b", "STR")], key=["a"])


class TestScanIndexCheck:
    def test_ascending_in_bounds_passes(self):
        _check_scan_indices("QualityFilter", [0, 2, 5], 6)
        _check_scan_indices("QualityFilter", [], 0)

    def test_out_of_bounds_raises(self):
        with pytest.raises(ColumnarSanitizerError, match="out-of-bounds"):
            _check_scan_indices("QualityFilter", [0, 6], 6)
        with pytest.raises(ColumnarSanitizerError, match="out-of-bounds"):
            _check_scan_indices("QualityFilter", [-1], 6)

    def test_non_ascending_raises(self):
        with pytest.raises(ColumnarSanitizerError, match="ascending"):
            _check_scan_indices("QualityFilter", [3, 1], 6)
        with pytest.raises(ColumnarSanitizerError, match="ascending"):
            _check_scan_indices("QualityFilter", [2, 2], 6)


class TestBatchCheck:
    def test_well_formed_batch_passes(self):
        _check_columnar_batch(
            "Filter", T_SCHEMA, ([[1, 2, 3], ["x", "y", "z"]], [0, 2]), True
        )
        _check_columnar_batch(
            "Scan", T_SCHEMA, ([[1, 2], ["x", "y"]], None), True
        )

    def test_array_count_mismatch_raises(self):
        with pytest.raises(ColumnarSanitizerError, match="arrays"):
            _check_columnar_batch("Filter", T_SCHEMA, ([[1, 2]], None), True)

    def test_array_length_mismatch_raises(self):
        with pytest.raises(ColumnarSanitizerError, match="length"):
            _check_columnar_batch(
                "Filter", T_SCHEMA, ([[1, 2], ["x"]], None), True
            )

    def test_selection_out_of_bounds_raises(self):
        with pytest.raises(ColumnarSanitizerError, match="out-of-bounds"):
            _check_columnar_batch(
                "Filter", T_SCHEMA, ([[1, 2], ["x", "y"]], [0, 5]), True
            )

    def test_ordered_fragment_requires_ascending_selection(self):
        with pytest.raises(ColumnarSanitizerError):
            _check_columnar_batch(
                "Filter", T_SCHEMA, ([[1, 2, 3], ["x", "y", "z"]], [2, 0]),
                True,
            )

    def test_unordered_fragment_allows_key_order(self):
        # TopK emits selection vectors in key order, not row order.
        _check_columnar_batch(
            "TopK", T_SCHEMA, ([[1, 2, 3], ["x", "y", "z"]], [2, 0, 1]),
            False,
        )

    def test_unordered_fragment_rejects_duplicates(self):
        with pytest.raises(ColumnarSanitizerError):
            _check_columnar_batch(
                "TopK", T_SCHEMA, ([[1, 2, 3], ["x", "y", "z"]], [2, 2]),
                False,
            )


class TestFragmentOrder:
    def test_scan_and_row_preserving_operators_are_ordered(self):
        scan = Scan("t", columnar=True)
        assert _fragment_ordered(scan)
        assert _fragment_ordered(Limit(scan, 3))

    def test_topk_breaks_order_for_everything_above(self):
        from repro.sql.nodes import ColumnRef, OrderItem

        topk = TopK(
            Scan("t", columnar=True), (OrderItem(ColumnRef("a")),), 3
        )
        assert not _fragment_ordered(topk)
        assert not _fragment_ordered(Limit(topk, 2))


class TestEndToEnd:
    @pytest.fixture(autouse=True)
    def sanitized_columnar_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        monkeypatch.setattr(optimizer_mod, "COLUMNAR_MIN_ROWS", 0)
        clear_plan_cache()
        yield
        clear_plan_cache()

    def make_relation(self, n=30):
        relation = Relation(T_SCHEMA)
        for i in range(n):
            relation.insert({"a": i, "b": f"s{i % 5}"})
        return relation

    def test_flag_arms_sanitizer(self):
        assert sanitize_enabled()

    def test_columnar_statements_run_clean(self):
        relation = self.make_relation()
        result = execute("SELECT a FROM t WHERE b = 's1'", relation)
        assert len(result) == 6
        topk = execute(
            "SELECT a, b FROM t WHERE a > 3 ORDER BY a DESC LIMIT 4",
            relation,
        )
        assert [row["a"] for row in topk.rows] == [29, 28, 27, 26]

    def test_cached_sanitized_plan_reruns_clean(self):
        relation = self.make_relation()
        sql = "SELECT b FROM t WHERE a >= 25"
        first = execute(sql, relation)
        second = execute(sql, relation)
        assert len(first) == len(second) == 5
