"""Unit tests for the QSQL tokenizer."""

import pytest

from repro.sql.errors import SQLError
from repro.sql.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OPERATOR,
    PUNCT,
    STRING,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestTokenKinds:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.kind for t in tokens[:-1]] == [KEYWORD] * 3
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers(self):
        tokens = tokenize("co_name address2")
        assert all(t.kind == IDENT for t in tokens[:-1])

    def test_numbers(self):
        assert values("42 3.14") == [42, 3.14]
        assert isinstance(tokenize("42")[0].value, int)
        assert isinstance(tokenize("3.14")[0].value, float)

    def test_negative_number_in_value_context(self):
        tokens = tokenize("x > -5")
        assert tokens[2].kind == NUMBER
        assert tokens[2].value == -5

    def test_strings_with_escapes(self):
        assert values("'acct''g'") == ["acct'g"]
        assert values("'plain'") == ["plain"]
        assert values("''") == [""]

    def test_unterminated_string(self):
        with pytest.raises(SQLError):
            tokenize("'oops")

    def test_operators_longest_first(self):
        assert values("<= >= <> != = < >") == [
            "<=", ">=", "<>", "!=", "=", "<", ">",
        ]

    def test_punctuation(self):
        tokens = tokenize("( ) , . *")
        assert all(t.kind == PUNCT for t in tokens[:-1])

    def test_eof_appended(self):
        assert tokenize("x")[-1].kind == EOF

    def test_unknown_character(self):
        with pytest.raises(SQLError):
            tokenize("x @ y")

    def test_positions_recorded(self):
        tokens = tokenize("SELECT a")
        assert tokens[0].position == 0
        assert tokens[1].position == 7


class TestRealisticQueries:
    def test_full_query_tokenizes(self):
        text = (
            "SELECT co_name FROM customer WHERE employees > 100 AND "
            "QUALITY(employees.source) <> 'estimate' ORDER BY co_name LIMIT 5"
        )
        tokens = tokenize(text)
        assert tokens[-1].kind == EOF
        keyword_values = [t.value for t in tokens if t.kind == KEYWORD]
        assert "QUALITY" in keyword_values
        assert "LIMIT" in keyword_values
