"""Per-rule optimizer tests: each rewrite fires AND preserves results."""

from __future__ import annotations

import pytest

from repro.experiments.naive import naive_equi_join
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema
from repro.sql import execute, logical_plan, optimize, parse
from repro.sql.nodes import ColumnRef, Comparison, Literal, SelectItem
from repro.sql.optimizer import (
    PlanContext,
    choose_build_side,
    fold_constants,
    fuse_topk,
    push_quality_predicates,
)
from repro.sql.physical import execute_plan
from repro.sql.plan import (
    Filter,
    HashJoin,
    Project,
    QualityFilter,
    Scan,
    Sort,
    TopK,
    Limit,
)
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import (
    IndicatorDefinition,
    IndicatorValue,
    TagSchema,
)
from repro.tagging.relation import TaggedRelation


def find(plan, kind):
    """All nodes of ``kind`` in the plan tree, preorder."""
    found = []

    def walk(node):
        if isinstance(node, kind):
            found.append(node)
        for child in node.children():
            walk(child)

    walk(plan)
    return found


@pytest.fixture
def tagged():
    schema = RelationSchema(
        "t", [Column("a", "INT"), Column("b", "INT"), Column("c", "STR")]
    )
    tags = TagSchema(
        [
            IndicatorDefinition("source", "STR"),
            IndicatorDefinition("age", "INT"),
        ],
        allowed={"a": ["source", "age"], "c": ["source"]},
    )
    relation = TaggedRelation(schema, tags)
    for index in range(12):
        relation.insert(
            {
                "a": QualityCell(
                    index,
                    [
                        IndicatorValue("source", "s1" if index % 2 else "s2"),
                        IndicatorValue("age", index % 4),
                    ],
                ),
                "b": QualityCell(index * 2),
                "c": QualityCell(
                    "xyz"[index % 3], [IndicatorValue("source", "s1")]
                ),
            }
        )
    return relation


def plan_for(sql, relation):
    statement = parse(sql)
    return logical_plan(statement, isinstance(relation, TaggedRelation))


def context_for(relation):
    return PlanContext.from_relations({relation.schema.name: relation})


def same_results(sql, relation):
    planned = execute(sql, relation)
    unplanned = execute(sql, relation, planner=False)
    assert planned.schema.column_names == unplanned.schema.column_names
    assert [r.values_tuple() for r in planned] == [
        r.values_tuple() for r in unplanned
    ]
    return planned


class TestFoldConstants:
    def test_true_conjunct_folds_away(self, tagged):
        plan = plan_for("SELECT * FROM t WHERE 1 = 1 AND a > 2", tagged)
        folded = fold_constants(plan)
        (filter_node,) = find(folded, Filter)
        assert filter_node.predicate == Comparison(
            ">", ColumnRef("a"), Literal(2)
        )
        same_results("SELECT * FROM t WHERE 1 = 1 AND a > 2", tagged)

    def test_tautology_drops_filter(self, tagged):
        folded = fold_constants(plan_for("SELECT * FROM t WHERE 1 = 1", tagged))
        assert find(folded, Filter) == []
        assert len(same_results("SELECT * FROM t WHERE 1 = 1", tagged)) == len(
            tagged
        )

    def test_contradiction_stays_and_yields_empty(self, tagged):
        folded = fold_constants(plan_for("SELECT * FROM t WHERE 1 = 2", tagged))
        (filter_node,) = find(folded, Filter)
        assert filter_node.predicate == Literal(False)
        assert len(same_results("SELECT * FROM t WHERE 1 = 2", tagged)) == 0

    def test_null_comparison_folds_false(self, tagged):
        folded = fold_constants(
            plan_for("SELECT * FROM t WHERE NULL <> 1", tagged)
        )
        (filter_node,) = find(folded, Filter)
        assert filter_node.predicate == Literal(False)


class TestQualityPushdown:
    def test_routes_into_columnar_scan(self, tagged):
        sql = "SELECT * FROM t WHERE QUALITY(a.source) = 's1' AND b > 0"
        optimized = optimize(plan_for(sql, tagged), context_for(tagged))
        (quality,) = find(optimized, QualityFilter)
        assert quality.constraints == (("a", "source", "==", "s1"),)
        assert isinstance(quality.child, Scan) and quality.child.tagged
        # The value conjunct stays behind as a residual filter.
        (residual,) = find(optimized, Filter)
        assert residual.predicate == Comparison(
            ">", ColumnRef("b"), Literal(0)
        )
        same_results(sql, tagged)

    def test_in_list_routes(self, tagged):
        sql = "SELECT a FROM t WHERE QUALITY(a.age) IN (0, 1)"
        optimized = optimize(plan_for(sql, tagged), context_for(tagged))
        (quality,) = find(optimized, QualityFilter)
        assert quality.constraints == (("a", "age", "in", (0, 1)),)
        same_results(sql, tagged)

    def test_flipped_literal_side_routes(self, tagged):
        sql = "SELECT * FROM t WHERE 2 >= QUALITY(a.age)"
        optimized = optimize(plan_for(sql, tagged), context_for(tagged))
        (quality,) = find(optimized, QualityFilter)
        assert quality.constraints == (("a", "age", "<=", 2),)
        same_results(sql, tagged)

    def test_null_literal_not_routed(self, tagged):
        # `QUALITY(x) != NULL` never matches per-cell; the store would
        # match every tagged row.  Must stay a residual filter.
        sql = "SELECT * FROM t WHERE QUALITY(a.source) <> NULL"
        optimized = optimize(plan_for(sql, tagged), context_for(tagged))
        assert find(optimized, QualityFilter) == []
        assert len(same_results(sql, tagged)) == 0

    def test_unknown_indicator_not_routed(self, tagged):
        # b allows no indicators: per-cell reads NULL (no match); the
        # store would raise UnknownIndicatorError.  Must not route.
        sql = "SELECT * FROM t WHERE QUALITY(b.source) = 's1'"
        optimized = optimize(plan_for(sql, tagged), context_for(tagged))
        assert find(optimized, QualityFilter) == []
        assert len(same_results(sql, tagged)) == 0

    def test_disjunction_not_routed(self, tagged):
        sql = (
            "SELECT * FROM t "
            "WHERE QUALITY(a.source) = 's1' OR QUALITY(a.age) = 0"
        )
        optimized = optimize(plan_for(sql, tagged), context_for(tagged))
        assert find(optimized, QualityFilter) == []
        same_results(sql, tagged)

    def test_rule_direct_shape(self, tagged):
        plan = plan_for(
            "SELECT * FROM t WHERE QUALITY(a.age) < 2", tagged
        )
        pushed = push_quality_predicates(plan, context_for(tagged))
        (quality,) = find(pushed, QualityFilter)
        assert quality.constraints == (("a", "age", "<", 2),)
        assert find(pushed, Filter) == []  # fully absorbed


class TestTopKFusion:
    def test_limit_over_sort_fuses(self, tagged):
        sql = "SELECT * FROM t ORDER BY b DESC LIMIT 3"
        optimized = optimize(plan_for(sql, tagged), context_for(tagged))
        (topk,) = find(optimized, TopK)
        assert topk.count == 3
        assert find(optimized, Sort) == []
        assert find(optimized, Limit) == []
        same_results(sql, tagged)

    def test_fuses_through_projection(self, tagged):
        sql = "SELECT a FROM t ORDER BY b LIMIT 4"
        optimized = optimize(plan_for(sql, tagged), context_for(tagged))
        (project,) = find(optimized, Project)
        assert isinstance(project.child, TopK)
        same_results(sql, tagged)

    def test_rule_direct(self):
        plan = Limit(Sort(Scan("t"), order_by=()), count=5)
        fused = fuse_topk(plan)
        assert isinstance(fused, TopK) and fused.count == 5

    def test_ties_match_stable_sort(self, tagged):
        # Heap top-k must keep the stable-sort tie order.
        sql = "SELECT * FROM t ORDER BY c LIMIT 6"
        same_results(sql, tagged)


class TestJoinRules:
    def setup_method(self):
        self.left = Relation.from_tuples(
            RelationSchema(
                "l", [Column("k", "INT"), Column("lv", "STR")]
            ),
            [(i % 4, f"L{i}") for i in range(20)],
        )
        self.right = Relation.from_tuples(
            RelationSchema(
                "r", [Column("rk", "INT"), Column("rv", "INT")]
            ),
            [(i % 4, i) for i in range(8)],
        )
        self.relations = {"l": self.left, "r": self.right}
        self.context = PlanContext.from_relations(self.relations)

    def join_plan(self):
        return HashJoin(Scan("l"), Scan("r"), on=(("k", "rk"),))

    def expected_join(self):
        return naive_equi_join(
            self.left, self.right, [("k", "rk")], "l_r"
        )

    def test_build_side_prefers_smaller_input(self):
        chosen = optimize(self.join_plan(), self.context)
        assert chosen.build_side == "right"  # 8 rows < 20 rows
        flipped = optimize(
            HashJoin(Scan("r"), Scan("l"), on=(("rk", "k"),)), self.context
        )
        assert flipped.build_side == "left"

    def test_build_side_direct_and_results_agree(self):
        plan = choose_build_side(self.join_plan(), self.context)
        result = execute_plan(plan, self.relations)
        expected = self.expected_join()
        assert sorted(r.values_tuple() for r in result) == sorted(
            r.values_tuple() for r in expected
        )
        # Forcing the other side changes row order, never the bag.
        from dataclasses import replace

        other = replace(plan, build_side="left")
        flipped = execute_plan(other, self.relations)
        assert sorted(r.values_tuple() for r in flipped) == sorted(
            r.values_tuple() for r in expected
        )

    def test_value_predicates_push_below_join(self):
        predicate = Comparison(">", ColumnRef("rv"), Literal(3))
        plan = Filter(self.join_plan(), predicate)
        optimized = optimize(plan, self.context)
        # The filter moved below the join, onto the right input.
        (join,) = find(optimized, HashJoin)
        (pushed,) = find(optimized, Filter)
        assert pushed in (join.left, join.right)
        assert pushed.predicate == predicate
        result = execute_plan(optimized, self.relations)
        expected = [
            r.values_tuple()
            for r in self.expected_join()
            if r["rv"] > 3
        ]
        assert sorted(r.values_tuple() for r in result) == sorted(expected)

    def test_projection_prunes_join_inputs(self):
        items = (SelectItem(ColumnRef("k")), SelectItem(ColumnRef("rv")))
        plan = Project(self.join_plan(), items)
        optimized = optimize(plan, self.context)
        (join,) = find(optimized, HashJoin)
        # lv is never consumed: the left input was narrowed to drop it.
        assert join.left_columns == ("k",)
        assert "rk" in join.right_columns
        projects = find(optimized, Project)
        assert len(projects) >= 2  # the top project plus pruned side(s)
        result = execute_plan(optimized, self.relations)
        assert result.schema.column_names == ("k", "rv")
        expected = sorted(
            (r["k"], r["rv"]) for r in self.expected_join()
        )
        assert sorted(r.values_tuple() for r in result) == expected


class TestExplain:
    def test_explain_renders_optimized_plan(self, tagged):
        result = execute(
            "EXPLAIN SELECT a, b FROM t "
            "WHERE QUALITY(a.source) = 's1' AND b > 2 "
            "ORDER BY b DESC LIMIT 3",
            tagged,
        )
        assert result.schema.column_names == ("plan",)
        text = "\n".join(row["plan"] for row in result)
        assert "Project" in text
        assert "TopK" in text
        assert "QualityFilter" in text and "columnar scan" in text
        assert "Scan [t (tagged)]" in text

    def test_explain_rejected_from_unplanned_path(self, tagged):
        # There is no plan to render on the planner-free path; asking
        # for one is a contradiction and fails loudly (DQ209) instead
        # of silently routing through the planner anyway.
        import pytest

        from repro.analysis.diagnostics import QueryAnalysisError

        sql = "EXPLAIN SELECT * FROM t WHERE a > 1"
        with pytest.raises(QueryAnalysisError) as info:
            execute(sql, tagged, planner=False)
        assert [d.code for d in info.value.diagnostics] == ["DQ209"]
