"""Unit tests for the polygen ↔ tagging bridge."""

import pytest

from repro.polygen.bridge import polygen_to_tagged, tagged_to_polygen
from repro.polygen.model import PolygenCell, PolygenRelation
from repro.relational.schema import schema
from repro.tagging.query import QualityQuery
from repro.tagging.relation import TaggedRelation


@pytest.fixture
def polygen_quotes():
    rel = PolygenRelation(
        schema("quotes", [("ticker", "STR"), ("price", "FLOAT")])
    )
    rel.insert(
        {
            "ticker": PolygenCell("FRT", {"reuters"}),
            "price": PolygenCell(100.0, {"reuters"}),
        }
    )
    rel.insert(
        {
            "ticker": PolygenCell("NUT", {"nexis", "reuters"}),
            "price": PolygenCell(50.0, {"nexis", "reuters"}, {"branch_fax"}),
        }
    )
    rel.insert(
        {
            "ticker": PolygenCell("ZZZ", frozenset()),
            "price": PolygenCell(None, frozenset()),
        }
    )
    return rel


class TestPolygenToTagged:
    def test_single_source_scalar_tag(self, polygen_quotes):
        tagged = polygen_to_tagged(polygen_quotes)
        assert tagged.rows[0]["price"].tag_value("source") == "reuters"

    def test_corroborated_sources_joined_sorted(self, polygen_quotes):
        tagged = polygen_to_tagged(polygen_quotes)
        assert tagged.rows[1]["price"].tag_value("source") == "nexis+reuters"
        meta = tagged.rows[1]["price"].tag("source").meta_dict()
        assert meta["originating_count"] == 2

    def test_intermediate_sources_tagged(self, polygen_quotes):
        tagged = polygen_to_tagged(polygen_quotes)
        assert (
            tagged.rows[1]["price"].tag_value("intermediate_sources")
            == "branch_fax"
        )
        assert not tagged.rows[0]["price"].has_tag("intermediate_sources")

    def test_untracked_cell_untagged(self, polygen_quotes):
        tagged = polygen_to_tagged(polygen_quotes)
        assert tagged.rows[2]["price"].tags == ()

    def test_values_preserved(self, polygen_quotes):
        tagged = polygen_to_tagged(polygen_quotes)
        assert [row.value("price") for row in tagged] == [100.0, 50.0, None]

    def test_quality_layer_composes(self, polygen_quotes):
        """The point of the bridge: federation results flow into the
        quality layer's filtering machinery."""
        tagged = polygen_to_tagged(polygen_quotes)
        reuters_only = (
            QualityQuery(tagged)
            .require("price", "source", "==", "reuters")
            .values()
        )
        assert [v["ticker"] for v in reuters_only] == ["FRT"]

    def test_qsql_composes(self, polygen_quotes):
        from repro.sql import execute

        tagged = polygen_to_tagged(polygen_quotes)
        result = execute(
            "SELECT ticker FROM quotes WHERE "
            "QUALITY(price.source) = 'nexis+reuters'",
            tagged,
        )
        assert [row.value("ticker") for row in result] == ["NUT"]


class TestRoundTrip:
    def test_round_trip_preserves_sets(self, polygen_quotes):
        back = tagged_to_polygen(polygen_to_tagged(polygen_quotes))
        for original, restored in zip(polygen_quotes, back):
            for column in ("ticker", "price"):
                assert (
                    restored[column].originating
                    == original[column].originating
                )
                assert (
                    restored[column].intermediate
                    == original[column].intermediate
                )
                assert restored[column].value == original[column].value

    def test_federation_to_quality_pipeline(self):
        """Integration: federation union → bridge → quality filter."""
        from repro.polygen.federation import Federation
        from repro.relational.catalog import Database

        federation = Federation()
        for name, price in (("feed_a", 10.0), ("feed_b", 10.0)):
            db = Database(name)
            db.create_relation(
                schema("quotes", [("ticker", "STR"), ("price", "FLOAT")])
            )
            db.insert("quotes", {"ticker": "FRT", "price": price})
            federation.register(db)
        merged = federation.union_all("quotes")
        tagged = polygen_to_tagged(merged)
        # The corroborated fact carries both feeds in its source tag.
        assert tagged.rows[0]["price"].tag_value("source") == "feed_a+feed_b"
