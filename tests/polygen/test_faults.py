"""Unit tests for fault injection and the unreliable-source adapter."""

import pytest

from repro.errors import (
    CircuitOpenError,
    InjectedFaultError,
    SourceUnavailableError,
    UnknownRelationError,
)
from repro.obs import metrics as obs_metrics
from repro.polygen.faults import FaultInjector, SourceReport, UnreliableSource
from repro.polygen.federation import LocalDatabase
from repro.polygen.retry import CircuitBreaker, ManualClock, RetryPolicy
from repro.relational.catalog import Database
from repro.relational.schema import schema


def quote_db(name, rows=(("FRT", 100.0), ("NUT", 50.0))):
    db = Database(name)
    db.create_relation(
        schema("quotes", [("ticker", "STR"), ("price", "FLOAT")], key=["ticker"])
    )
    for ticker, price in rows:
        db.insert("quotes", {"ticker": ticker, "price": price})
    return db


def make_source(
    error_rate=0.0,
    seed=0,
    max_attempts=3,
    breaker=None,
    latency=0.0,
    clock=None,
):
    clock = clock if clock is not None else ManualClock()
    injector = FaultInjector(
        error_rate=error_rate, latency=latency, seed=seed, sleep=clock.sleep
    )
    source = UnreliableSource(
        LocalDatabase(quote_db("feed")),
        injector=injector,
        retry=RetryPolicy(
            max_attempts=max_attempts,
            base_delay=0.1,
            sleep=clock.sleep,
            clock=clock,
        ),
        breaker=breaker,
        wall_clock=clock,
    )
    return source, injector, clock


class TestFaultInjector:
    def test_zero_rate_never_fails(self):
        injector = FaultInjector(error_rate=0.0, seed=1)
        for _ in range(50):
            assert injector.call("s", "op", lambda: 42) == 42
        assert injector.failures_for("s") == 0
        assert injector.calls_for("s") == 50

    def test_full_rate_always_fails(self):
        injector = FaultInjector(error_rate=1.0, seed=1)
        with pytest.raises(InjectedFaultError):
            injector.call("s", "op", lambda: 42)
        assert injector.failures_for("s") == 1

    def test_deterministic_per_seed(self):
        def decisions(seed):
            injector = FaultInjector(error_rate=0.5, seed=seed)
            out = []
            for _ in range(30):
                try:
                    injector.call("s", "op", lambda: None)
                    out.append(False)
                except InjectedFaultError:
                    out.append(True)
            return out

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_reset_replays_sequence(self):
        injector = FaultInjector(error_rate=0.5, seed=3)
        first = []
        for _ in range(10):
            try:
                injector.call("s", "op", lambda: None)
                first.append(False)
            except InjectedFaultError:
                first.append(True)
        injector.reset()
        assert injector.log == []
        second = []
        for _ in range(10):
            try:
                injector.call("s", "op", lambda: None)
                second.append(False)
            except InjectedFaultError:
                second.append(True)
        assert first == second

    def test_latency_advances_injected_clock(self):
        clock = ManualClock()
        injector = FaultInjector(latency=0.25, sleep=clock.sleep)
        injector.call("s", "op", lambda: None)
        injector.call("s", "op", lambda: None)
        assert clock.now == pytest.approx(0.5)

    @pytest.mark.parametrize("kwargs", [{"error_rate": -0.1}, {"error_rate": 1.1}, {"latency": -1}])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjector(**kwargs)


class TestUnreliableSource:
    def test_duck_types_local_database(self):
        source, _, _ = make_source()
        assert source.name == "feed"
        assert source.credibility == 1.0
        assert source.database.name == "feed"

    def test_ok_status_first_try(self):
        source, _, clock = make_source(error_rate=0.0)
        clock.advance(123.0)
        relation, report = source.export_with_report("quotes")
        assert len(relation) == 2
        assert report.status == "ok"
        assert report.attempts == 1
        assert report.ok and not report.failed
        assert report.retrieved_at == pytest.approx(123.0)

    def test_recovered_status_after_retries(self):
        # seed 1 at rate 0.5: fail, ok → recovered on attempt 2.
        source, injector, _ = make_source(error_rate=0.5, seed=1)
        relation, report = source.export_with_report("quotes")
        assert relation is not None
        assert report.status == "recovered"
        assert report.attempts == injector.calls_for("feed")
        assert report.attempts > 1

    def test_failed_status_matches_injected_failures(self):
        source, injector, _ = make_source(error_rate=1.0, max_attempts=4)
        relation, report = source.export_with_report("quotes")
        assert relation is None
        assert report.status == "failed"
        assert report.attempts == 4
        assert injector.failures_for("feed") == 4
        assert "injected fault" in report.error

    def test_export_raises_source_unavailable(self):
        source, _, _ = make_source(error_rate=1.0)
        with pytest.raises(SourceUnavailableError) as info:
            source.export("quotes")
        assert info.value.source == "feed"
        assert info.value.attempts == 3

    def test_semantic_errors_not_retried(self):
        source, injector, _ = make_source(error_rate=0.0)
        with pytest.raises(UnknownRelationError):
            source.export("ghost")
        # One underlying call only — no retry can fix an unknown relation.
        assert injector.calls_for("feed") == 1

    def test_breaker_open_skips_source(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_time=5.0, clock=clock
        )
        source, injector, _ = make_source(
            error_rate=1.0, breaker=breaker, clock=clock
        )
        relation, report = source.export_with_report("quotes")
        assert relation is None
        assert report.status == "failed"
        assert breaker.state == CircuitBreaker.OPEN
        # Attempts stopped when the breaker opened, not at max_attempts.
        assert report.attempts == 2
        calls_before = injector.calls_for("feed")
        relation, report = source.export_with_report("quotes")
        assert report.status == "circuit_open"
        assert report.attempts == 0
        assert injector.calls_for("feed") == calls_before  # never touched
        with pytest.raises(CircuitOpenError):
            source.export("quotes")

    def test_breaker_recovery_probe_closes_again(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_time=5.0, clock=clock
        )
        source, injector, _ = make_source(
            error_rate=1.0, breaker=breaker, clock=clock
        )
        source.export_with_report("quotes")
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(5.0)
        injector.error_rate = 0.0  # the source healed
        relation, report = source.export_with_report("quotes")
        assert relation is not None
        assert report.status == "ok"
        assert breaker.state == CircuitBreaker.CLOSED

    def test_retry_latency_measured_through_injected_clock(self):
        source, _, clock = make_source(
            error_rate=0.5, seed=1, latency=0.2
        )
        source.export_with_report("quotes")
        # Two injector calls (0.2 each) + one backoff (0.1).
        assert clock.now == pytest.approx(0.5)


class TestMetrics:
    def setup_method(self):
        obs_metrics.global_registry().clear()

    def teardown_method(self):
        obs_metrics.global_registry().clear()

    def test_counters_and_histogram_when_enabled(self):
        source, _, _ = make_source(error_rate=1.0, max_attempts=3)
        with obs_metrics.instrumented() as registry:
            source.export_with_report("quotes")
        assert registry.get("federation.source.attempts").value == 3
        assert registry.get("federation.source.failures").value == 3
        assert registry.get("federation.retries").value == 2
        assert registry.get("federation.source.unavailable").value == 1
        latency = registry.get("federation.source_seconds.feed")
        assert latency.count == 1

    def test_breaker_state_gauge(self):
        clock = ManualClock()
        breaker = CircuitBreaker(
            failure_threshold=2, recovery_time=5.0, clock=clock
        )
        source, _, _ = make_source(
            error_rate=1.0, breaker=breaker, clock=clock
        )
        with obs_metrics.instrumented() as registry:
            source.export_with_report("quotes")
        assert registry.get("federation.breaker_state.feed").value == 2.0

    def test_silent_when_disabled(self):
        source, _, _ = make_source(error_rate=1.0)
        source.export_with_report("quotes")
        assert obs_metrics.global_registry().get("federation.source.attempts") is None


class TestSourceReport:
    def test_describe_mentions_error(self):
        report = SourceReport("feed", "failed", 3, error="boom")
        assert "feed" in report.describe()
        assert "boom" in report.describe()

    def test_ok_and_failed_partition(self):
        assert SourceReport("s", "ok", 1).ok
        assert SourceReport("s", "recovered", 2).ok
        assert SourceReport("s", "failed", 3).failed
        assert SourceReport("s", "circuit_open", 0).failed
