"""Unit tests for polygen cells, rows, and relations."""

import pytest

from repro.errors import PolygenError, UnknownColumnError
from repro.polygen.model import PolygenCell, PolygenRelation, PolygenRow
from repro.relational.relation import Relation
from repro.relational.schema import schema


@pytest.fixture
def quote_schema():
    return schema("quotes", [("ticker", "STR"), ("price", "FLOAT")])


class TestPolygenCell:
    def test_defaults(self):
        cell = PolygenCell(700)
        assert cell.originating == frozenset()
        assert cell.intermediate == frozenset()

    def test_with_intermediate_unions(self):
        cell = PolygenCell(1, originating={"a"})
        extended = cell.with_intermediate({"b", "c"})
        assert extended.intermediate == {"b", "c"}
        assert cell.intermediate == frozenset()  # original untouched

    def test_with_intermediate_noop_returns_self(self):
        cell = PolygenCell(1, intermediate={"b"})
        assert cell.with_intermediate({"b"}) is cell

    def test_merged_with_unions_sources(self):
        a = PolygenCell(1, originating={"x"})
        b = PolygenCell(1, originating={"y"}, intermediate={"z"})
        merged = a.merged_with(b)
        assert merged.originating == {"x", "y"}
        assert merged.intermediate == {"z"}

    def test_merged_with_different_values_rejected(self):
        with pytest.raises(PolygenError):
            PolygenCell(1).merged_with(PolygenCell(2))

    def test_all_sources(self):
        cell = PolygenCell(1, originating={"a"}, intermediate={"b"})
        assert cell.all_sources == {"a", "b"}

    def test_render(self):
        assert PolygenCell(700, originating={"db1"}).render() == "700 {db1}"
        both = PolygenCell(700, originating={"db1"}, intermediate={"db2"})
        assert both.render() == "700 {db1 | db2}"

    def test_hashable(self):
        assert len({PolygenCell(1, {"a"}), PolygenCell(1, {"a"})}) == 1


class TestPolygenRow:
    def test_access(self, quote_schema):
        row = PolygenRow(
            quote_schema,
            {"ticker": PolygenCell("FRT", {"db1"}), "price": 10.0},
        )
        assert row.value("ticker") == "FRT"
        assert row["ticker"].originating == {"db1"}
        assert row["price"].originating == frozenset()

    def test_unknown_column(self, quote_schema):
        with pytest.raises(UnknownColumnError):
            PolygenRow(quote_schema, {"bogus": 1})

    def test_row_sources(self, quote_schema):
        row = PolygenRow(
            quote_schema,
            {
                "ticker": PolygenCell("FRT", {"a"}),
                "price": PolygenCell(1.0, {"b"}, {"c"}),
            },
        )
        assert row.row_sources() == {"a", "b", "c"}

    def test_with_intermediate_all_cells(self, quote_schema):
        row = PolygenRow(
            quote_schema, {"ticker": PolygenCell("FRT", {"a"}), "price": 1.0}
        )
        extended = row.with_intermediate({"z"})
        assert all(cell.intermediate == {"z"} for cell in extended.cells)


class TestPolygenRelation:
    def test_from_relation_tags_all_cells(self, quote_schema):
        plain = Relation.from_tuples(quote_schema, [("FRT", 10.0)])
        tagged = PolygenRelation.from_relation(plain, "db1")
        assert tagged.rows[0]["price"].originating == {"db1"}

    def test_all_sources(self, quote_schema):
        rel = PolygenRelation(quote_schema)
        rel.insert({"ticker": PolygenCell("A", {"x"}), "price": 1.0})
        rel.insert({"ticker": PolygenCell("B", {"y"}, {"z"}), "price": 2.0})
        assert rel.all_sources() == {"x", "y", "z"}

    def test_render(self, quote_schema):
        rel = PolygenRelation(quote_schema)
        rel.insert({"ticker": PolygenCell("A", {"x"}), "price": 1.0})
        text = rel.render(title="quotes")
        assert "A {x}" in text
        assert "1.0 {-}" in text
