"""Property-based tests for polygen source-propagation invariants.

Core invariants from the polygen model:

1. operators never invent sources — every source in the output appears
   somewhere in the inputs;
2. originating sources of an output cell are exactly those of the input
   cell it derives from (only union merges them);
3. operators only ever *add* intermediate sources, never remove them.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polygen import algebra
from repro.polygen.model import PolygenCell, PolygenRelation
from repro.relational.schema import schema

DB_NAMES = st.sets(
    st.sampled_from(["db1", "db2", "db3", "db4"]), min_size=0, max_size=3
)
VALUES = st.integers(min_value=0, max_value=20)


@st.composite
def polygen_relations(draw, max_rows: int = 8) -> PolygenRelation:
    rel = PolygenRelation(schema("t", [("k", "INT"), ("v", "INT")]))
    rows = draw(
        st.lists(
            st.tuples(VALUES, VALUES, DB_NAMES, DB_NAMES),
            max_size=max_rows,
        )
    )
    for k, v, orig, inter in rows:
        rel.insert(
            {
                "k": PolygenCell(k, orig, inter),
                "v": PolygenCell(v, orig, inter),
            }
        )
    return rel


def all_sources(rel: PolygenRelation) -> frozenset:
    return rel.all_sources()


class TestNoInventedSources:
    @given(polygen_relations())
    def test_select(self, rel):
        result = algebra.select(
            rel, lambda r: r.value("v") % 2 == 0, using=["v"]
        )
        assert all_sources(result) <= all_sources(rel)

    @given(polygen_relations())
    def test_project(self, rel):
        assert all_sources(algebra.project(rel, ["v"])) <= all_sources(rel)

    @given(polygen_relations(), polygen_relations())
    def test_union(self, a, b):
        assert all_sources(algebra.union(a, b)) <= all_sources(a) | all_sources(b)

    @settings(max_examples=30)
    @given(polygen_relations(max_rows=5), polygen_relations(max_rows=5))
    def test_join(self, a, b):
        b_renamed = algebra.rename(b, {"k": "k2", "v": "v2"}, new_name="u")
        joined = algebra.equi_join(a, b_renamed, on=[("v", "v2")])
        assert all_sources(joined) <= all_sources(a) | all_sources(b)


class TestIntermediateMonotonicity:
    @given(polygen_relations())
    def test_select_only_adds_intermediate(self, rel):
        result = algebra.select(rel, lambda r: True, using=["k"])
        for in_row, out_row in zip(rel, result):
            for column in ("k", "v"):
                assert in_row[column].intermediate <= out_row[column].intermediate
                assert in_row[column].originating == out_row[column].originating

    @given(polygen_relations())
    def test_select_intermediate_is_examined_union(self, rel):
        result = algebra.select(rel, lambda r: True, using=["k"])
        for in_row, out_row in zip(rel, result):
            expected = in_row["v"].intermediate | in_row["k"].originating
            assert out_row["v"].intermediate == expected


class TestUnionMergesDuplicates:
    @given(polygen_relations())
    def test_union_with_self_is_distinct(self, rel):
        merged = algebra.union(rel, rel)
        values = [row.values_tuple() for row in merged]
        assert len(values) == len(set(values))

    @given(polygen_relations())
    def test_union_preserves_value_set(self, rel):
        merged = algebra.union(rel, rel)
        assert {row.values_tuple() for row in merged} == {
            row.values_tuple() for row in rel
        }
