"""Unit tests for retry policies and circuit breakers (fake clock)."""

import pytest

from repro.errors import CircuitOpenError, InjectedFaultError, RetryExhaustedError
from repro.polygen.retry import CircuitBreaker, ManualClock, RetryPolicy


class Flaky:
    """A callable that fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures: int, value: str = "ok"):
        self.remaining = failures
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise InjectedFaultError(f"boom #{self.calls}")
        return self.value


class TestManualClock:
    def test_sleep_advances(self):
        clock = ManualClock()
        clock.sleep(1.5)
        assert clock() == 1.5
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1)


class TestRetryPolicy:
    def make(self, **kwargs):
        clock = ManualClock()
        policy = RetryPolicy(sleep=clock.sleep, clock=clock, **kwargs)
        return policy, clock

    def test_success_first_try(self):
        policy, clock = self.make(max_attempts=3)
        result, attempts = policy.run(Flaky(0))
        assert (result, attempts) == ("ok", 1)
        assert clock.now == 0.0  # no backoff slept

    def test_recovers_after_failures(self):
        policy, _ = self.make(max_attempts=3)
        result, attempts = policy.run(Flaky(2))
        assert (result, attempts) == ("ok", 3)

    def test_exponential_backoff_sequence(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=4,
            base_delay=0.1,
            multiplier=2.0,
            sleep=sleeps.append,
            clock=ManualClock(),
        )
        policy.run(Flaky(3))
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_max_delay_caps_backoff(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=5,
            base_delay=1.0,
            multiplier=10.0,
            max_delay=2.5,
            sleep=sleeps.append,
            clock=ManualClock(),
        )
        policy.run(Flaky(4))
        assert sleeps == pytest.approx([1.0, 2.5, 2.5, 2.5])

    def test_exhaustion_raises_with_cause(self):
        policy, _ = self.make(max_attempts=3)
        flaky = Flaky(99)
        with pytest.raises(RetryExhaustedError) as info:
            policy.run(flaky)
        assert flaky.calls == 3
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, InjectedFaultError)
        assert isinstance(info.value.__cause__, InjectedFaultError)

    def test_timeout_budget_abandons_retries(self):
        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=10,
            base_delay=1.0,
            multiplier=1.0,
            timeout=2.5,
            sleep=clock.sleep,
            clock=clock,
        )
        flaky = Flaky(99)
        with pytest.raises(RetryExhaustedError) as info:
            policy.run(flaky)
        # Attempts stop once the next backoff would blow the budget;
        # far fewer than max_attempts were made.
        assert flaky.calls < 10
        assert "budget" in str(info.value)

    def test_non_retryable_error_propagates(self):
        policy, _ = self.make(max_attempts=5)

        def semantic_error():
            raise KeyError("unknown relation")

        with pytest.raises(KeyError):
            policy.run(semantic_error, retry_on=(InjectedFaultError,))

    def test_on_attempt_failure_hook_sees_each_failure(self):
        policy, _ = self.make(max_attempts=3)
        seen = []
        policy.run(
            Flaky(2), on_attempt_failure=lambda n, exc: seen.append(n)
        )
        assert seen == [1, 2]

    def test_hook_exception_aborts_loop(self):
        policy, _ = self.make(max_attempts=5)

        def abort(n, exc):
            raise CircuitOpenError("opened", source="s")

        flaky = Flaky(99)
        with pytest.raises(CircuitOpenError):
            policy.run(flaky, on_attempt_failure=abort)
        assert flaky.calls == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -1},
            {"multiplier": 0.5},
            {"max_delay": -1},
            {"timeout": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = ManualClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("recovery_time", 10.0)
        breaker = CircuitBreaker(clock=clock, **kwargs)
        return breaker, clock

    def test_starts_closed(self):
        breaker, _ = self.make()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_at_threshold(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_check_raises_with_retry_after(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.0)
        with pytest.raises(CircuitOpenError) as info:
            breaker.check("feed")
        assert info.value.source == "feed"
        assert info.value.retry_after == pytest.approx(6.0)

    def test_half_open_after_recovery_window(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_probe_success_closes(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()  # the probe slot
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        # The recovery window restarted from the re-open.
        clock.advance(9.9)
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(0.1)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_limits_probe_slots(self):
        breaker, clock = self.make(half_open_probes=2)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # both probe slots taken

    def test_reset_restores_pristine_state(self):
        breaker, _ = self.make()
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.consecutive_failures == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"recovery_time": -1},
            {"half_open_probes": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
