"""Fast path ≡ naive path for the polygen algebra, incl. federation join.

Provenance makes equivalence three-way: values, originating sources,
and intermediate sources must all match what the naive (dict
round-trip, re-validating) path produces.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnknownColumnError
from repro.experiments import naive
from repro.polygen import algebra
from repro.polygen.federation import Federation
from repro.polygen.model import PolygenRelation
from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.schema import schema

SCHEMA = schema("t", [("k", "INT"), ("v", "STR")])
KEYS = st.integers(min_value=0, max_value=3)
STRS = st.none() | st.text(alphabet="abc", max_size=4)


@st.composite
def polygen_relations(draw, max_rows: int = 8):
    """Rows lifted from two sources and unioned, so duplicate values
    carry merged (multi-source) originating sets."""
    rows = draw(st.lists(st.tuples(KEYS, STRS), max_size=max_rows))
    base = Relation.from_tuples(SCHEMA, rows)
    lifted = PolygenRelation.from_relation(base, "alpha")
    if draw(st.booleans()):
        lifted = algebra.union(
            lifted, PolygenRelation.from_relation(base, "beta")
        )
    return lifted


def assert_same(fast: PolygenRelation, slow: PolygenRelation) -> None:
    """Identical schema, rows, values, and source sets — cell for cell."""
    assert fast.schema.column_names == slow.schema.column_names
    assert len(fast) == len(slow)
    for fast_row, slow_row in zip(fast, slow):
        for fast_cell, slow_cell in zip(fast_row.cells, slow_row.cells):
            assert fast_cell.value == slow_cell.value
            assert fast_cell.originating == slow_cell.originating
            assert fast_cell.intermediate == slow_cell.intermediate


class TestUnknownColumn:
    def test_polygen_row_lookup_raises_unknown_column_error(self):
        relation = PolygenRelation.from_relation(
            Relation.from_tuples(SCHEMA, [(1, "a")]), "alpha"
        )
        with pytest.raises(UnknownColumnError):
            relation.rows[0]["no_such_column"]


class TestFastEqualsNaive:
    @given(polygen_relations())
    def test_select_propagates_examined_sources(self, rel):
        predicate = lambda r: r.value("k") is not None and r.value("k") > 0
        assert_same(
            algebra.select(rel, predicate, using=["k"]),
            naive.naive_polygen_select(rel, predicate, using=["k"]),
        )

    @given(polygen_relations())
    def test_project(self, rel):
        assert_same(
            algebra.project(rel, ["v"]), naive.naive_polygen_project(rel, ["v"])
        )

    @given(polygen_relations(), polygen_relations())
    def test_equi_join(self, left, right):
        on = [("k", "k")]
        assert_same(
            algebra.equi_join(left, right, on),
            naive.naive_polygen_equi_join(left, right, on),
        )


class TestE3FederationScenario:
    """Satellite check: the fast join equals the seed implementation on
    the E3 federation scenario (quotes joined with research reports)."""

    N_TICKERS = 40

    def _federation(self):
        federation = Federation("markets")
        for db_index in range(2):
            db = Database(f"feed_{db_index}")
            db.create_relation(
                schema("quotes", [("ticker", "STR"), ("price", "FLOAT")])
            )
            for t in range(self.N_TICKERS):
                db.insert(
                    "quotes",
                    {"ticker": f"T{t:03d}", "price": float(100 + t)},
                )
            federation.register(db, credibility=1.0 - 0.1 * db_index)
        reports = Database("research")
        reports.create_relation(
            schema("reports", [("symbol", "STR"), ("analyst", "STR")])
        )
        for t in range(self.N_TICKERS):
            reports.insert(
                "reports", {"symbol": f"T{t:03d}", "analyst": f"an{t % 7}"}
            )
        federation.register(reports)
        return federation

    def test_federation_join_equals_seed_path(self):
        federation = self._federation()
        quotes = federation.union_all("quotes", ["feed_0", "feed_1"])
        reports = federation.export("research", "reports")
        fast = algebra.equi_join(quotes, reports, [("ticker", "symbol")])
        slow = naive.naive_polygen_equi_join(
            quotes, reports, [("ticker", "symbol")]
        )
        assert_same(fast, slow)
        assert len(fast) == self.N_TICKERS
        # Corroborated quotes: both feeds originate the price cell, and
        # the join key routes feed + research into every intermediate set.
        price_cell = fast.rows[0]["price"]
        assert price_cell.originating == {"feed_0", "feed_1"}
        for cell in fast.rows[0].cells:
            assert {"research"} <= cell.intermediate
