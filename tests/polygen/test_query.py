"""Unit tests for the polygen fluent query API."""

import pytest

from repro.errors import QueryError
from repro.polygen.model import PolygenCell, PolygenRelation
from repro.polygen.query import PolygenQuery
from repro.relational.schema import schema


@pytest.fixture
def quotes():
    rel = PolygenRelation(
        schema("quotes", [("ticker", "STR"), ("price", "FLOAT")])
    )
    rel.insert(
        {
            "ticker": PolygenCell("FRT", {"reuters"}),
            "price": PolygenCell(100.0, {"reuters"}),
        }
    )
    rel.insert(
        {
            "ticker": PolygenCell("NUT", {"reuters", "nexis"}),
            "price": PolygenCell(50.0, {"reuters", "nexis"}),
        }
    )
    rel.insert(
        {
            "ticker": PolygenCell("ZZZ", {"branch_fax"}, {"nexis"}),
            "price": PolygenCell(1.0, {"branch_fax"}, {"nexis"}),
        }
    )
    return rel


class TestValuePredicates:
    def test_where_value_propagates_sources(self, quotes):
        result = PolygenQuery(quotes).where_value("price", ">", 10).run()
        assert len(result) == 2
        # The price column was examined: its sources become intermediate.
        for row in result:
            assert row["ticker"].intermediate >= row["price"].originating

    def test_where_custom_using(self, quotes):
        result = (
            PolygenQuery(quotes)
            .where(lambda row: row.value("ticker") != "ZZZ", using=["ticker"])
            .run()
        )
        assert len(result) == 2

    def test_unknown_operator(self, quotes):
        with pytest.raises(QueryError):
            PolygenQuery(quotes).where_value("price", "~", 1)


class TestProvenancePredicates:
    def test_includes(self, quotes):
        result = (
            PolygenQuery(quotes).where_origin("price", includes="nexis").run()
        )
        assert [row.value("ticker") for row in result] == ["NUT"]

    def test_excludes(self, quotes):
        result = (
            PolygenQuery(quotes)
            .where_origin("price", excludes="branch_fax")
            .run()
        )
        assert len(result) == 2

    def test_only(self, quotes):
        result = (
            PolygenQuery(quotes)
            .where_origin("price", only={"reuters"})
            .run()
        )
        assert [row.value("ticker") for row in result] == ["FRT"]

    def test_requires_a_constraint(self, quotes):
        with pytest.raises(QueryError):
            PolygenQuery(quotes).where_origin("price")

    def test_provenance_reads_do_not_propagate(self, quotes):
        result = (
            PolygenQuery(quotes).where_origin("price", includes="reuters").run()
        )
        frt = next(r for r in result if r.value("ticker") == "FRT")
        assert frt["price"].intermediate == frozenset()

    def test_untouched_by(self, quotes):
        # ZZZ has nexis as an *intermediate* source; NUT has it as an
        # originating source; both must be quarantined.
        result = PolygenQuery(quotes).where_untouched_by("nexis").run()
        assert [row.value("ticker") for row in result] == ["FRT"]


class TestShapeOperations:
    def test_select(self, quotes):
        result = PolygenQuery(quotes).select("price").run()
        assert result.schema.column_names == ("price",)
        assert result.rows[1]["price"].originating == {"reuters", "nexis"}

    def test_select_requires_columns(self, quotes):
        with pytest.raises(QueryError):
            PolygenQuery(quotes).select()

    def test_join(self, quotes):
        reports = PolygenRelation(
            schema("reports", [("symbol", "STR"), ("analyst", "STR")])
        )
        reports.insert(
            {
                "symbol": PolygenCell("FRT", {"research"}),
                "analyst": PolygenCell("kim", {"research"}),
            }
        )
        result = (
            PolygenQuery(quotes).join(reports, on=[("ticker", "symbol")]).run()
        )
        assert len(result) == 1
        assert "research" in result.rows[0]["price"].intermediate

    def test_union_dedups(self, quotes):
        result = PolygenQuery(quotes).union(quotes).run()
        assert len(result) == 3

    def test_immutability_and_values(self, quotes):
        base = PolygenQuery(quotes)
        filtered = base.where_value("price", ">", 10)
        assert base.count() == 3
        assert filtered.count() == 2
        assert {v["ticker"] for v in filtered.values()} == {"FRT", "NUT"}
