"""Unit tests for the polygen algebra's source-propagation semantics."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.polygen import algebra
from repro.polygen.model import PolygenCell, PolygenRelation
from repro.relational.relation import Relation
from repro.relational.schema import schema


@pytest.fixture
def quotes_a():
    plain = Relation.from_tuples(
        schema("quotes", [("ticker", "STR"), ("price", "FLOAT")]),
        [("FRT", 100.0), ("NUT", 50.0)],
    )
    return PolygenRelation.from_relation(plain, "db_a")


@pytest.fixture
def quotes_b():
    plain = Relation.from_tuples(
        schema("quotes", [("ticker", "STR"), ("price", "FLOAT")]),
        [("FRT", 101.0), ("NUT", 50.0)],
    )
    return PolygenRelation.from_relation(plain, "db_b")


@pytest.fixture
def reports():
    plain = Relation.from_tuples(
        schema("reports", [("symbol", "STR"), ("analyst", "STR")]),
        [("FRT", "kim"), ("ZZZ", "lee")],
    )
    return PolygenRelation.from_relation(plain, "db_r")


class TestProject:
    def test_keeps_sources(self, quotes_a):
        result = algebra.project(quotes_a, ["price"])
        assert result.rows[0]["price"].originating == {"db_a"}

    def test_requires_columns(self, quotes_a):
        with pytest.raises(QueryError):
            algebra.project(quotes_a, [])


class TestSelect:
    def test_examined_sources_become_intermediate(self, quotes_a):
        result = algebra.select(
            quotes_a, lambda r: r.value("price") > 60, using=["price"]
        )
        assert len(result) == 1
        row = result.rows[0]
        # Both cells gain db_a as an intermediate source (the predicate
        # examined db_a data to admit the row).
        assert row["ticker"].intermediate == {"db_a"}
        assert row["price"].intermediate == {"db_a"}

    def test_without_using_no_intermediate(self, quotes_a):
        result = algebra.select(quotes_a, lambda r: True)
        assert all(
            cell.intermediate == frozenset()
            for row in result
            for cell in row.cells
        )


class TestJoin:
    def test_join_key_sources_propagate(self, quotes_a, reports):
        joined = algebra.equi_join(
            quotes_a, reports, on=[("ticker", "symbol")]
        )
        assert len(joined) == 1
        row = joined.rows[0]
        # Join keys came from db_a and db_r: both are intermediate
        # sources of every output cell.
        for cell in row.cells:
            assert {"db_a", "db_r"} <= cell.intermediate
        # Originating sources still per side.
        assert row["price"].originating == {"db_a"}
        assert row["analyst"].originating == {"db_r"}

    def test_cartesian_no_intermediate(self, quotes_a, reports):
        product = algebra.cartesian_product(quotes_a, reports)
        assert len(product) == 4
        assert all(
            cell.intermediate == frozenset()
            for row in product
            for cell in row.cells
        )


class TestUnion:
    def test_duplicates_merge_sources(self, quotes_a, quotes_b):
        merged = algebra.union(quotes_a, quotes_b)
        # NUT@50 is corroborated by both; FRT differs in price so two rows.
        assert len(merged) == 3
        nut = next(r for r in merged if r.value("ticker") == "NUT")
        assert nut["price"].originating == {"db_a", "db_b"}

    def test_incompatible(self, quotes_a, reports):
        with pytest.raises(SchemaError):
            algebra.union(quotes_a, reports)


class TestDifference:
    def test_right_sources_become_intermediate(self, quotes_a, quotes_b):
        result = algebra.difference(quotes_a, quotes_b)
        # Only FRT@100 survives (NUT@50 present in both).
        assert len(result) == 1
        row = result.rows[0]
        assert row.value("price") == 100.0
        assert all("db_b" in cell.intermediate for cell in row.cells)


class TestCoalesce:
    def test_losers_become_intermediate(self, quotes_a, quotes_b):
        merged = algebra.union(quotes_a, quotes_b)

        def prefer(a, b):  # prefer db_a rows
            a_is_a = any("db_a" in c.originating for c in a.cells)
            return a if a_is_a else b

        resolved = algebra.coalesce(merged, prefer, ["ticker"])
        assert len(resolved) == 2
        frt = next(r for r in resolved if r.value("ticker") == "FRT")
        assert frt.value("price") == 100.0
        assert all("db_b" in cell.intermediate for cell in frt.cells)

    def test_single_rows_untouched(self, quotes_a):
        resolved = algebra.coalesce(
            quotes_a, lambda a, b: a, ["ticker"]
        )
        assert len(resolved) == 2
        assert all(
            cell.intermediate == frozenset()
            for row in resolved
            for cell in row.cells
        )
