"""Unit tests for the multi-database federation."""

import pytest

from repro.errors import FederationError
from repro.polygen.federation import Federation
from repro.relational.catalog import Database
from repro.relational.schema import schema


def _quote_db(name: str, rows):
    db = Database(name)
    db.create_relation(
        schema("quotes", [("ticker", "STR"), ("price", "FLOAT")], key=["ticker"])
    )
    for ticker, price in rows:
        db.insert("quotes", {"ticker": ticker, "price": price})
    return db


@pytest.fixture
def federation():
    fed = Federation("markets")
    fed.register(_quote_db("reuters", [("FRT", 100.0), ("NUT", 50.0)]), 0.9)
    fed.register(_quote_db("nexis", [("FRT", 101.0), ("NUT", 50.0)]), 0.5)
    return fed


class TestRegistry:
    def test_duplicate_name_rejected(self, federation):
        with pytest.raises(FederationError):
            federation.register(_quote_db("reuters", []))

    def test_lookup(self, federation):
        assert federation.local("nexis").credibility == 0.5
        with pytest.raises(FederationError):
            federation.local("ghost")

    def test_credibility_unknown_source(self, federation):
        assert federation.credibility("ghost") == 0.0

    def test_database_names_sorted(self, federation):
        assert federation.database_names == ("nexis", "reuters")


class TestExportAndUnion:
    def test_export_tags_source(self, federation):
        exported = federation.export("reuters", "quotes")
        assert all(
            cell.originating == {"reuters"}
            for row in exported
            for cell in row.cells
        )

    def test_union_all_merges_corroborated(self, federation):
        merged = federation.union_all("quotes")
        nut = next(r for r in merged if r.value("ticker") == "NUT")
        assert nut["price"].originating == {"nexis", "reuters"}
        # FRT prices conflict → two rows.
        assert len(merged) == 3

    def test_union_all_subset(self, federation):
        merged = federation.union_all("quotes", databases=["reuters"])
        assert merged.all_sources() == {"reuters"}

    def test_union_all_empty_list(self, federation):
        with pytest.raises(FederationError):
            federation.union_all("quotes", databases=[])


class TestConflictResolution:
    def test_most_credible_wins(self, federation):
        merged = federation.union_all("quotes")
        resolved = federation.most_credible(merged, ["ticker"])
        assert len(resolved) == 2
        frt = next(r for r in resolved if r.value("ticker") == "FRT")
        assert frt.value("price") == 100.0  # reuters (0.9) beats nexis (0.5)
        assert "nexis" in frt["price"].intermediate

    def test_provenance_report(self, federation):
        merged = federation.union_all("quotes")
        resolved = federation.most_credible(merged, ["ticker"])
        report = federation.provenance_report(resolved)
        assert report["reuters"]["originating"] == 4
        assert report["nexis"]["intermediate"] >= 2
