"""Unit tests for the multi-database federation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FederationError, FederationUnavailableError
from repro.polygen.faults import FaultInjector, FederationResult
from repro.polygen.federation import Federation
from repro.polygen.retry import CircuitBreaker, ManualClock, RetryPolicy
from repro.relational.catalog import Database
from repro.relational.schema import schema


def _quote_db(name: str, rows):
    db = Database(name)
    db.create_relation(
        schema("quotes", [("ticker", "STR"), ("price", "FLOAT")], key=["ticker"])
    )
    for ticker, price in rows:
        db.insert("quotes", {"ticker": ticker, "price": price})
    return db


@pytest.fixture
def federation():
    fed = Federation("markets")
    fed.register(_quote_db("reuters", [("FRT", 100.0), ("NUT", 50.0)]), 0.9)
    fed.register(_quote_db("nexis", [("FRT", 101.0), ("NUT", 50.0)]), 0.5)
    return fed


class TestRegistry:
    def test_duplicate_name_rejected(self, federation):
        with pytest.raises(FederationError):
            federation.register(_quote_db("reuters", []))

    def test_lookup(self, federation):
        assert federation.local("nexis").credibility == 0.5
        with pytest.raises(FederationError):
            federation.local("ghost")

    def test_credibility_unknown_source(self, federation):
        assert federation.credibility("ghost") == 0.0

    def test_database_names_sorted(self, federation):
        assert federation.database_names == ("nexis", "reuters")


class TestExportAndUnion:
    def test_export_tags_source(self, federation):
        exported = federation.export("reuters", "quotes")
        assert all(
            cell.originating == {"reuters"}
            for row in exported
            for cell in row.cells
        )

    def test_union_all_merges_corroborated(self, federation):
        merged = federation.union_all("quotes")
        nut = next(r for r in merged if r.value("ticker") == "NUT")
        assert nut["price"].originating == {"nexis", "reuters"}
        # FRT prices conflict → two rows.
        assert len(merged) == 3

    def test_union_all_subset(self, federation):
        merged = federation.union_all("quotes", databases=["reuters"])
        assert merged.all_sources() == {"reuters"}

    def test_union_all_empty_list(self, federation):
        with pytest.raises(FederationError):
            federation.union_all("quotes", databases=[])

    def test_union_all_duplicate_names_collapse(self, federation):
        # Regression: ["reuters", "reuters"] silently unioned the same
        # export twice (each value corroborating itself).
        once = federation.union_all("quotes", databases=["reuters"])
        twice = federation.union_all(
            "quotes", databases=["reuters", "reuters"]
        )
        assert twice.rows == once.rows

    def test_union_all_unknown_name_fails_fast(self, federation):
        calls = []
        original = federation.local("reuters").export
        federation.local("reuters").export = lambda name: (
            calls.append(name) or original(name)
        )
        with pytest.raises(FederationError) as info:
            federation.union_all("quotes", databases=["reuters", "ghost"])
        assert "ghost" in str(info.value)
        # Validation happened before any export work.
        assert calls == []


class TestConflictResolution:
    def test_most_credible_wins(self, federation):
        merged = federation.union_all("quotes")
        resolved = federation.most_credible(merged, ["ticker"])
        assert len(resolved) == 2
        frt = next(r for r in resolved if r.value("ticker") == "FRT")
        assert frt.value("price") == 100.0  # reuters (0.9) beats nexis (0.5)
        assert "nexis" in frt["price"].intermediate

    def test_provenance_report(self, federation):
        merged = federation.union_all("quotes")
        resolved = federation.most_credible(merged, ["ticker"])
        report = federation.provenance_report(resolved)
        assert report["reuters"]["originating"] == 4
        assert report["nexis"]["intermediate"] >= 2


# ---------------------------------------------------------------------------
# Fault tolerance
# ---------------------------------------------------------------------------


def _three_source_federation(error_rates, clock, seed_base=40, max_attempts=3):
    """Three quote feeds with per-source fault injection, no real sleeping."""
    fed = Federation("markets")
    injectors = {}
    for index, (name, rate) in enumerate(error_rates.items()):
        fed.register(
            _quote_db(name, [("FRT", 100.0 + index), ("NUT", 50.0)])
        )
        injectors[name] = FaultInjector(
            error_rate=rate, seed=seed_base + index, sleep=clock.sleep
        )
        fed.wrap_unreliable(
            name,
            injector=injectors[name],
            retry=RetryPolicy(
                max_attempts=max_attempts,
                base_delay=0.05,
                sleep=clock.sleep,
                clock=clock,
            ),
            breaker=CircuitBreaker(
                failure_threshold=max_attempts + 1,
                recovery_time=30.0,
                clock=clock,
            ),
            wall_clock=clock,
        )
    return fed, injectors


class TestFaultTolerantUnion:
    def test_partial_result_reports_injected_failures_exactly(self):
        clock = ManualClock(start=1000.0)
        fed, injectors = _three_source_federation(
            {"a": 0.0, "b": 1.0, "c": 0.0}, clock
        )
        result = fed.union_all("quotes", require_all=False)
        assert isinstance(result, FederationResult)
        assert result.is_degraded
        assert result.degraded_source_names == ("b",)
        assert result.ok_source_names == ("a", "c")
        # The report mirrors the injector's decision log exactly.
        report = result.reports["b"]
        assert report.attempts == injectors["b"].failures_for("b") == 3
        assert result.relation.all_sources() == {"a", "c"}
        # Survivors: a and c disagree on FRT, agree on NUT → 3 rows.
        assert len(result) == 3

    def test_thirty_percent_error_rate_report_matches_injection(self):
        clock = ManualClock(start=1000.0)
        fed, injectors = _three_source_federation(
            {"a": 0.3, "b": 0.3, "c": 0.3}, clock, seed_base=7
        )
        result = fed.union_all("quotes", require_all=False)
        for name, injector in injectors.items():
            report = result.reports[name]
            failures = injector.failures_for(name)
            calls = injector.calls_for(name)
            assert report.attempts == calls
            if report.failed:
                # Every attempt was an injected failure.
                assert failures == calls == 3
            else:
                # The last attempt succeeded; all earlier ones failed.
                assert failures == calls - 1
                assert report.status == ("ok" if calls == 1 else "recovered")
        surviving = result.relation.all_sources()
        assert surviving == set(result.ok_source_names)

    def test_strict_mode_names_failed_sources(self):
        clock = ManualClock()
        fed, _ = _three_source_federation(
            {"a": 0.0, "b": 1.0, "c": 1.0}, clock
        )
        with pytest.raises(FederationUnavailableError) as info:
            fed.union_all("quotes", require_all=True)
        assert info.value.failed_sources == ("b", "c")
        assert "injected fault" in info.value.failures["b"]

    def test_all_sources_failed_raises_even_when_partial(self):
        clock = ManualClock()
        fed, _ = _three_source_federation(
            {"a": 1.0, "b": 1.0, "c": 1.0}, clock
        )
        with pytest.raises(FederationUnavailableError) as info:
            fed.union_all("quotes", require_all=False)
        assert info.value.failed_sources == ("a", "b", "c")

    def test_surviving_cells_carry_acquisition_tags(self):
        clock = ManualClock(start=500.0)
        fed, _ = _three_source_federation(
            {"a": 0.0, "b": 1.0, "c": 0.5}, clock, seed_base=1
        )
        result = fed.union_all("quotes", require_all=False)
        tagged = result.to_tagged()
        assert len(tagged) == len(result)
        for row in tagged:
            for column in ("ticker", "price"):
                status = row[column].tag_value("source_status")
                assert status in ("ok", "recovered")
                retrieved = row[column].tag_value("retrieved_at")
                assert retrieved is not None and retrieved >= 500.0
                # Recovered sources retried: their cells say so.
                sources = set(str(row[column].tag_value("source")).split("+"))
                statuses = {result.reports[s].status for s in sources}
                assert status == max(
                    statuses, key=["ok", "recovered"].index
                )

    def test_degraded_render_report_flags_failures(self):
        clock = ManualClock()
        fed, _ = _three_source_federation(
            {"a": 0.0, "b": 1.0, "c": 0.0}, clock
        )
        result = fed.union_all("quotes", require_all=False)
        text = result.render_report()
        assert "[!!] b" in text
        assert "[ok] a" in text

    def test_tolerant_export_single_source(self):
        clock = ManualClock()
        fed, _ = _three_source_federation(
            {"a": 0.0, "b": 1.0, "c": 0.0}, clock
        )
        ok = fed.export("a", "quotes", require_all=False)
        assert isinstance(ok, FederationResult)
        assert not ok.is_degraded and len(ok) == 2
        degraded = fed.export("b", "quotes", require_all=False)
        assert degraded.relation is None
        assert len(degraded) == 0
        assert list(degraded) == []
        with pytest.raises(FederationError):
            degraded.to_tagged()
        with pytest.raises(FederationUnavailableError):
            fed.export("b", "quotes", require_all=True)

    def test_plain_sources_supported_in_tolerant_mode(self, federation):
        result = federation.union_all("quotes", require_all=True)
        assert isinstance(result, FederationResult)
        assert not result.is_degraded
        assert all(r.status == "ok" for r in result.reports.values())
        legacy = federation.union_all("quotes")
        assert result.relation.rows == legacy.rows


class TestZeroFaultEquivalence:
    """require_all=True at zero fault rate ≡ the pre-fault-tolerance path."""

    @settings(max_examples=30, deadline=None)
    @given(
        rows_per_source=st.lists(
            st.lists(
                st.tuples(
                    st.sampled_from(["FRT", "NUT", "ACME", "ZZZ"]),
                    st.floats(
                        min_value=0.0,
                        max_value=1000.0,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                ),
                max_size=4,
                unique_by=lambda pair: pair[0],
            ),
            min_size=1,
            max_size=3,
        ),
        max_attempts=st.integers(min_value=1, max_value=4),
    )
    def test_union_identical_to_legacy(self, rows_per_source, max_attempts):
        clock = ManualClock()
        plain = Federation("plain")
        wrapped = Federation("wrapped")
        for index, rows in enumerate(rows_per_source):
            name = f"db{index}"
            plain.register(_quote_db(name, rows))
            wrapped.register(_quote_db(name, rows))
            wrapped.wrap_unreliable(
                name,
                injector=FaultInjector(error_rate=0.0, sleep=clock.sleep),
                retry=RetryPolicy(
                    max_attempts=max_attempts,
                    sleep=clock.sleep,
                    clock=clock,
                ),
                breaker=CircuitBreaker(clock=clock),
                wall_clock=clock,
            )
        legacy = plain.union_all("quotes")
        tolerant = wrapped.union_all("quotes", require_all=True)
        assert not tolerant.is_degraded
        assert tolerant.relation.schema == legacy.schema
        assert tolerant.relation.rows == legacy.rows
