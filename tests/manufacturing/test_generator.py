"""Unit tests for the synthetic population generators."""

import pytest

from repro.manufacturing.generator import (
    make_address_book,
    make_clients,
    make_companies,
    make_tickers,
)


class TestCompanies:
    def test_paper_rows_first(self):
        companies = make_companies(10)
        assert companies["Fruit Co"] == {"address": "12 Jay St", "employees": 4004}
        assert companies["Nut Co"] == {"address": "62 Lois Av", "employees": 700}

    def test_exact_count(self):
        for n in (2, 50, 500):
            assert len(make_companies(n)) == n

    def test_unique_names(self):
        companies = make_companies(400)
        assert len(companies) == len(set(companies))

    def test_deterministic(self):
        assert make_companies(100, seed=5) == make_companies(100, seed=5)

    def test_seed_changes_values(self):
        a = make_companies(50, seed=1)
        b = make_companies(50, seed=2)
        differing = [
            name for name in a if name not in ("Fruit Co", "Nut Co")
            and a[name] != b.get(name)
        ]
        assert differing

    def test_small_n(self):
        assert len(make_companies(1)) == 1


class TestClients:
    def test_shape(self):
        clients = make_clients(20)
        assert len(clients) == 20
        sample = clients["ACC00001"]
        assert set(sample) == {"name", "address", "telephone"}
        assert sample["telephone"].startswith("617-")

    def test_deterministic(self):
        assert make_clients(20, seed=3) == make_clients(20, seed=3)


class TestAddressBook:
    def test_shape(self):
        book = make_address_book(15)
        assert len(book) == 15
        assert set(book["P000001"]) == {"name", "address", "city"}

    def test_deterministic(self):
        assert make_address_book(30, seed=8) == make_address_book(30, seed=8)


class TestTickers:
    def test_unique_tickers(self):
        stocks = make_tickers(30)
        assert len(stocks) == 30

    def test_prices_in_range(self):
        stocks = make_tickers(30)
        assert all(5.0 <= s["share_price"] <= 500.0 for s in stocks.values())

    def test_company_names_resolve(self):
        stocks = make_tickers(10, seed=2)
        companies = make_companies(10, seed=2)
        assert all(s["company_name"] in companies for s in stocks.values())
