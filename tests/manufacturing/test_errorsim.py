"""Unit tests for error injection."""

import random

import pytest

from repro.errors import ManufacturingError
from repro.manufacturing.errorsim import (
    blanking,
    digit_slip,
    dropped_character,
    mixed_injector,
    numeric_noise,
    transposition,
    typo,
    unit_error,
)


@pytest.fixture
def rng():
    return random.Random(99)


class TestStringInjectors:
    def test_typo_same_length(self, rng):
        corrupted = typo(rng, "62 Lois Av")
        assert len(corrupted) == len("62 Lois Av")

    def test_typo_non_string_passthrough(self, rng):
        assert typo(rng, 700) == 700

    def test_transposition_permutes(self, rng):
        value = "abcdef"
        corrupted = transposition(rng, value)
        assert sorted(corrupted) == sorted(value)
        assert corrupted != value or True  # may swap equal chars

    def test_transposition_short_passthrough(self, rng):
        assert transposition(rng, "a") == "a"

    def test_dropped_character(self, rng):
        corrupted = dropped_character(rng, "abcdef")
        assert len(corrupted) == 5

    def test_dropped_short_passthrough(self, rng):
        assert dropped_character(rng, "a") == "a"


class TestNumericInjectors:
    def test_numeric_noise_type_preserved(self, rng):
        inject = numeric_noise(0.5)
        assert isinstance(inject(rng, 100), int)
        assert isinstance(inject(rng, 100.0), float)

    def test_numeric_noise_bool_passthrough(self, rng):
        assert numeric_noise()(rng, True) is True

    def test_digit_slip_digit_count(self, rng):
        corrupted = digit_slip(rng, 4004)
        assert len(str(abs(corrupted))) <= 4

    def test_digit_slip_sign_preserved(self, rng):
        assert digit_slip(rng, -55) <= 0

    def test_unit_error_scales(self, rng):
        inject = unit_error(1000.0)
        corrupted = inject(rng, 5.0)
        assert corrupted in (5000.0, 0.005)

    def test_unit_error_validates(self):
        with pytest.raises(ManufacturingError):
            unit_error(0)

    def test_blanking(self, rng):
        assert blanking(rng, "anything") is None


class TestMixedInjector:
    def test_dispatch_by_type(self, rng):
        inject = mixed_injector()
        assert isinstance(inject(rng, "hello"), str)
        assert isinstance(inject(rng, 100), int)

    def test_blank_probability(self):
        inject = mixed_injector(blank_probability=1.0)
        assert inject(random.Random(0), "x") is None

    def test_blank_probability_bounds(self):
        with pytest.raises(ManufacturingError):
            mixed_injector(blank_probability=2.0)

    def test_unknown_type_passthrough(self, rng):
        inject = mixed_injector()
        value = object()
        assert inject(rng, value) is value
