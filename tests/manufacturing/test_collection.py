"""Unit tests for collection methods."""

import pytest

from repro.errors import ManufacturingError
from repro.manufacturing.collection import (
    CollectionMethod,
    STANDARD_METHODS,
    standard_methods,
)


class TestCollectionMethod:
    def test_validation(self):
        with pytest.raises(ManufacturingError):
            CollectionMethod("", 0.1)
        with pytest.raises(ManufacturingError):
            CollectionMethod("x", 1.5)

    def test_zero_error_rate_identity(self):
        method = CollectionMethod("perfect", 0.0)
        for value in ("62 Lois Av", 700, 3.14):
            captured, corrupted = method.capture(value)
            assert captured == value
            assert not corrupted

    def test_full_error_rate_usually_corrupts(self):
        method = CollectionMethod("terrible", 1.0, seed=1)
        outcomes = [method.capture("62 Lois Av") for _ in range(30)]
        assert sum(1 for _, corrupted in outcomes if corrupted) >= 25

    def test_none_passthrough(self):
        method = CollectionMethod("x", 1.0)
        assert method.capture(None) == (None, False)

    def test_degrade(self):
        method = CollectionMethod("scanner", 0.01)
        method.degrade(0.5)
        assert method.error_rate == 0.5
        with pytest.raises(ManufacturingError):
            method.degrade(2.0)

    def test_deterministic(self):
        a = CollectionMethod("m", 0.5, seed=3)
        b = CollectionMethod("m", 0.5, seed=3)
        assert [a.capture("abcdef") for _ in range(10)] == [
            b.capture("abcdef") for _ in range(10)
        ]


class TestStandardMethods:
    def test_paper_mechanisms_present(self):
        for name in (
            "bar_code_scanner",
            "information_service",
            "over_the_phone",
            "voice_decoder",
        ):
            assert name in STANDARD_METHODS

    def test_error_rate_ordering(self):
        methods = standard_methods()
        assert (
            methods["bar_code_scanner"].error_rate
            < methods["information_service"].error_rate
            < methods["over_the_phone"].error_rate
            < methods["voice_decoder"].error_rate
        )

    def test_double_entry_squares_single(self):
        methods = standard_methods()
        single = methods["manual_entry"].error_rate
        double = methods["double_entry_manual"].error_rate
        assert double == pytest.approx(single**2)
