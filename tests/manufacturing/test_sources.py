"""Unit tests for data sources."""

import datetime as dt

import pytest

from repro.errors import ManufacturingError
from repro.manufacturing.sources import DataSource
from repro.manufacturing.world import AttributeSpec, World, gaussian_drift


@pytest.fixture
def world():
    w = World(
        dt.date(1991, 1, 1),
        {"A": {"price": 100.0}},
        specs=[AttributeSpec("price", 1.0, gaussian_drift(0.10))],
        seed=5,
    )
    w.advance(60)
    return w


class TestSourceValidation:
    def test_parameter_bounds(self, world):
        with pytest.raises(ManufacturingError):
            DataSource("s", world, error_rate=1.5)
        with pytest.raises(ManufacturingError):
            DataSource("s", world, coverage=-0.1)
        with pytest.raises(ManufacturingError):
            DataSource("s", world, latency_days=-1)
        with pytest.raises(ManufacturingError):
            DataSource("", world)


class TestObservation:
    def test_perfect_source_reports_truth(self, world):
        source = DataSource("oracle", world, error_rate=0.0, latency_days=0)
        observation = source.observe("A", "price")
        assert observation.value == world.truth_of("A")["price"]
        assert not observation.erroneous

    def test_latency_reports_old_truth(self, world):
        source = DataSource("laggy", world, error_rate=0.0, latency_days=30)
        observation = source.observe("A", "price")
        expected_day = world.today - dt.timedelta(days=30)
        assert observation.observed_day == expected_day
        assert observation.value == world.value_as_of("A", "price", expected_day)
        # Price drifts daily: the laggy value differs from current truth.
        assert observation.value != world.truth_of("A")["price"]

    def test_latency_clamped_to_start(self, world):
        source = DataSource("ancient", world, latency_days=10_000)
        observation = source.observe("A", "price")
        assert observation.observed_day == world.start_day

    def test_error_rate_one_corrupts(self, world):
        source = DataSource("noisy", world, error_rate=1.0, seed=2)
        observations = [source.observe("A", "price") for _ in range(20)]
        corrupted = [o for o in observations if o.erroneous]
        assert len(corrupted) >= 15  # a few injections may no-op

    def test_zero_coverage_always_missing(self, world):
        source = DataSource("blind", world, coverage=0.0)
        observation = source.observe("A", "price")
        assert observation.missing
        assert observation.value is None

    def test_deterministic_across_instances(self, world):
        a = DataSource("s", world, error_rate=0.5, seed=9)
        b = DataSource("s", world, error_rate=0.5, seed=9)
        assert [a.observe("A", "price").value for _ in range(10)] == [
            b.observe("A", "price").value for _ in range(10)
        ]

    def test_report_day_override(self, world):
        source = DataSource("s", world, latency_days=0)
        past = world.start_day + dt.timedelta(days=5)
        observation = source.observe("A", "price", report_day=past)
        assert observation.report_day == past
        assert observation.value == world.value_as_of("A", "price", past)
