"""Unit tests for the manufacturing pipeline."""

import datetime as dt

import pytest

from repro.errors import ManufacturingError
from repro.manufacturing.collection import CollectionMethod
from repro.manufacturing.generator import make_companies
from repro.manufacturing.pipeline import ManufacturingPipeline, pipeline_tag_schema
from repro.manufacturing.sources import DataSource
from repro.manufacturing.world import AttributeSpec, World, integer_step
from repro.relational.schema import schema


@pytest.fixture
def world():
    w = World(
        dt.date(1991, 1, 1),
        make_companies(30, seed=4),
        specs=[AttributeSpec("employees", 0.02, integer_step(20))],
        seed=4,
    )
    w.advance(90)
    return w


@pytest.fixture
def customer_schema_local():
    return schema(
        "customer",
        [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
        key=["co_name"],
    )


@pytest.fixture
def pipeline(world, customer_schema_local):
    p = ManufacturingPipeline(world, customer_schema_local, "co_name")
    p.assign(
        "address",
        DataSource("acct'g", world, error_rate=0.05, seed=1),
        CollectionMethod("manual_entry", 0.02, seed=1),
    )
    p.assign(
        "employees",
        DataSource("estimate", world, error_rate=0.4, latency_days=60, seed=2),
        CollectionMethod("over_the_phone", 0.05, seed=2),
    )
    return p


class TestRouting:
    def test_key_column_not_routable(self, pipeline, world):
        with pytest.raises(ManufacturingError):
            pipeline.assign(
                "co_name",
                DataSource("x", world),
                CollectionMethod("m", 0.0),
            )

    def test_unknown_attribute(self, pipeline, world):
        with pytest.raises(Exception):
            pipeline.assign(
                "ghost", DataSource("x", world), CollectionMethod("m", 0.0)
            )

    def test_manufacture_requires_routes(self, world, customer_schema_local):
        empty = ManufacturingPipeline(world, customer_schema_local, "co_name")
        with pytest.raises(ManufacturingError):
            empty.manufacture()


class TestManufacture:
    def test_all_entities_by_default(self, pipeline, world):
        relation = pipeline.manufacture()
        assert len(relation) == len(world.keys)

    def test_subset_of_keys(self, pipeline, world):
        keys = list(world.keys)[:5]
        relation = pipeline.manufacture(keys=keys)
        assert len(relation) == 5

    def test_cells_fully_tagged(self, pipeline):
        relation = pipeline.manufacture()
        for row in relation:
            for column in ("address", "employees"):
                cell = row[column]
                assert cell.has_tag("source")
                assert cell.has_tag("creation_time")
                assert cell.has_tag("collection_method")

    def test_tags_reflect_routes(self, pipeline):
        relation = pipeline.manufacture()
        row = relation.rows[0]
        assert row["address"].tag_value("source") == "acct'g"
        assert row["employees"].tag_value("source") == "estimate"
        assert row["employees"].tag_value("collection_method") == "over_the_phone"

    def test_creation_time_reflects_latency(self, pipeline, world):
        relation = pipeline.manufacture()
        row = relation.rows[0]
        assert row["employees"].tag_value(
            "creation_time"
        ) == world.today - dt.timedelta(days=60)

    def test_unrouted_column_null(self, world, customer_schema_local):
        p = ManufacturingPipeline(world, customer_schema_local, "co_name")
        p.assign(
            "address",
            DataSource("s", world),
            CollectionMethod("m", 0.0),
        )
        relation = p.manufacture()
        assert all(row.value("employees") is None for row in relation)

    def test_trail_records_every_step(self, pipeline, world):
        pipeline.manufacture()
        key = world.keys[0]
        history = pipeline.trail.history_of("customer", (key,))
        steps = [event.step for event in history]
        assert steps.count("collected") == 2
        assert steps.count("captured") == 2
        assert steps.count("inserted") == 1


class TestDefectStats:
    def test_noisy_source_has_more_defects(self, pipeline):
        pipeline.manufacture()
        by_method = pipeline.defect_counts_by_method()
        phone_defects, phone_n = by_method["over_the_phone"]
        manual_defects, manual_n = by_method["manual_entry"]
        assert phone_n == manual_n
        assert phone_defects > manual_defects

    def test_batch_counts(self, pipeline):
        pipeline.manufacture()
        counts, sizes = pipeline.defect_counts_by_batch(10)
        assert all(size == 10 for size in sizes)
        assert len(counts) == len(sizes)
        assert sum(counts) <= sum(sizes)

    def test_batch_size_validated(self, pipeline):
        with pytest.raises(ManufacturingError):
            pipeline.defect_counts_by_batch(0)


class TestPipelineTagSchema:
    def test_allows_pipeline_indicators(self):
        ts = pipeline_tag_schema(["address"])
        assert ts.allowed_for("address") == {
            "source",
            "creation_time",
            "collection_method",
        }

    def test_extra_indicators(self):
        from repro.tagging.indicators import IndicatorDefinition

        ts = pipeline_tag_schema(
            ["address"], [IndicatorDefinition("inspection")]
        )
        assert "inspection" in ts.indicator_names
