"""Unit tests for process-stable seed derivation."""

import subprocess
import sys

from repro.manufacturing.seeding import stable_seed


class TestStableSeed:
    def test_deterministic_within_process(self):
        assert stable_seed(7, "clients") == stable_seed(7, "clients")

    def test_distinct_inputs_distinct_seeds(self):
        seeds = {
            stable_seed(i, label)
            for i in range(10)
            for label in ("a", "b", "c")
        }
        assert len(seeds) == 30

    def test_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_64_bit_range(self):
        assert 0 <= stable_seed("anything") < 2**64

    def test_stable_across_processes(self):
        """The reason this module exists: Python's salted hash() is not
        process-stable; stable_seed must be."""
        script = (
            "from repro.manufacturing.seeding import stable_seed;"
            "print(stable_seed(23, 'addresses'))"
        )
        outputs = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                timeout=60,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(outputs) == 1
        assert outputs == {str(stable_seed(23, "addresses"))}

    def test_known_value_pinned(self):
        """Regression pin: changing the derivation would silently change
        every experiment's numbers."""
        assert stable_seed(23, "addresses") == stable_seed(23, "addresses")
        # The pinned constant below was computed once; it must never move.
        assert stable_seed(0, "collection", "scanner") == int.from_bytes(
            __import__("hashlib")
            .sha256("\x1f".join((repr(0), repr("collection"), repr("scanner"))).encode())
            .digest()[:8],
            "big",
        )
