"""Unit tests for the ground-truth world."""

import datetime as dt

import pytest

from repro.errors import ManufacturingError
from repro.manufacturing.world import (
    AttributeSpec,
    World,
    choice_replacement,
    gaussian_drift,
    integer_step,
)


@pytest.fixture
def world():
    return World(
        dt.date(1991, 1, 1),
        {
            "A": {"price": 100.0, "name": "A Co"},
            "B": {"price": 50.0, "name": "B Co"},
        },
        specs=[AttributeSpec("price", 1.0, gaussian_drift(0.05))],
        seed=42,
    )


class TestWorldBasics:
    def test_requires_entities(self):
        with pytest.raises(ManufacturingError):
            World(dt.date(1991, 1, 1), {})

    def test_change_probability_bounds(self):
        with pytest.raises(ManufacturingError):
            AttributeSpec("a", 1.5, lambda rng, old: old)

    def test_duplicate_spec_rejected(self):
        with pytest.raises(ManufacturingError):
            World(
                dt.date(1991, 1, 1),
                {"A": {"x": 1}},
                specs=[
                    AttributeSpec("x", 0.1, integer_step()),
                    AttributeSpec("x", 0.2, integer_step()),
                ],
            )

    def test_truth_is_copy(self, world):
        snapshot = world.truth()
        snapshot["A"]["price"] = -1
        assert world.truth_of("A")["price"] != -1

    def test_unknown_entity(self, world):
        with pytest.raises(ManufacturingError):
            world.truth_of("ghost")


class TestAdvance:
    def test_clock_moves(self, world):
        world.advance(10)
        assert world.today == dt.date(1991, 1, 11)

    def test_negative_rejected(self, world):
        with pytest.raises(ManufacturingError):
            world.advance(-1)

    def test_volatile_attributes_change(self, world):
        before = world.truth_of("A")["price"]
        changes = world.advance(5)
        assert changes  # p=1.0 per day
        assert world.truth_of("A")["price"] != before

    def test_stable_attributes_fixed(self, world):
        world.advance(30)
        assert world.truth_of("A")["name"] == "A Co"

    def test_determinism(self):
        def build():
            w = World(
                dt.date(1991, 1, 1),
                {"A": {"price": 100.0}},
                specs=[AttributeSpec("price", 0.5, gaussian_drift())],
                seed=7,
            )
            w.advance(30)
            return w.truth_of("A")["price"]

        assert build() == build()


class TestHistoryQueries:
    def test_truth_as_of_start(self, world):
        world.advance(10)
        original = world.truth_as_of(dt.date(1991, 1, 1))
        assert original["A"]["price"] == 100.0

    def test_truth_as_of_future_is_current(self, world):
        world.advance(3)
        assert world.truth_as_of(dt.date(1999, 1, 1)) == world.truth()

    def test_truth_as_of_midpoint(self, world):
        world.advance(2)
        midpoint_price = world.truth_of("A")["price"]
        midpoint_day = world.today
        world.advance(5)
        assert (
            world.truth_as_of(midpoint_day)["A"]["price"] == midpoint_price
        )

    def test_value_as_of(self, world):
        world.advance(3)
        assert world.value_as_of("A", "name", dt.date(1991, 1, 2)) == "A Co"

    def test_value_as_of_unknown_attribute(self, world):
        with pytest.raises(ManufacturingError):
            world.value_as_of("A", "ghost", world.today)

    def test_changes_for(self, world):
        world.advance(4)
        changes = world.changes_for("A")
        assert changes
        assert all(record.key == "A" for record in changes)

    def test_staleness(self, world):
        observation_day = world.today
        world.advance(2)  # price changes daily
        assert world.staleness_of("A", "price", observation_day)
        assert not world.staleness_of("A", "name", observation_day)


class TestMutators:
    def test_gaussian_drift_positive(self):
        import random

        mutate = gaussian_drift(0.5, minimum=0.01)
        rng = random.Random(1)
        value = 1.0
        for _ in range(100):
            value = mutate(rng, value)
            assert value >= 0.01

    def test_integer_step_floor(self):
        import random

        mutate = integer_step(10, minimum=0)
        rng = random.Random(1)
        assert all(mutate(rng, 3) >= 0 for _ in range(50))

    def test_choice_replacement_changes_value(self):
        import random

        mutate = choice_replacement(["a", "b", "c"])
        rng = random.Random(1)
        assert all(mutate(rng, "a") != "a" for _ in range(20))

    def test_choice_replacement_needs_pool(self):
        with pytest.raises(ManufacturingError):
            choice_replacement(["only"])
