"""Property-based tests for tag propagation invariants.

The attribute-based model's core invariant: every tag on an output cell
of a quality-algebra operator was present on the input cell it derives
from (operators never invent provenance), and selection/projection
never lose tags.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.schema import schema
from repro.tagging import algebra
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation

SOURCES = st.sampled_from(["sales", "acct'g", "Nexis", "estimate", "manual"])
KEYS = st.text(alphabet="abcde", min_size=1, max_size=4)
VALUES = st.integers(min_value=0, max_value=50)


def tag_schema() -> TagSchema:
    return TagSchema(
        indicators=[
            IndicatorDefinition("source"),
            IndicatorDefinition("age", "FLOAT"),
        ],
        allowed={"v": ["source", "age"]},
    )


@st.composite
def tagged_relations(draw, max_rows: int = 10) -> TaggedRelation:
    rel = TaggedRelation(schema("t", [("k", "STR"), ("v", "INT")]), tag_schema())
    rows = draw(
        st.lists(
            st.tuples(
                KEYS,
                VALUES,
                st.one_of(st.none(), SOURCES),
                st.one_of(
                    st.none(),
                    st.floats(min_value=0, max_value=100, allow_nan=False),
                ),
            ),
            max_size=max_rows,
        )
    )
    for key, value, source, age in rows:
        tags = []
        if source is not None:
            tags.append(IndicatorValue("source", source))
        if age is not None:
            tags.append(IndicatorValue("age", age))
        rel.insert({"k": key, "v": QualityCell(value, tags)})
    return rel


def all_cell_tags(relation: TaggedRelation) -> set:
    return {
        (row.value("k"), row.value("v"), cell_tag)
        for row in relation
        for cell_tag in row["v"].tags
    }


class TestTagConservation:
    @given(tagged_relations())
    def test_select_preserves_tags(self, rel):
        result = algebra.select(rel, lambda r: r.value("v") % 2 == 0)
        assert all_cell_tags(result) <= all_cell_tags(rel)
        # And kept rows keep *all* their tags.
        for row in result:
            source_rows = [
                r
                for r in rel
                if r.values_tuple() == row.values_tuple()
                and r["v"].tags == row["v"].tags
            ]
            assert source_rows

    @given(tagged_relations())
    def test_project_preserves_tags(self, rel):
        result = algebra.project(rel, ["v"])
        assert len(result) == len(rel)
        for in_row, out_row in zip(rel, result):
            assert out_row["v"].tags == in_row["v"].tags

    @given(tagged_relations(), tagged_relations())
    def test_union_tag_multiset_is_sum(self, a, b):
        merged = algebra.union(a, b)
        assert merged.tag_count() == a.tag_count() + b.tag_count()

    @given(tagged_relations())
    def test_distinct_values_never_invents_tags(self, rel):
        result = algebra.distinct_values(rel)
        input_tags = all_cell_tags(rel)
        for row in result:
            for tag in row["v"].tags:
                assert (row.value("k"), row.value("v"), tag) in input_tags

    @given(tagged_relations())
    def test_distinct_values_idempotent(self, rel):
        once = algebra.distinct_values(rel)
        twice = algebra.distinct_values(once)
        assert [r.values_tuple() for r in once] == [
            r.values_tuple() for r in twice
        ]
        assert [r["v"].tags for r in once] == [r["v"].tags for r in twice]

    @settings(max_examples=30)
    @given(tagged_relations(max_rows=6), tagged_relations(max_rows=6))
    def test_join_output_tags_from_inputs(self, a, b):
        b_renamed = algebra.rename(b, {"k": "k2", "v": "v2"}, new_name="u")
        joined = algebra.equi_join(a, b_renamed, on=[("v", "v2")])
        a_tags = {tag for row in a for tag in row["v"].tags}
        b_tags = {tag for row in b for tag in row["v"].tags}
        for row in joined:
            for tag in row["v"].tags:
                assert tag in a_tags
            for tag in row["v2"].tags:
                assert tag in b_tags

    @given(tagged_relations())
    def test_sort_is_tag_preserving_permutation(self, rel):
        result = algebra.sort(rel, ["v"])
        def key(row):
            return (row.values_tuple(), row["v"].tags)
        assert sorted(map(key, rel), key=repr) == sorted(
            map(key, result), key=repr
        )
