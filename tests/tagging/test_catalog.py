"""Unit tests for QualityDatabase."""

import datetime as dt

import pytest

from repro.errors import SchemaError, TaggingError, UnknownRelationError
from repro.experiments.scenarios import run_trading_methodology
from repro.quality.profiles import ApplicationProfile
from repro.relational.schema import schema
from repro.tagging.catalog import QualityDatabase
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue
from repro.tagging.query import IndicatorConstraint, QualityFilter


@pytest.fixture
def qdb(customer_schema, customer_tag_schema, tagged_customers):
    database = QualityDatabase("corp")
    database.attach(tagged_customers)
    return database


class TestBasics:
    def test_requires_name(self):
        with pytest.raises(TaggingError):
            QualityDatabase("")

    def test_create_and_lookup(self, customer_schema, customer_tag_schema):
        database = QualityDatabase("corp")
        database.create_relation(customer_schema, customer_tag_schema)
        assert "customer" in database
        assert len(database.relation("customer")) == 0

    def test_duplicate_rejected(self, qdb, customer_schema):
        with pytest.raises(SchemaError):
            qdb.create_relation(customer_schema)

    def test_unknown_relation(self, qdb):
        with pytest.raises(UnknownRelationError):
            qdb.relation("ghost")

    def test_insert_delegates(self, qdb):
        qdb.insert(
            "customer",
            {
                "co_name": "New Co",
                "address": QualityCell(
                    "1 Elm", [IndicatorValue("source", "sales")]
                ),
                "employees": 5,
            },
        )
        assert len(qdb.relation("customer")) == 3

    def test_render_summary(self, qdb):
        qdb.aggregate_tags.relation("customer").set(
            IndicatorValue("population_method", "full census")
        )
        text = qdb.render_summary()
        assert "customer: 2 rows, 8 tags" in text
        assert "population_method" in text


class TestQueryAndProfiles:
    def test_qsql(self, qdb):
        result = qdb.query(
            "SELECT co_name FROM customer WHERE "
            "QUALITY(employees.source) = 'estimate'"
        )
        assert [row.value("co_name") for row in result] == ["Nut Co"]

    def test_profiles(self, qdb):
        qdb.register_profile(
            ApplicationProfile(
                "verified_only",
                QualityFilter(
                    [IndicatorConstraint("employees", "source", "!=", "estimate")],
                    name="verified_only",
                ),
            )
        )
        result = qdb.retrieve("verified_only", "customer")
        assert len(result) == 1


class TestFromQualitySchema:
    def test_instantiation(self):
        modeling = run_trading_methodology()
        database = QualityDatabase.from_quality_schema(modeling.quality_schema)
        assert set(database.relation_names) == {
            "client",
            "company_stock",
            "trade",
        }
        stock = database.relation("company_stock")
        assert "age" in stock.tag_schema.required_for("share_price")

    def test_requirements_enforced_on_insert(self):
        modeling = run_trading_methodology()
        database = QualityDatabase.from_quality_schema(modeling.quality_schema)
        with pytest.raises(Exception):
            # share_price without its mandatory age tag.
            database.insert(
                "company_stock",
                {
                    "ticker_symbol": "FRT",
                    "share_price": 10.0,
                    "research_report": None,
                },
            )
        database.insert(
            "company_stock",
            {
                "ticker_symbol": "FRT",
                "share_price": QualityCell(
                    10.0, [IndicatorValue("age", 0.1)]
                ),
                "research_report": QualityCell(
                    "buy",
                    [
                        IndicatorValue("analyst_name", "kim"),
                        IndicatorValue("price", 100.0),
                        IndicatorValue("media", "ASCII"),
                    ],
                ),
            },
        )
        assert len(database.relation("company_stock")) == 1

    def test_monitor_round_trip(self):
        modeling = run_trading_methodology()
        database = QualityDatabase.from_quality_schema(modeling.quality_schema)
        database.insert(
            "company_stock",
            {
                "ticker_symbol": "FRT",
                "share_price": QualityCell(
                    10.0, [IndicatorValue("age", 0.1)]
                ),
                "research_report": QualityCell(
                    "buy",
                    [
                        IndicatorValue("analyst_name", "kim"),
                        IndicatorValue("price", 100.0),
                        IndicatorValue("media", "ASCII"),
                    ],
                ),
            },
        )
        report = database.monitor(modeling.quality_schema)
        assert report.conforms
