"""Unit tests for the columnar tag store (the E2 ablation alternative)."""

import datetime as dt

import pytest

from repro.errors import TagSchemaError, UnknownIndicatorError
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.tagging.columnar import ColumnarTagStore
from repro.tagging.indicators import IndicatorDefinition, TagSchema


@pytest.fixture
def store(customer_schema, customer_tag_schema):
    relation = Relation.from_tuples(
        customer_schema,
        [("Fruit Co", "12 Jay St", 4004), ("Nut Co", "62 Lois Av", 700)],
    )
    built = ColumnarTagStore(relation, customer_tag_schema)
    built.set_tag(0, "address", "source", "sales")
    built.set_tag(0, "address", "creation_time", dt.date(1991, 1, 2))
    built.set_tag(1, "address", "source", "acct'g")
    built.set_tag(1, "address", "creation_time", dt.date(1991, 10, 24))
    built.set_tag(0, "employees", "source", "Nexis")
    built.set_tag(1, "employees", "source", "estimate")
    return built


class TestBasics:
    def test_tag_value(self, store):
        assert store.tag_value(1, "address", "source") == "acct'g"
        assert store.tag_value(0, "employees", "creation_time") is None

    def test_tag_count(self, store):
        assert store.tag_count() == 6

    def test_domain_validated(self, store):
        store.set_tag(0, "address", "creation_time", "1991-03-01")
        assert store.tag_value(0, "address", "creation_time") == dt.date(
            1991, 3, 1
        )

    def test_unknown_indicator(self, store):
        with pytest.raises(UnknownIndicatorError):
            store.set_tag(0, "address", "ghost", 1)
        with pytest.raises(UnknownIndicatorError):
            store.tag_value(0, "co_name", "source")

    def test_tag_array(self, store):
        assert store.tag_array("employees", "source") == ("Nexis", "estimate")

    def test_append_keeps_alignment(self, store):
        index = store.append(
            {"co_name": "New Co", "address": "9 Elm", "employees": 5},
            tags={("address", "source"): "sales"},
        )
        assert index == 2
        assert len(store) == 3
        assert store.tag_value(2, "address", "source") == "sales"
        assert store.tag_value(2, "employees", "source") is None
        assert len(store.tag_array("address", "creation_time")) == 3


class TestFiltering:
    def test_filter_indices(self, store):
        hits = store.filter_indices("employees", "source", "!=", "estimate")
        assert hits == [0]

    def test_filter_materializes(self, store):
        result = store.filter("address", "source", "==", "acct'g")
        assert result.to_dicts()[0]["co_name"] == "Nut Co"

    def test_missing_ok(self, store):
        hits = store.filter_indices(
            "employees", "creation_time", ">=", dt.date(1991, 1, 1),
            missing_ok=True,
        )
        assert hits == [0, 1]

    def test_incomparable_skipped(self, store):
        hits = store.filter_indices(
            "address", "creation_time", ">", "not-a-date"
        )
        assert hits == []

    def test_bad_operator(self, store):
        with pytest.raises(TagSchemaError):
            store.filter_indices("address", "source", "~", 1)


class TestConversions:
    def test_round_trip_through_tagged_relation(self, store, tagged_customers):
        tagged = store.to_tagged_relation()
        assert len(tagged) == 2
        assert tagged.rows[1]["address"].tag_value("source") == "acct'g"
        back = ColumnarTagStore.from_tagged_relation(tagged)
        assert back.tag_count() == store.tag_count()
        assert back.tag_array("employees", "source") == store.tag_array(
            "employees", "source"
        )

    def test_from_table2(self, tagged_customers):
        store = ColumnarTagStore.from_tagged_relation(tagged_customers)
        assert store.tag_count() == tagged_customers.tag_count()
        assert store.tag_value(1, "employees", "source") == "estimate"

    def test_equivalent_filter_answers(self, tagged_customers):
        """Ablation invariant: both representations answer identically."""
        from repro.tagging.query import QualityQuery

        store = ColumnarTagStore.from_tagged_relation(tagged_customers)
        per_cell = (
            QualityQuery(tagged_customers)
            .require("employees", "source", "!=", "estimate")
            .values()
        )
        columnar = store.filter(
            "employees", "source", "!=", "estimate"
        ).to_dicts()
        assert per_cell == columnar
