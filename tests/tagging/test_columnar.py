"""Unit tests for the columnar tag store (the E2 ablation alternative)."""

import datetime as dt

import pytest

from repro.errors import TagSchemaError, UnknownIndicatorError
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.tagging.columnar import ColumnarTagStore
from repro.tagging.indicators import IndicatorDefinition, TagSchema


@pytest.fixture
def store(customer_schema, customer_tag_schema):
    relation = Relation.from_tuples(
        customer_schema,
        [("Fruit Co", "12 Jay St", 4004), ("Nut Co", "62 Lois Av", 700)],
    )
    built = ColumnarTagStore(relation, customer_tag_schema)
    built.set_tag(0, "address", "source", "sales")
    built.set_tag(0, "address", "creation_time", dt.date(1991, 1, 2))
    built.set_tag(1, "address", "source", "acct'g")
    built.set_tag(1, "address", "creation_time", dt.date(1991, 10, 24))
    built.set_tag(0, "employees", "source", "Nexis")
    built.set_tag(1, "employees", "source", "estimate")
    return built


class TestBasics:
    def test_tag_value(self, store):
        assert store.tag_value(1, "address", "source") == "acct'g"
        assert store.tag_value(0, "employees", "creation_time") is None

    def test_tag_count(self, store):
        assert store.tag_count() == 6

    def test_domain_validated(self, store):
        store.set_tag(0, "address", "creation_time", "1991-03-01")
        assert store.tag_value(0, "address", "creation_time") == dt.date(
            1991, 3, 1
        )

    def test_unknown_indicator(self, store):
        with pytest.raises(UnknownIndicatorError):
            store.set_tag(0, "address", "ghost", 1)
        with pytest.raises(UnknownIndicatorError):
            store.tag_value(0, "co_name", "source")

    def test_tag_array(self, store):
        assert store.tag_array("employees", "source") == ("Nexis", "estimate")

    def test_append_keeps_alignment(self, store):
        index = store.append(
            {"co_name": "New Co", "address": "9 Elm", "employees": 5},
            tags={("address", "source"): "sales"},
        )
        assert index == 2
        assert len(store) == 3
        assert store.tag_value(2, "address", "source") == "sales"
        assert store.tag_value(2, "employees", "source") is None
        assert len(store.tag_array("address", "creation_time")) == 3


class TestFiltering:
    def test_filter_indices(self, store):
        hits = store.filter_indices("employees", "source", "!=", "estimate")
        assert hits == [0]

    def test_filter_materializes(self, store):
        result = store.filter("address", "source", "==", "acct'g")
        assert result.to_dicts()[0]["co_name"] == "Nut Co"

    def test_missing_ok(self, store):
        hits = store.filter_indices(
            "employees", "creation_time", ">=", dt.date(1991, 1, 1),
            missing_ok=True,
        )
        assert hits == [0, 1]

    def test_incomparable_skipped(self, store):
        hits = store.filter_indices(
            "address", "creation_time", ">", "not-a-date"
        )
        assert hits == []

    def test_bad_operator(self, store):
        with pytest.raises(TagSchemaError):
            store.filter_indices("address", "source", "~", 1)


class TestConversions:
    def test_round_trip_through_tagged_relation(self, store, tagged_customers):
        tagged = store.to_tagged_relation()
        assert len(tagged) == 2
        assert tagged.rows[1]["address"].tag_value("source") == "acct'g"
        back = ColumnarTagStore.from_tagged_relation(tagged)
        assert back.tag_count() == store.tag_count()
        assert back.tag_array("employees", "source") == store.tag_array(
            "employees", "source"
        )

    def test_from_table2(self, tagged_customers):
        store = ColumnarTagStore.from_tagged_relation(tagged_customers)
        assert store.tag_count() == tagged_customers.tag_count()
        assert store.tag_value(1, "employees", "source") == "estimate"

    def test_equivalent_filter_answers(self, tagged_customers):
        """Ablation invariant: both representations answer identically."""
        from repro.tagging.query import QualityQuery

        store = ColumnarTagStore.from_tagged_relation(tagged_customers)
        per_cell = (
            QualityQuery(tagged_customers)
            .require("employees", "source", "!=", "estimate")
            .values()
        )
        columnar = store.filter(
            "employees", "source", "!=", "estimate"
        ).to_dicts()
        assert per_cell == columnar


class TestDeletionAlignment:
    """Deletion must keep every (column, indicator) array aligned."""

    def test_delete_then_scan_stays_aligned(self, store):
        store.append(
            {"co_name": "Third Co", "address": "1 Oak St", "employees": 50},
            tags={
                ("address", "source"): "sales",
                ("employees", "source"): "Nexis",
            },
        )
        removed = store.delete(lambda row: row["co_name"] == "Fruit Co")
        assert removed == 1
        assert len(store) == 2
        # Every array dropped the same position: scanning after the
        # delete must return the rows the surviving tags describe.
        hits = store.scan([("employees", "source", "==", "Nexis")])
        assert [store.relation.rows[i]["co_name"] for i in hits] == [
            "Third Co"
        ]
        hits = store.scan([("address", "source", "==", "acct'g")])
        assert [store.relation.rows[i]["co_name"] for i in hits] == ["Nut Co"]
        assert len(store.tag_array("address", "creation_time")) == 2

    def test_delete_no_match_is_noop(self, store):
        assert store.delete(lambda row: False) == 0
        assert len(store) == 2
        assert len(store.tag_array("address", "source")) == 2

    def test_delete_conjunctive_scan_after_multiple_deletes(self, store):
        for name in ("New1", "New2", "New3"):
            store.append(
                {"co_name": name, "address": "9 Elm", "employees": 10},
                tags={
                    ("address", "source"): "sales",
                    ("address", "creation_time"): dt.date(1992, 1, 1),
                },
            )
        store.delete(lambda row: row["co_name"] == "New2")
        store.delete(lambda row: row["co_name"] == "Nut Co")
        hits = store.scan(
            [
                ("address", "source", "==", "sales"),
                ("address", "creation_time", ">=", dt.date(1992, 1, 1)),
            ]
        )
        assert [store.relation.rows[i]["co_name"] for i in hits] == [
            "New1",
            "New3",
        ]

    def test_divergent_backing_relation_raises(self, store):
        # Mutating the relation behind the store's back desynchronizes
        # the arrays; scans must fail loudly instead of misaligning.
        store.relation.insert(
            {"co_name": "Rogue Co", "address": "?", "employees": 1}
        )
        with pytest.raises(TagSchemaError, match="out of sync"):
            store.scan([("address", "source", "==", "sales")])
        with pytest.raises(TagSchemaError, match="mutate through the store"):
            store.check_aligned()
        with pytest.raises(TagSchemaError):
            store.delete(lambda row: True)


class TestStoreCaching:
    """TaggedRelation.columnar_store(): lazy build + version invalidation."""

    def test_store_is_cached_until_mutation(self, tagged_customers):
        first = tagged_customers.columnar_store()
        assert tagged_customers.columnar_store() is first
        tagged_customers.insert(
            {
                "co_name": "New Co",
                "address": "9 Elm",
                "employees": 5,
            }
        )
        rebuilt = tagged_customers.columnar_store()
        assert rebuilt is not first
        assert len(rebuilt) == len(tagged_customers)

    def test_delete_invalidates_cached_store(self, tagged_customers):
        before = tagged_customers.columnar_store()
        removed = tagged_customers.delete(
            lambda row: row.value("co_name") == "Fruit Co"
        )
        assert removed == 1
        after = tagged_customers.columnar_store()
        assert after is not before
        assert len(after) == len(tagged_customers)
        assert after.scan([("address", "source", "==", "sales")]) == []


class TestScanMissingOk:
    """5-tuple scan constraints: (column, indicator, op, operand, missing_ok)."""

    @pytest.fixture
    def sparse(self, customer_schema, customer_tag_schema):
        relation = Relation.from_tuples(
            customer_schema,
            [
                ("A Co", "1 St", 1),
                ("B Co", "2 St", 2),
                ("C Co", "3 St", 3),
            ],
        )
        built = ColumnarTagStore(relation, customer_tag_schema)
        # Only rows 0 and 2 carry a source; row 1 is untagged.
        built.set_tag(0, "address", "source", "sales")
        built.set_tag(2, "address", "source", "acct'g")
        built.set_tag(0, "employees", "source", "Nexis")
        return built

    def test_four_tuple_misses_untagged(self, sparse):
        assert sparse.scan([("address", "source", "!=", "ghost")]) == [0, 2]

    def test_missing_ok_emits_untagged(self, sparse):
        hits = sparse.scan([("address", "source", "!=", "ghost", True)])
        assert hits == [0, 1, 2]

    def test_missing_ok_equality_skips_index_hop(self, sparse):
        # The list.index fast path cannot emit Nones, so equality with
        # missing_ok must take the per-element loop — and include row 1.
        hits = sparse.scan([("address", "source", "==", "sales", True)])
        assert hits == [0, 1]

    def test_missing_ok_on_survivor_probe(self, sparse):
        # Second constraint probes only the first's survivors; untagged
        # survivors pass when missing_ok is set.
        hits = sparse.scan(
            [
                ("address", "source", "!=", "ghost", True),
                ("employees", "source", "==", "Nexis", True),
            ]
        )
        assert hits == [0, 1, 2]
        strict = sparse.scan(
            [
                ("address", "source", "!=", "ghost", True),
                ("employees", "source", "==", "Nexis"),
            ]
        )
        assert strict == [0]

    def test_matches_indicator_constraint_semantics(self, sparse):
        from repro.tagging.query import IndicatorConstraint

        tagged = sparse.to_tagged_relation()
        for missing_ok in (False, True):
            constraint = IndicatorConstraint(
                "address", "source", "==", "sales", missing_ok=missing_ok
            )
            per_row = [
                index
                for index, row in enumerate(tagged)
                if constraint.test(row)
            ]
            scanned = sparse.scan(
                [("address", "source", "==", "sales", missing_ok)]
            )
            assert scanned == per_row
