"""Unit tests for tagged relations."""

import datetime as dt

import pytest

from repro.errors import (
    DomainError,
    TagSchemaError,
    UnknownColumnError,
    UnknownIndicatorError,
)
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation, TaggedRow


class TestTaggedRow:
    def test_values_and_cells(self, tagged_customers):
        row = tagged_customers.rows[0]
        assert row.value("co_name") == "Fruit Co"
        assert row["address"].tag_value("source") == "sales"
        assert row.values_dict()["employees"] == 4004

    def test_plain_values_wrapped(self, customer_schema, customer_tag_schema):
        row = TaggedRow(
            customer_schema,
            customer_tag_schema,
            {"co_name": "X", "address": "1 St", "employees": 5},
        )
        assert row["address"].tags == ()

    def test_unknown_column_rejected(self, customer_schema, customer_tag_schema):
        with pytest.raises(UnknownColumnError):
            TaggedRow(
                customer_schema, customer_tag_schema, {"bogus": 1}
            )

    def test_domain_validated(self, customer_schema, customer_tag_schema):
        with pytest.raises(DomainError):
            TaggedRow(
                customer_schema,
                customer_tag_schema,
                {"co_name": "X", "employees": "lots"},
            )

    def test_tag_schema_enforced(self, customer_schema, customer_tag_schema):
        with pytest.raises(UnknownIndicatorError):
            TaggedRow(
                customer_schema,
                customer_tag_schema,
                {
                    "co_name": QualityCell(
                        "X", [IndicatorValue("source", "nope")]
                    )
                },
            )


class TestTaggedRelation:
    def test_insert_and_count(self, tagged_customers):
        assert len(tagged_customers) == 2

    def test_required_tags_enforced(self, customer_schema):
        strict = TagSchema(
            indicators=[IndicatorDefinition("source")],
            required={"address": ["source"]},
        )
        rel = TaggedRelation(customer_schema, strict)
        with pytest.raises(TagSchemaError):
            rel.insert({"co_name": "X", "address": "1 St", "employees": 1})
        rel.insert(
            {
                "co_name": "X",
                "address": QualityCell("1 St", [IndicatorValue("source", "s")]),
                "employees": 1,
            }
        )
        assert len(rel) == 1

    def test_tag_schema_checked_against_relation(self, customer_tag_schema):
        wrong = schema("t", [("x", "INT")])
        with pytest.raises(TagSchemaError):
            TaggedRelation(wrong, customer_tag_schema)

    def test_delete(self, tagged_customers):
        removed = tagged_customers.delete(
            lambda r: r.value("co_name") == "Nut Co"
        )
        assert removed == 1
        assert len(tagged_customers) == 1

    def test_values_relation_strips_tags(self, tagged_customers):
        plain = tagged_customers.values_relation()
        assert isinstance(plain, Relation)
        assert plain.to_dicts()[1] == {
            "co_name": "Nut Co",
            "address": "62 Lois Av",
            "employees": 700,
        }

    def test_from_relation_with_tagger(
        self, customer_relation, customer_tag_schema
    ):
        def tagger(column, value):
            if column in ("address", "employees"):
                return [IndicatorValue("source", "conversion")]
            return []

        tagged = TaggedRelation.from_relation(
            customer_relation, customer_tag_schema, tagger
        )
        assert tagged.rows[0]["address"].tag_value("source") == "conversion"
        assert tagged.rows[0]["co_name"].tags == ()

    def test_from_relation_untagged(self, customer_relation):
        tagged = TaggedRelation.from_relation(customer_relation)
        assert tagged.tag_count() == 0


class TestTaggedRelationStats:
    def test_tag_count(self, tagged_customers):
        assert tagged_customers.tag_count() == 8

    def test_tag_coverage_full(self, tagged_customers):
        assert tagged_customers.tag_coverage("address", "source") == 1.0

    def test_tag_coverage_partial(self, customer_schema, customer_tag_schema):
        rel = TaggedRelation(customer_schema, customer_tag_schema)
        rel.insert(
            {
                "co_name": "A",
                "address": QualityCell("1", [IndicatorValue("source", "s")]),
                "employees": 1,
            }
        )
        rel.insert({"co_name": "B", "address": "2", "employees": 2})
        assert rel.tag_coverage("address", "source") == 0.5

    def test_tag_coverage_empty(self, customer_schema, customer_tag_schema):
        rel = TaggedRelation(customer_schema, customer_tag_schema)
        assert rel.tag_coverage("address", "source") == 0.0


class TestTaggedRender:
    def test_table2_style(self, tagged_customers):
        text = tagged_customers.render(
            title="Table 2: Customer information with quality tags"
        )
        assert "62 Lois Av (10-24-91, acct'g)" in text
        assert "700 (10-09-91, estimate)" in text

    def test_values_only_render(self, tagged_customers):
        text = tagged_customers.render(show_tags=False)
        assert "(10-24-91" not in text
        assert "62 Lois Av" in text

    def test_truncation(self, tagged_customers):
        text = tagged_customers.render(max_rows=1)
        assert "1 more rows" in text
