"""Fast path ≡ naive path for the quality-extended algebra.

Tag propagation makes equivalence stricter than value equality: every
output cell must carry exactly the tags the naive (re-validating) path
would have produced, cell for cell.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnknownColumnError
from repro.experiments import naive
from repro.tagging import algebra
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.query import IndicatorConstraint, QualityFilter
from repro.relational.schema import schema

SCHEMA = schema("t", [("name", "STR"), ("n", "INT")])
TAGS = TagSchema(
    indicators=[
        IndicatorDefinition("src", "STR"),
        IndicatorDefinition("score", "INT"),
    ],
    allowed={"name": ["src", "score"], "n": ["src", "score"]},
)

NAMES = st.none() | st.text(alphabet="abcdef", max_size=6)
INTS = st.none() | st.integers(min_value=-50, max_value=50)


@st.composite
def cells(draw, value_strategy):
    """A QualityCell with a random subset of the allowed indicators."""
    tags = []
    if draw(st.booleans()):
        tags.append(IndicatorValue("src", draw(st.sampled_from("xyz"))))
    if draw(st.booleans()):
        tags.append(
            IndicatorValue("score", draw(st.integers(min_value=0, max_value=9)))
        )
    return QualityCell(draw(value_strategy), tags)


@st.composite
def tagged_relations(draw, max_rows: int = 8):
    from repro.tagging.relation import TaggedRelation

    relation = TaggedRelation(SCHEMA, TAGS)
    for _ in range(draw(st.integers(min_value=0, max_value=max_rows))):
        relation.insert(
            {"name": draw(cells(NAMES)), "n": draw(cells(INTS))}
        )
    return relation


def assert_same(fast, slow) -> None:
    """Identical schema, rows, values, and tags — cell for cell."""
    assert fast.schema.column_names == slow.schema.column_names
    assert fast.tag_schema == slow.tag_schema
    assert len(fast) == len(slow)
    for fast_row, slow_row in zip(fast, slow):
        assert fast_row.cells == slow_row.cells


class TestUnknownColumn:
    def test_tagged_row_lookup_raises_unknown_column_error(
        self, tagged_customers
    ):
        row = tagged_customers.rows[0]
        with pytest.raises(UnknownColumnError):
            row["no_such_column"]

    def test_known_lookup_keeps_tags(self, tagged_customers):
        cell = tagged_customers.rows[0]["address"]
        assert cell.value == "12 Jay St"
        assert cell.tag_value("source") == "sales"


class TestFastEqualsNaive:
    @given(tagged_relations())
    def test_select(self, rel):
        predicate = lambda r: r.value("n") is not None and r.value("n") > 0
        assert_same(
            algebra.select(rel, predicate),
            naive.naive_tagged_select(rel, predicate),
        )

    @given(tagged_relations())
    def test_project(self, rel):
        assert_same(
            algebra.project(rel, ["n"]), naive.naive_tagged_project(rel, ["n"])
        )

    @given(tagged_relations(), tagged_relations())
    def test_equi_join(self, left, right):
        on = [("n", "n")]
        assert_same(
            algebra.equi_join(left, right, on),
            naive.naive_tagged_equi_join(left, right, on),
        )

    @given(
        tagged_relations(),
        st.integers(min_value=0, max_value=9),
        st.booleans(),
    )
    def test_quality_filter_pushdown(self, rel, threshold, missing_ok):
        quality_filter = QualityFilter(
            [
                IndicatorConstraint(
                    "n", "score", ">=", threshold, missing_ok=missing_ok
                )
            ],
            name="grade",
        )
        assert_same(
            quality_filter.apply(rel),
            naive.naive_quality_filter(rel, quality_filter),
        )

    @given(tagged_relations())
    def test_quality_filter_unknown_column_still_raises(self, rel):
        bad = QualityFilter(
            [IndicatorConstraint("missing_col", "score", ">=", 1)]
        )
        with pytest.raises(UnknownColumnError):
            bad.apply(rel)
