"""Unit tests for quality cells."""

import datetime as dt

import pytest

from repro.errors import UnknownIndicatorError
from repro.tagging.cell import QualityCell, plain
from repro.tagging.indicators import IndicatorValue


class TestCellBasics:
    def test_untagged(self):
        cell = plain(42)
        assert cell.value == 42
        assert cell.tags == ()

    def test_tags_sorted_by_name(self):
        cell = QualityCell(
            1, [IndicatorValue("source", "s"), IndicatorValue("age", 2.0)]
        )
        assert cell.indicator_names == ("age", "source")

    def test_duplicate_tag_last_wins(self):
        cell = QualityCell(
            1, [IndicatorValue("source", "a"), IndicatorValue("source", "b")]
        )
        assert cell.tag_value("source") == "b"

    def test_tag_lookup(self):
        cell = QualityCell(1, [IndicatorValue("source", "s")])
        assert cell.has_tag("source")
        assert cell.tag("source").value == "s"
        with pytest.raises(UnknownIndicatorError):
            cell.tag("ghost")

    def test_tag_value_default(self):
        cell = plain(1)
        assert cell.tag_value("source", "unknown") == "unknown"

    def test_tags_dict(self):
        cell = QualityCell(1, [IndicatorValue("source", "s")])
        assert cell.tags_dict() == {"source": "s"}


class TestCellDerivation:
    def test_with_tag_adds(self):
        cell = plain(1).with_tag(IndicatorValue("source", "s"))
        assert cell.tag_value("source") == "s"

    def test_with_tag_replaces(self):
        cell = QualityCell(1, [IndicatorValue("source", "a")])
        replaced = cell.with_tag(IndicatorValue("source", "b"))
        assert replaced.tag_value("source") == "b"
        assert cell.tag_value("source") == "a"  # original unchanged

    def test_with_tags_many(self):
        cell = plain(1).with_tags(
            [IndicatorValue("a", 1), IndicatorValue("b", 2)]
        )
        assert cell.indicator_names == ("a", "b")

    def test_without_tag(self):
        cell = QualityCell(1, [IndicatorValue("source", "s")])
        assert not cell.without_tag("source").has_tag("source")
        assert cell.without_tag("ghost") == cell

    def test_with_value(self):
        cell = QualityCell(1, [IndicatorValue("source", "s")])
        updated = cell.with_value(2)
        assert updated.value == 2
        assert updated.tags == cell.tags


class TestCellRender:
    def test_paper_style(self):
        cell = QualityCell(
            "62 Lois Av",
            [
                IndicatorValue("creation_time", dt.date(1991, 10, 24)),
                IndicatorValue("source", "acct'g"),
            ],
        )
        assert cell.render() == "62 Lois Av (10-24-91, acct'g)"

    def test_untagged_renders_value_only(self):
        assert plain(700).render() == "700"

    def test_none_value(self):
        assert plain(None).render() == ""
        tagged_none = QualityCell(None, [IndicatorValue("source", "s")])
        assert tagged_none.render() == " (s)"


class TestCellEquality:
    def test_value_and_tags(self):
        a = QualityCell(1, [IndicatorValue("s", "x")])
        b = QualityCell(1, [IndicatorValue("s", "x")])
        assert a == b and hash(a) == hash(b)

    def test_tags_matter(self):
        a = QualityCell(1, [IndicatorValue("s", "x")])
        b = QualityCell(1)
        assert a != b

    def test_unhashable_value_still_hashable_cell(self):
        cell = QualityCell([1, 2, 3])
        hash(cell)  # must not raise
