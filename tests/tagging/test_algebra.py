"""Unit tests for the quality-extended algebra (tag propagation)."""

import datetime as dt

import pytest

from repro.errors import QueryError, SchemaError, TagSchemaError
from repro.relational.schema import schema
from repro.tagging import algebra
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation


class TestSelect:
    def test_predicate_over_values_and_tags(self, tagged_customers):
        by_value = algebra.select(
            tagged_customers, lambda r: r.value("employees") > 1000
        )
        assert len(by_value) == 1
        by_tag = algebra.select(
            tagged_customers,
            lambda r: r["employees"].tag_value("source") == "estimate",
        )
        assert len(by_tag) == 1
        assert by_tag.rows[0].value("co_name") == "Nut Co"

    def test_tags_travel(self, tagged_customers):
        result = algebra.select(tagged_customers, lambda r: True)
        assert result.rows[0]["address"].tags == (
            tagged_customers.rows[0]["address"].tags
        )


class TestProject:
    def test_tags_kept_on_projected_columns(self, tagged_customers):
        result = algebra.project(tagged_customers, ["address"])
        assert result.rows[0]["address"].tag_value("source") == "sales"

    def test_tag_schema_projected(self, tagged_customers):
        result = algebra.project(tagged_customers, ["co_name"])
        assert result.tag_schema.tagged_columns == ()

    def test_requires_columns(self, tagged_customers):
        with pytest.raises(QueryError):
            algebra.project(tagged_customers, [])


class TestRename:
    def test_tag_schema_renamed_in_lockstep(self, tagged_customers):
        result = algebra.rename(tagged_customers, {"address": "addr"})
        assert result.rows[0]["addr"].tag_value("source") == "sales"
        assert "addr" in result.tag_schema.tagged_columns


class TestUnion:
    def test_same_values_different_tags_both_kept(
        self, customer_schema, customer_tag_schema
    ):
        a = TaggedRelation(customer_schema, customer_tag_schema)
        a.insert(
            {
                "co_name": "X",
                "address": QualityCell("1 St", [IndicatorValue("source", "a")]),
                "employees": 1,
            }
        )
        b = TaggedRelation(customer_schema, customer_tag_schema)
        b.insert(
            {
                "co_name": "X",
                "address": QualityCell("1 St", [IndicatorValue("source", "b")]),
                "employees": 1,
            }
        )
        merged = algebra.union(a, b)
        assert len(merged) == 2
        sources = {row["address"].tag_value("source") for row in merged}
        assert sources == {"a", "b"}

    def test_incompatible_schemas(self, tagged_customers):
        other = TaggedRelation(schema("t", [("x", "INT")]))
        with pytest.raises(SchemaError):
            algebra.union(tagged_customers, other)


class TestDifference:
    def test_value_based(self, tagged_customers):
        untagged_copy = TaggedRelation(
            tagged_customers.schema, tagged_customers.tag_schema
        )
        untagged_copy.insert(
            {"co_name": "Nut Co", "address": "62 Lois Av", "employees": 700}
        )
        result = algebra.difference(tagged_customers, untagged_copy)
        # The Nut Co row cancels despite different tags (value identity).
        assert len(result) == 1
        assert result.rows[0].value("co_name") == "Fruit Co"

    def test_survivors_keep_tags(self, tagged_customers):
        empty = tagged_customers.empty_like()
        result = algebra.difference(tagged_customers, empty)
        assert result.rows[0]["address"].tag_value("source") == "sales"


class TestDistinctValues:
    def test_conservative_tag_merge(self, customer_schema, customer_tag_schema):
        rel = TaggedRelation(customer_schema, customer_tag_schema)
        shared_date = IndicatorValue("creation_time", dt.date(1991, 1, 1))
        rel.insert(
            {
                "co_name": "X",
                "address": QualityCell(
                    "1 St", [IndicatorValue("source", "a"), shared_date]
                ),
                "employees": 1,
            }
        )
        rel.insert(
            {
                "co_name": "X",
                "address": QualityCell(
                    "1 St", [IndicatorValue("source", "b"), shared_date]
                ),
                "employees": 1,
            }
        )
        result = algebra.distinct_values(rel)
        assert len(result) == 1
        cell = result.rows[0]["address"]
        # Conflicting source dropped; agreed creation_time kept.
        assert not cell.has_tag("source")
        assert cell.tag_value("creation_time") == dt.date(1991, 1, 1)


class TestEquiJoin:
    def test_tags_follow_sides(self, tagged_customers):
        other_schema = schema(
            "ratings", [("company", "STR"), ("rating", "STR")]
        )
        ratings_tags = TagSchema(
            indicators=[IndicatorDefinition("source")],
            allowed={"rating": ["source"]},
        )
        ratings = TaggedRelation(other_schema, ratings_tags)
        ratings.insert(
            {
                "company": "Nut Co",
                "rating": QualityCell("A", [IndicatorValue("source", "moody")]),
            }
        )
        joined = algebra.equi_join(
            tagged_customers, ratings, on=[("co_name", "company")]
        )
        assert len(joined) == 1
        row = joined.rows[0]
        assert row["address"].tag_value("source") == "acct'g"
        assert row["rating"].tag_value("source") == "moody"

    def test_join_requires_on(self, tagged_customers):
        with pytest.raises(QueryError):
            algebra.equi_join(tagged_customers, tagged_customers, on=[])

    def test_self_join_columns_qualified(self, tagged_customers):
        joined = algebra.equi_join(
            tagged_customers, tagged_customers, on=[("co_name", "co_name")]
        )
        assert "customer.address" in joined.schema
        assert "customer#2.address" in joined.schema
        assert len(joined) == 2


class TestSort:
    def test_sort_by_value(self, tagged_customers):
        result = algebra.sort(tagged_customers, ["employees"])
        assert [r.value("employees") for r in result] == [700, 4004]

    def test_sort_by_tag(self, tagged_customers):
        result = algebra.sort(
            tagged_customers, ["address"], key_indicator="creation_time"
        )
        assert [r.value("co_name") for r in result] == ["Fruit Co", "Nut Co"]

    def test_sort_by_tag_descending(self, tagged_customers):
        result = algebra.sort(
            tagged_customers,
            ["address"],
            key_indicator="creation_time",
            descending=True,
        )
        assert [r.value("co_name") for r in result] == ["Nut Co", "Fruit Co"]


class TestRetag:
    def test_applies_tag(self, tagged_customers):
        result = algebra.retag(
            tagged_customers,
            "address",
            lambda row: IndicatorValue("source", "verified"),
        )
        assert all(
            row["address"].tag_value("source") == "verified" for row in result
        )

    def test_none_skips(self, tagged_customers):
        result = algebra.retag(
            tagged_customers,
            "address",
            lambda row: None
            if row.value("co_name") == "Fruit Co"
            else IndicatorValue("source", "verified"),
        )
        assert result.rows[0]["address"].tag_value("source") == "sales"
        assert result.rows[1]["address"].tag_value("source") == "verified"

    def test_disallowed_indicator_rejected(self, tagged_customers):
        with pytest.raises(TagSchemaError):
            algebra.retag(
                tagged_customers,
                "address",
                lambda row: IndicatorValue("ghost", 1),
            )
