"""Unit tests for meta-quality tagging (Premise 1.4)."""

import pytest

from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue
from repro.tagging.meta import (
    audit_tag_provenance,
    meta_coverage,
    meta_value,
    min_confidence_filter,
    stamp_meta,
    tags_with_meta,
)


class TestStampMeta:
    def test_standard_keys(self):
        tag = stamp_meta(
            IndicatorValue("source", "acct'g"),
            recorded_by="etl-7",
            recorded_on="1991-11-01",
            confidence=0.9,
        )
        meta = tag.meta_dict()
        assert meta["recorded_by"] == "etl-7"
        assert meta["recorded_on"] == "1991-11-01"
        assert meta["confidence"] == 0.9

    def test_extra_keys(self):
        tag = stamp_meta(IndicatorValue("source", "x"), batch=42)
        assert tag.meta_dict()["batch"] == 42

    def test_confidence_bounds(self):
        with pytest.raises(ValueError):
            stamp_meta(IndicatorValue("s", "x"), confidence=1.5)

    def test_original_unchanged(self):
        original = IndicatorValue("source", "x")
        stamp_meta(original, recorded_by="a")
        assert original.meta == ()


class TestMetaAccess:
    def test_meta_value(self):
        cell = QualityCell(
            1, [stamp_meta(IndicatorValue("source", "x"), confidence=0.8)]
        )
        assert meta_value(cell, "source", "confidence") == 0.8
        assert meta_value(cell, "source", "missing", "dflt") == "dflt"
        assert meta_value(cell, "ghost", "confidence") is None


def _build_relation(confidences):
    from repro.relational.schema import schema
    from repro.tagging.indicators import IndicatorDefinition, TagSchema
    from repro.tagging.relation import TaggedRelation

    ts = TagSchema(
        indicators=[IndicatorDefinition("source")],
        allowed={"v": ["source"]},
    )
    rel = TaggedRelation(schema("t", [("k", "STR"), ("v", "INT")]), ts)
    for i, confidence in enumerate(confidences):
        tag = IndicatorValue("source", "s")
        if confidence is not None:
            tag = stamp_meta(tag, confidence=confidence, recorded_by=f"op{i}")
        rel.insert({"k": str(i), "v": QualityCell(i, [tag])})
    return rel


class TestMetaFilters:
    def test_min_confidence_filter(self):
        rel = _build_relation([0.9, 0.5, None])
        kept = min_confidence_filter(rel, "v", "source", 0.8)
        assert len(kept) == 1

    def test_missing_ok(self):
        rel = _build_relation([0.9, None])
        kept = min_confidence_filter(rel, "v", "source", 0.8, missing_ok=True)
        assert len(kept) == 2

    def test_meta_coverage(self):
        rel = _build_relation([0.9, None])
        assert meta_coverage(rel, "confidence") == 0.5

    def test_meta_coverage_empty(self):
        rel = _build_relation([])
        assert meta_coverage(rel, "confidence") == 0.0

    def test_tags_with_meta(self):
        rel = _build_relation([0.9, None])
        hits = list(tags_with_meta(rel, "confidence"))
        assert len(hits) == 1
        _, column, tag = hits[0]
        assert column == "v"
        assert tag.meta_dict()["confidence"] == 0.9

    def test_audit_tag_provenance(self):
        rel = _build_relation([0.9, 0.8, None])
        report = audit_tag_provenance(rel)
        actors = {entry["recorded_by"] for entry in report}
        assert actors == {"op0", "op1", "(unknown)"}
        assert all(entry["indicator"] == "source" for entry in report)
