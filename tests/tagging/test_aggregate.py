"""Unit tests for aggregate-level (relation/database) tagging."""

import datetime as dt

import pytest

from repro.errors import TaggingError, UnknownIndicatorError
from repro.tagging.aggregate import (
    AGGREGATE_INDICATORS,
    DatabaseTags,
    RelationTags,
    completeness_hint,
)
from repro.tagging.indicators import IndicatorValue


class TestRelationTags:
    def test_set_get(self):
        tags = RelationTags(
            "customer", [IndicatorValue("population_method", "full census")]
        )
        assert tags.value("population_method") == "full census"
        assert tags.has("population_method")
        assert not tags.has("steward")

    def test_requires_name(self):
        with pytest.raises(TaggingError):
            RelationTags("")

    def test_replace(self):
        tags = RelationTags("t", [IndicatorValue("steward", "alice")])
        tags.set(IndicatorValue("steward", "bob"))
        assert tags.value("steward") == "bob"

    def test_remove(self):
        tags = RelationTags("t", [IndicatorValue("steward", "alice")])
        tags.remove("steward")
        assert not tags.has("steward")
        with pytest.raises(UnknownIndicatorError):
            tags.remove("steward")

    def test_get_missing(self):
        tags = RelationTags("t")
        with pytest.raises(UnknownIndicatorError):
            tags.get("ghost")
        assert tags.value("ghost", "dflt") == "dflt"

    def test_as_dict_sorted(self):
        tags = RelationTags(
            "t",
            [IndicatorValue("b", 2), IndicatorValue("a", 1)],
        )
        assert list(tags.as_dict()) == ["a", "b"]

    def test_render(self):
        tags = RelationTags("t", [IndicatorValue("steward", "ops")])
        assert "steward='ops'" in tags.render()
        assert "(no aggregate tags)" in RelationTags("empty").render()


class TestDatabaseTags:
    @pytest.fixture
    def db_tags(self):
        tags = DatabaseTags("corp", [IndicatorValue("steward", "dq_team")])
        tags.relation("customer").set(
            IndicatorValue("population_method", "full census")
        )
        tags.relation("prospects").set(
            IndicatorValue("population_method", "purchased list")
        )
        tags.relation("prospects").set(
            IndicatorValue("census_date", dt.date(1991, 3, 1))
        )
        return tags

    def test_own_tags(self, db_tags):
        assert db_tags.own.value("steward") == "dq_team"

    def test_relation_autocreate(self, db_tags):
        fresh = db_tags.relation("brand_new")
        assert fresh.indicator_names == ()
        assert "brand_new" in db_tags.relation_names

    def test_relations_where_value(self, db_tags):
        assert db_tags.relations_where(
            "population_method", "full census"
        ) == ["customer"]

    def test_relations_where_callable(self, db_tags):
        hits = db_tags.relations_where(
            "census_date", lambda value: value >= dt.date(1991, 1, 1)
        )
        assert hits == ["prospects"]

    def test_untagged_never_match(self, db_tags):
        db_tags.relation("untagged_rel")
        assert "untagged_rel" not in db_tags.relations_where(
            "population_method", lambda value: True
        )

    def test_render(self, db_tags):
        text = db_tags.render()
        assert "Database corp" in text
        assert "customer:" in text


class TestCompletenessHint:
    def test_explicit_coverage_wins(self):
        tags = RelationTags(
            "t",
            [
                IndicatorValue("coverage_ratio", 0.42),
                IndicatorValue("population_method", "full census"),
            ],
        )
        assert completeness_hint(tags) == 0.42

    def test_coverage_clamped(self):
        tags = RelationTags("t", [IndicatorValue("coverage_ratio", 3.0)])
        assert completeness_hint(tags) == 1.0

    def test_method_prior(self):
        census = RelationTags(
            "t", [IndicatorValue("population_method", "full census")]
        )
        purchase = RelationTags(
            "t", [IndicatorValue("population_method", "purchased list")]
        )
        assert completeness_hint(census) > completeness_hint(purchase)

    def test_unknown_method(self):
        tags = RelationTags(
            "t", [IndicatorValue("population_method", "divination")]
        )
        assert completeness_hint(tags) is None

    def test_no_basis(self):
        assert completeness_hint(RelationTags("t")) is None

    def test_standard_indicator_catalog(self):
        assert "population_method" in AGGREGATE_INDICATORS
        assert AGGREGATE_INDICATORS["census_date"].domain.name == "DATE"
