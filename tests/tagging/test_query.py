"""Unit tests for indicator-constrained retrieval."""

import datetime as dt

import pytest

from repro.errors import QueryError
from repro.tagging.query import (
    IndicatorConstraint,
    QualityFilter,
    QualityQuery,
)


class TestIndicatorConstraint:
    def test_equality_operator(self, tagged_customers):
        constraint = IndicatorConstraint("employees", "source", "==", "Nexis")
        matching = [r for r in tagged_customers if constraint.test(r)]
        assert len(matching) == 1
        assert matching[0].value("co_name") == "Fruit Co"

    def test_comparison_over_dates(self, tagged_customers):
        constraint = IndicatorConstraint(
            "address", "creation_time", ">=", dt.date(1991, 6, 1)
        )
        matching = [r for r in tagged_customers if constraint.test(r)]
        assert [r.value("co_name") for r in matching] == ["Nut Co"]

    def test_in_operator(self, tagged_customers):
        constraint = IndicatorConstraint(
            "employees", "source", "in", {"Nexis", "acct'g"}
        )
        assert sum(constraint.test(r) for r in tagged_customers) == 1

    def test_missing_fails_by_default(self, tagged_customers):
        constraint = IndicatorConstraint("co_name", "source", "==", "x")
        assert not any(constraint.test(r) for r in tagged_customers)

    def test_missing_ok(self, tagged_customers):
        constraint = IndicatorConstraint(
            "co_name", "source", "==", "x", missing_ok=True
        )
        assert all(constraint.test(r) for r in tagged_customers)

    def test_incomparable_fails_closed(self, tagged_customers):
        constraint = IndicatorConstraint(
            "address", "creation_time", ">", "not-a-date-object"
        )
        assert not any(constraint.test(r) for r in tagged_customers)

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            IndicatorConstraint("a", "b", "~=", 1)

    def test_describe(self):
        text = IndicatorConstraint("address", "source", "!=", "estimate").describe()
        assert "address.source != 'estimate'" in text


class TestQualityFilter:
    def test_conjunction(self, tagged_customers):
        quality = QualityFilter(
            [
                IndicatorConstraint("address", "source", "==", "acct'g"),
                IndicatorConstraint(
                    "employees", "source", "==", "estimate"
                ),
            ],
            name="strict",
        )
        result = quality.apply(tagged_customers)
        assert len(result) == 1

    def test_empty_filter_passes_all(self, tagged_customers):
        assert len(QualityFilter().apply(tagged_customers)) == 2

    def test_unknown_column_rejected(self, tagged_customers):
        quality = QualityFilter(
            [IndicatorConstraint("ghost", "source", "==", "x")]
        )
        with pytest.raises(Exception):
            quality.apply(tagged_customers)

    def test_with_constraint_copies(self):
        base = QualityFilter(name="base")
        extended = base.with_constraint(
            IndicatorConstraint("a", "b", "==", 1)
        )
        assert len(base) == 0
        assert len(extended) == 1

    def test_describe(self):
        quality = QualityFilter(
            [IndicatorConstraint("a", "source", "==", "x")], name="grade1"
        )
        assert "grade1" in quality.describe()
        assert "a.source == 'x'" in quality.describe()
        assert "no constraints" in QualityFilter(name="open").describe()


class TestQualityQuery:
    def test_require(self, tagged_customers):
        values = (
            QualityQuery(tagged_customers)
            .require("employees", "source", "!=", "estimate")
            .values()
        )
        assert values == [
            {"co_name": "Fruit Co", "address": "12 Jay St", "employees": 4004}
        ]

    def test_where_value(self, tagged_customers):
        assert (
            QualityQuery(tagged_customers)
            .where_value("employees", ">", 1000)
            .count()
            == 1
        )

    def test_combined_value_and_quality(self, tagged_customers):
        result = (
            QualityQuery(tagged_customers)
            .where_value("employees", ">", 100)
            .require("address", "creation_time", ">=", dt.date(1991, 1, 1))
            .select("co_name")
            .run()
        )
        assert len(result) == 2

    def test_require_tagged(self, tagged_customers):
        assert (
            QualityQuery(tagged_customers)
            .require_tagged("address", "source")
            .count()
            == 2
        )
        assert (
            QualityQuery(tagged_customers)
            .require_tagged("co_name", "source")
            .count()
            == 0
        )

    def test_grade(self, tagged_customers):
        grade = QualityFilter(
            [IndicatorConstraint("employees", "source", "!=", "estimate")],
            name="verified_headcount",
        )
        assert QualityQuery(tagged_customers).grade(grade).count() == 1

    def test_order_by_indicator(self, tagged_customers):
        result = (
            QualityQuery(tagged_customers)
            .order_by("address", by_indicator="creation_time", descending=True)
            .run()
        )
        assert result.rows[0].value("co_name") == "Nut Co"

    def test_limit(self, tagged_customers):
        assert QualityQuery(tagged_customers).limit(1).count() == 1

    def test_immutability(self, tagged_customers):
        base = QualityQuery(tagged_customers)
        strict = base.require("employees", "source", "==", "Nexis")
        assert base.count() == 2
        assert strict.count() == 1

    def test_unknown_operator(self, tagged_customers):
        with pytest.raises(QueryError):
            QualityQuery(tagged_customers).where_value("employees", "~", 1)


class TestApplyColumnar:
    """QualityFilter.apply_columnar ≡ apply (values, tags, order)."""

    def canonical(self, relation):
        return [row.cells for row in relation]

    def assert_equivalent(self, quality_filter, relation):
        via_rows = quality_filter.apply(relation)
        via_arrays = quality_filter.apply_columnar(relation)
        assert self.canonical(via_arrays) == self.canonical(via_rows)
        return via_arrays

    def test_single_constraint(self, tagged_customers):
        grade = QualityFilter(
            [IndicatorConstraint("employees", "source", "!=", "estimate")]
        )
        result = self.assert_equivalent(grade, tagged_customers)
        assert [r.value("co_name") for r in result] == ["Fruit Co"]

    def test_conjunction(self, tagged_customers):
        grade = QualityFilter(
            [
                IndicatorConstraint(
                    "address", "creation_time", ">=", dt.date(1991, 1, 1)
                ),
                IndicatorConstraint("employees", "source", "!=", "estimate"),
            ]
        )
        self.assert_equivalent(grade, tagged_customers)

    def test_empty_filter(self, tagged_customers):
        result = self.assert_equivalent(QualityFilter(), tagged_customers)
        assert len(result) == len(tagged_customers)

    def test_missing_ok_constraint(self, tagged_customers):
        tagged_customers.insert(
            {"co_name": "Bare Co", "address": "9 Elm", "employees": 1}
        )
        grade = QualityFilter(
            [
                IndicatorConstraint(
                    "employees", "source", "!=", "estimate", missing_ok=True
                )
            ]
        )
        result = self.assert_equivalent(grade, tagged_customers)
        assert [r.value("co_name") for r in result] == ["Fruit Co", "Bare Co"]

    def test_disallowed_indicator_falls_back(self, tagged_customers):
        # co_name allows no indicators: the store has no array to scan,
        # and the per-cell path reads the tag as missing.  Both paths
        # must agree (here: missing fails, so nothing survives).
        grade = QualityFilter(
            [IndicatorConstraint("co_name", "source", "==", "sales")]
        )
        result = self.assert_equivalent(grade, tagged_customers)
        assert len(result) == 0

    def test_unknown_column_still_raises(self, tagged_customers):
        from repro.errors import UnknownColumnError

        grade = QualityFilter(
            [IndicatorConstraint("ghost", "source", "==", "x")]
        )
        with pytest.raises(UnknownColumnError):
            grade.apply_columnar(tagged_customers)

    def test_result_keeps_tags(self, tagged_customers):
        grade = QualityFilter(
            [IndicatorConstraint("address", "source", "==", "acct'g")]
        )
        result = grade.apply_columnar(tagged_customers)
        row = next(iter(result))
        assert row["address"].tag_value("creation_time") == dt.date(
            1991, 10, 24
        )
