"""Unit tests for indicator-constrained retrieval."""

import datetime as dt

import pytest

from repro.errors import QueryError
from repro.tagging.query import (
    IndicatorConstraint,
    QualityFilter,
    QualityQuery,
)


class TestIndicatorConstraint:
    def test_equality_operator(self, tagged_customers):
        constraint = IndicatorConstraint("employees", "source", "==", "Nexis")
        matching = [r for r in tagged_customers if constraint.test(r)]
        assert len(matching) == 1
        assert matching[0].value("co_name") == "Fruit Co"

    def test_comparison_over_dates(self, tagged_customers):
        constraint = IndicatorConstraint(
            "address", "creation_time", ">=", dt.date(1991, 6, 1)
        )
        matching = [r for r in tagged_customers if constraint.test(r)]
        assert [r.value("co_name") for r in matching] == ["Nut Co"]

    def test_in_operator(self, tagged_customers):
        constraint = IndicatorConstraint(
            "employees", "source", "in", {"Nexis", "acct'g"}
        )
        assert sum(constraint.test(r) for r in tagged_customers) == 1

    def test_missing_fails_by_default(self, tagged_customers):
        constraint = IndicatorConstraint("co_name", "source", "==", "x")
        assert not any(constraint.test(r) for r in tagged_customers)

    def test_missing_ok(self, tagged_customers):
        constraint = IndicatorConstraint(
            "co_name", "source", "==", "x", missing_ok=True
        )
        assert all(constraint.test(r) for r in tagged_customers)

    def test_incomparable_fails_closed(self, tagged_customers):
        constraint = IndicatorConstraint(
            "address", "creation_time", ">", "not-a-date-object"
        )
        assert not any(constraint.test(r) for r in tagged_customers)

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            IndicatorConstraint("a", "b", "~=", 1)

    def test_describe(self):
        text = IndicatorConstraint("address", "source", "!=", "estimate").describe()
        assert "address.source != 'estimate'" in text


class TestQualityFilter:
    def test_conjunction(self, tagged_customers):
        quality = QualityFilter(
            [
                IndicatorConstraint("address", "source", "==", "acct'g"),
                IndicatorConstraint(
                    "employees", "source", "==", "estimate"
                ),
            ],
            name="strict",
        )
        result = quality.apply(tagged_customers)
        assert len(result) == 1

    def test_empty_filter_passes_all(self, tagged_customers):
        assert len(QualityFilter().apply(tagged_customers)) == 2

    def test_unknown_column_rejected(self, tagged_customers):
        quality = QualityFilter(
            [IndicatorConstraint("ghost", "source", "==", "x")]
        )
        with pytest.raises(Exception):
            quality.apply(tagged_customers)

    def test_with_constraint_copies(self):
        base = QualityFilter(name="base")
        extended = base.with_constraint(
            IndicatorConstraint("a", "b", "==", 1)
        )
        assert len(base) == 0
        assert len(extended) == 1

    def test_describe(self):
        quality = QualityFilter(
            [IndicatorConstraint("a", "source", "==", "x")], name="grade1"
        )
        assert "grade1" in quality.describe()
        assert "a.source == 'x'" in quality.describe()
        assert "no constraints" in QualityFilter(name="open").describe()


class TestQualityQuery:
    def test_require(self, tagged_customers):
        values = (
            QualityQuery(tagged_customers)
            .require("employees", "source", "!=", "estimate")
            .values()
        )
        assert values == [
            {"co_name": "Fruit Co", "address": "12 Jay St", "employees": 4004}
        ]

    def test_where_value(self, tagged_customers):
        assert (
            QualityQuery(tagged_customers)
            .where_value("employees", ">", 1000)
            .count()
            == 1
        )

    def test_combined_value_and_quality(self, tagged_customers):
        result = (
            QualityQuery(tagged_customers)
            .where_value("employees", ">", 100)
            .require("address", "creation_time", ">=", dt.date(1991, 1, 1))
            .select("co_name")
            .run()
        )
        assert len(result) == 2

    def test_require_tagged(self, tagged_customers):
        assert (
            QualityQuery(tagged_customers)
            .require_tagged("address", "source")
            .count()
            == 2
        )
        assert (
            QualityQuery(tagged_customers)
            .require_tagged("co_name", "source")
            .count()
            == 0
        )

    def test_grade(self, tagged_customers):
        grade = QualityFilter(
            [IndicatorConstraint("employees", "source", "!=", "estimate")],
            name="verified_headcount",
        )
        assert QualityQuery(tagged_customers).grade(grade).count() == 1

    def test_order_by_indicator(self, tagged_customers):
        result = (
            QualityQuery(tagged_customers)
            .order_by("address", by_indicator="creation_time", descending=True)
            .run()
        )
        assert result.rows[0].value("co_name") == "Nut Co"

    def test_limit(self, tagged_customers):
        assert QualityQuery(tagged_customers).limit(1).count() == 1

    def test_immutability(self, tagged_customers):
        base = QualityQuery(tagged_customers)
        strict = base.require("employees", "source", "==", "Nexis")
        assert base.count() == 2
        assert strict.count() == 1

    def test_unknown_operator(self, tagged_customers):
        with pytest.raises(QueryError):
            QualityQuery(tagged_customers).where_value("employees", "~", 1)
