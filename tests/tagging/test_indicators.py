"""Unit tests for indicator definitions, values, and tag schemas."""

import datetime as dt

import pytest

from repro.errors import TagSchemaError, UnknownIndicatorError
from repro.relational.schema import schema
from repro.tagging.indicators import (
    IndicatorDefinition,
    IndicatorValue,
    STANDARD_INDICATORS,
    TagSchema,
)


class TestIndicatorDefinition:
    def test_defaults(self):
        definition = IndicatorDefinition("source")
        assert definition.domain.name == "STR"

    def test_requires_name(self):
        with pytest.raises(TagSchemaError):
            IndicatorDefinition("")

    def test_value_factory_validates(self):
        definition = IndicatorDefinition("creation_time", "DATE")
        tag = definition.value("1991-10-24")
        assert tag.value == dt.date(1991, 10, 24)

    def test_standard_catalog(self):
        assert "source" in STANDARD_INDICATORS
        assert STANDARD_INDICATORS["creation_time"].domain.name == "DATE"


class TestIndicatorValue:
    def test_immutable_equality(self):
        a = IndicatorValue("source", "sales")
        b = IndicatorValue("source", "sales")
        assert a == b and hash(a) == hash(b)

    def test_meta_sorted_deterministic(self):
        a = IndicatorValue("s", "x", meta={"b": 2, "a": 1})
        b = IndicatorValue("s", "x", meta={"a": 1, "b": 2})
        assert a == b
        assert a.meta_dict() == {"a": 1, "b": 2}

    def test_meta_distinguishes(self):
        a = IndicatorValue("s", "x")
        b = IndicatorValue("s", "x", meta={"confidence": 0.5})
        assert a != b

    def test_requires_name(self):
        with pytest.raises(TagSchemaError):
            IndicatorValue("", 1)


class TestTagSchema:
    def test_required_and_allowed(self, customer_tag_schema):
        assert customer_tag_schema.allowed_for("address") == {
            "creation_time",
            "source",
        }
        assert customer_tag_schema.required_for("address") == frozenset()

    def test_required_included_in_allowed(self):
        ts = TagSchema(
            indicators=[IndicatorDefinition("source")],
            required={"a": ["source"]},
        )
        assert ts.allowed_for("a") == {"source"}

    def test_undefined_indicator_rejected(self):
        with pytest.raises(TagSchemaError):
            TagSchema(required={"a": ["ghost"]})

    def test_duplicate_definitions_rejected(self):
        with pytest.raises(TagSchemaError):
            TagSchema(
                indicators=[
                    IndicatorDefinition("source"),
                    IndicatorDefinition("source"),
                ]
            )

    def test_definition_lookup(self, customer_tag_schema):
        assert customer_tag_schema.definition("source").name == "source"
        with pytest.raises(UnknownIndicatorError):
            customer_tag_schema.definition("ghost")

    def test_check_against_schema(self, customer_tag_schema, customer_schema):
        customer_tag_schema.check_against(customer_schema)  # fine
        other = schema("t", [("x", "INT")])
        with pytest.raises(TagSchemaError):
            customer_tag_schema.check_against(other)

    def test_tagged_columns(self, customer_tag_schema):
        assert customer_tag_schema.tagged_columns == ("address", "employees")


class TestTagValidation:
    def test_validates_and_coerces(self, customer_tag_schema):
        tags = customer_tag_schema.validate_tags(
            "address",
            [IndicatorValue("creation_time", "1991-10-24")],
        )
        assert tags["creation_time"].value == dt.date(1991, 10, 24)

    def test_disallowed_indicator(self, customer_tag_schema):
        with pytest.raises(UnknownIndicatorError):
            customer_tag_schema.validate_tags(
                "co_name", [IndicatorValue("source", "x")]
            )

    def test_duplicate_tags_rejected(self, customer_tag_schema):
        with pytest.raises(TagSchemaError):
            customer_tag_schema.validate_tags(
                "address",
                [IndicatorValue("source", "a"), IndicatorValue("source", "b")],
            )

    def test_missing_required(self):
        ts = TagSchema(
            indicators=[IndicatorDefinition("source")],
            required={"a": ["source"]},
        )
        with pytest.raises(TagSchemaError):
            ts.validate_tags("a", [])


class TestTagSchemaDerivation:
    def test_merge_unions(self):
        a = TagSchema(
            indicators=[IndicatorDefinition("source")],
            required={"x": ["source"]},
        )
        b = TagSchema(
            indicators=[IndicatorDefinition("age", "FLOAT")],
            allowed={"x": ["age"]},
        )
        merged = a.merge(b)
        assert merged.required_for("x") == {"source"}
        assert merged.allowed_for("x") == {"source", "age"}

    def test_merge_conflicting_domains_rejected(self):
        a = TagSchema(indicators=[IndicatorDefinition("age", "FLOAT")])
        b = TagSchema(indicators=[IndicatorDefinition("age", "STR")])
        with pytest.raises(TagSchemaError):
            a.merge(b)

    def test_project(self, customer_tag_schema):
        projected = customer_tag_schema.project(["address"])
        assert projected.tagged_columns == ("address",)

    def test_rename_columns(self, customer_tag_schema):
        renamed = customer_tag_schema.rename_columns({"address": "addr"})
        assert "addr" in renamed.tagged_columns
        assert "address" not in renamed.tagged_columns

    def test_round_trip(self, customer_tag_schema):
        restored = TagSchema.from_dict(customer_tag_schema.to_dict())
        assert restored == customer_tag_schema


class TestTagSchemaCollisions:
    def test_rename_collision_rejected(self, customer_tag_schema):
        with pytest.raises(TagSchemaError) as excinfo:
            customer_tag_schema.rename_columns(
                {"address": "merged", "employees": "merged"}
            )
        message = str(excinfo.value)
        assert "merged" in message
        assert "address" in message and "employees" in message

    def test_rename_onto_existing_tagged_column_rejected(
        self, customer_tag_schema
    ):
        # Renaming one tagged column onto another (unrenamed) tagged
        # column is the implicit form of the same collision.
        with pytest.raises(TagSchemaError):
            customer_tag_schema.rename_columns({"address": "employees"})

    def test_swap_is_not_a_collision(self, customer_tag_schema):
        swapped = customer_tag_schema.rename_columns(
            {"address": "employees", "employees": "address"}
        )
        assert set(swapped.tagged_columns) == {"address", "employees"}

    def test_untagged_columns_do_not_collide(self, customer_tag_schema):
        # co_name carries no tags, so mapping it onto a tagged name is
        # harmless for the *tag* schema (the relation schema rejects it
        # separately if the value columns collide).
        renamed = customer_tag_schema.rename_columns({"co_name": "address"})
        assert renamed.allowed_for("address") == {"creation_time", "source"}

    def test_project_duplicate_columns_rejected(self, customer_tag_schema):
        with pytest.raises(TagSchemaError) as excinfo:
            customer_tag_schema.project(["address", "address"])
        assert "address" in str(excinfo.value)

    def test_merge_conflict_message_names_indicator(self):
        a = TagSchema(
            indicators=[IndicatorDefinition("age", "FLOAT")],
            allowed={"x": ["age"]},
        )
        b = TagSchema(
            indicators=[IndicatorDefinition("age", "INT")],
            allowed={"y": ["age"]},
        )
        with pytest.raises(TagSchemaError, match="age"):
            a.merge(b)

    def test_merge_same_definition_is_fine(self):
        a = TagSchema(
            indicators=[IndicatorDefinition("age", "FLOAT")],
            allowed={"x": ["age"]},
        )
        b = TagSchema(
            indicators=[IndicatorDefinition("age", "FLOAT")],
            required={"y": ["age"]},
        )
        merged = a.merge(b)
        assert merged.allowed_for("x") == {"age"}
        assert merged.required_for("y") == {"age"}
