"""Unit tests for graded retrieval and the yield/quality trade-off."""

import datetime as dt

import pytest

from repro.experiments.scenarios import clearinghouse
from repro.quality.filtering import graded_retrieval, yield_quality_tradeoff
from repro.tagging.query import IndicatorConstraint, QualityFilter


@pytest.fixture(scope="module")
def clearing():
    return clearinghouse(n_people=150, seed=5, simulated_days=200)


class TestGradedRetrieval:
    def test_unconstrained_full_yield(self, clearing):
        world, _, relation, registry = clearing
        _, outcome = graded_retrieval(
            relation, registry.get("mass_mailing").quality_filter
        )
        assert outcome.yield_fraction == 1.0
        assert outcome.output_rows == len(relation)

    def test_constrained_reduces_yield(self, clearing):
        world, _, relation, registry = clearing
        _, outcome = graded_retrieval(
            relation, registry.get("fund_raising").quality_filter
        )
        assert 0.0 < outcome.yield_fraction < 1.0

    def test_accuracy_measured(self, clearing):
        world, _, relation, registry = clearing
        _, outcome = graded_retrieval(
            relation,
            registry.get("fund_raising").quality_filter,
            truth=world.truth(),
            key_column="person_id",
        )
        assert outcome.delivered_accuracy is not None
        assert 0.0 <= outcome.delivered_accuracy <= 1.0

    def test_mean_age_measured(self, clearing):
        world, _, relation, registry = clearing
        _, outcome = graded_retrieval(
            relation,
            registry.get("mass_mailing").quality_filter,
            today=world.today,
            age_columns=["address"],
        )
        assert outcome.mean_age_days is not None and outcome.mean_age_days > 0

    def test_summary_text(self, clearing):
        world, _, relation, registry = clearing
        _, outcome = graded_retrieval(
            relation, registry.get("fund_raising").quality_filter
        )
        assert "fund_raising" in outcome.summary()
        assert "yield=" in outcome.summary()


class TestTradeoffShape:
    def test_paper_shape(self, clearing):
        """The §4 claim: constraining indicators raises delivered
        accuracy and freshness at the cost of yield."""
        world, _, relation, registry = clearing
        outcomes = yield_quality_tradeoff(
            relation,
            [
                registry.get("mass_mailing").quality_filter,
                registry.get("fund_raising").quality_filter,
            ],
            truth=world.truth(),
            key_column="person_id",
            today=world.today,
            age_columns=["address"],
        )
        mass, fund = outcomes
        assert fund.yield_fraction < mass.yield_fraction
        assert fund.delivered_accuracy > mass.delivered_accuracy
        assert fund.mean_age_days < mass.mean_age_days

    def test_monotone_with_strictness(self, clearing):
        world, _, relation, registry = clearing
        cutoffs = [
            world.today - dt.timedelta(days=days) for days in (365, 120, 30)
        ]
        filters = [
            QualityFilter(
                [IndicatorConstraint("address", "creation_time", ">=", cutoff)],
                name=f"fresh_{i}",
            )
            for i, cutoff in enumerate(cutoffs)
        ]
        outcomes = yield_quality_tradeoff(relation, filters)
        yields = [o.yield_fraction for o in outcomes]
        assert yields == sorted(yields, reverse=True)

    def test_empty_input(self, clearing):
        _, _, relation, registry = clearing
        empty = relation.empty_like()
        _, outcome = graded_retrieval(
            empty, registry.get("mass_mailing").quality_filter
        )
        assert outcome.yield_fraction == 0.0
