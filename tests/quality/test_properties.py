"""Property-based tests for scoring, allocation, and SPC invariants."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.quality.allocation import DatasetProfile, allocate_budget
from repro.quality.scoring import (
    ParameterScorer,
    QualityScorecard,
)
from repro.quality.spc import p_chart
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue

# ---------------------------------------------------------------------------
# Scoring
# ---------------------------------------------------------------------------

SCORES = st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0))


def fixed_scorer(name: str, value):
    return ParameterScorer(name, lambda tags, ctx: value)


class TestScorecardProperties:
    @settings(max_examples=60)
    @given(st.lists(SCORES, min_size=1, max_size=5))
    def test_composite_bounded_by_components(self, values):
        scorers = [
            fixed_scorer(f"p{i}", value) for i, value in enumerate(values)
        ]
        scorecard = QualityScorecard(scorers)
        composite = scorecard.composite_cell(QualityCell(1))
        present = [v for v in values if v is not None]
        if not present:
            assert composite is None
        else:
            assert min(present) - 1e-9 <= composite <= max(present) + 1e-9

    @settings(max_examples=60)
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.01, max_value=10.0),
    )
    def test_weight_shifts_toward_heavier(self, a, b, weight):
        scorecard = QualityScorecard(
            [fixed_scorer("pa", a), fixed_scorer("pb", b)],
            weights={"pa": weight, "pb": 1.0},
        )
        composite = scorecard.composite_cell(QualityCell(1))
        expected = (weight * a + b) / (weight + 1.0)
        assert composite == pytest.approx(expected)

    @settings(max_examples=40)
    @given(st.floats(min_value=-100, max_value=100))
    def test_scores_always_clamped(self, raw):
        scorer = ParameterScorer("p", lambda tags, ctx: raw)
        score = scorer.score(QualityCell(1))
        assert 0.0 <= score <= 1.0


# ---------------------------------------------------------------------------
# Allocation
# ---------------------------------------------------------------------------


@st.composite
def dataset_profiles(draw, max_count: int = 4):
    count = draw(st.integers(min_value=1, max_value=max_count))
    profiles = []
    for index in range(count):
        profiles.append(
            DatasetProfile(
                name=f"d{index}",
                records=draw(st.integers(min_value=0, max_value=5000)),
                error_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
                unit_cost=draw(st.floats(min_value=0.1, max_value=10.0)),
                effectiveness=draw(st.floats(min_value=0.05, max_value=1.0)),
                weight=draw(st.floats(min_value=0.0, max_value=5.0)),
            )
        )
    return profiles


class TestAllocationProperties:
    @settings(max_examples=50)
    @given(dataset_profiles(), st.floats(min_value=0.0, max_value=50.0))
    def test_never_overspends(self, profiles, budget):
        result = allocate_budget(profiles, budget)
        assert result.spent <= budget + 1e-9
        recomputed = sum(
            units * next(p.unit_cost for p in profiles if p.name == name)
            for name, units in result.units.items()
        )
        assert result.spent == pytest.approx(recomputed)

    @settings(max_examples=50)
    @given(dataset_profiles(), st.floats(min_value=0.0, max_value=50.0))
    def test_never_worsens_quality(self, profiles, budget):
        result = allocate_budget(profiles, budget)
        assert result.weighted_errors_after <= result.weighted_errors_before + 1e-9

    @settings(max_examples=30)
    @given(
        dataset_profiles(),
        st.floats(min_value=0.0, max_value=20.0),
        st.floats(min_value=0.0, max_value=20.0),
    )
    def test_monotone_in_budget(self, profiles, b1, b2):
        low, high = sorted((b1, b2))
        result_low = allocate_budget(profiles, low)
        result_high = allocate_budget(profiles, high)
        assert (
            result_high.weighted_errors_after
            <= result_low.weighted_errors_after + 1e-9
        )


# ---------------------------------------------------------------------------
# SPC
# ---------------------------------------------------------------------------


@st.composite
def defect_samples(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=500), min_size=n, max_size=n
        )
    )
    counts = [
        draw(st.integers(min_value=0, max_value=size)) for size in sizes
    ]
    return counts, sizes


class TestSPCProperties:
    @settings(max_examples=50)
    @given(defect_samples())
    def test_limits_bracket_center(self, samples):
        counts, sizes = samples
        chart = p_chart(counts, sizes)
        for point in chart.points:
            assert 0.0 <= point.lower <= point.center + 1e-12
            assert point.center - 1e-12 <= point.upper <= 1.0

    @settings(max_examples=50)
    @given(defect_samples())
    def test_beyond_limit_points_flagged(self, samples):
        counts, sizes = samples
        chart = p_chart(counts, sizes, run_rule=False)
        for point in chart.points:
            beyond = (
                point.statistic > point.upper or point.statistic < point.lower
            )
            assert point.out_of_control == beyond

    @settings(max_examples=50)
    @given(defect_samples())
    def test_center_is_pooled_rate(self, samples):
        counts, sizes = samples
        chart = p_chart(counts, sizes)
        assert chart.center == pytest.approx(sum(counts) / sum(sizes))

    @settings(max_examples=30)
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=2, max_value=15))
    def test_constant_process_in_control(self, size, n_samples):
        # A perfectly constant defect fraction never trips the 3-sigma
        # rule (every point sits exactly on the center line).
        counts = [size // 4] * n_samples
        sizes = [size] * n_samples
        chart = p_chart(counts, sizes, run_rule=False)
        assert chart.signals == []
