"""Unit tests for statistical process control."""

import pytest

from repro.errors import QualityError
from repro.quality.spc import ControlChart, p_chart, xbar_r_charts


class TestPChart:
    def test_in_control_process_no_signals(self):
        chart = p_chart([2, 3, 2, 3, 2, 3, 2, 3], [100] * 8)
        assert chart.signals == []
        assert chart.first_signal_index() is None

    def test_step_change_detected(self):
        counts = [2, 3, 2, 1, 2, 3, 2, 2] + [12, 11, 13]
        chart = p_chart(counts, [100] * 11, baseline_samples=8)
        assert chart.first_signal_index() == 8

    def test_center_line_from_baseline(self):
        chart = p_chart([5, 5, 50], [100] * 3, baseline_samples=2)
        assert chart.center == pytest.approx(0.05)

    def test_run_rule_detects_shift_within_limits(self):
        # Nine samples slightly above a 0.10 baseline: each within 3σ,
        # but the run of eight on one side signals.
        baseline = [10, 10, 10, 10, 10, 10, 10, 10, 10, 10]
        shifted = [13] * 9
        chart = p_chart(
            baseline + shifted, [200] * 19, baseline_samples=10
        )
        run_signals = [p for p in chart.signals if "run" in p.rule]
        assert run_signals

    def test_run_rule_can_be_disabled(self):
        baseline = [10] * 10
        shifted = [13] * 9
        chart = p_chart(
            baseline + shifted, [200] * 19, baseline_samples=10, run_rule=False
        )
        assert all("run" not in p.rule for p in chart.signals)

    def test_validation(self):
        with pytest.raises(QualityError):
            p_chart([], [])
        with pytest.raises(QualityError):
            p_chart([1], [0])
        with pytest.raises(QualityError):
            p_chart([5], [4])
        with pytest.raises(QualityError):
            p_chart([1, 2], [10])

    def test_limits_clamped_to_unit_interval(self):
        chart = p_chart([0, 0, 1], [10] * 3)
        assert all(p.lower >= 0.0 and p.upper <= 1.0 for p in chart.points)

    def test_render(self):
        chart = p_chart([2, 3, 12], [100] * 3, baseline_samples=2)
        text = chart.render()
        assert "p-chart" in text
        assert "OUT" in text


class TestXbarRCharts:
    def test_stable_process(self):
        groups = [[10.0, 10.1, 9.9]] * 10
        xbar, r = xbar_r_charts(groups)
        assert xbar.signals == []
        assert r.signals == []

    def test_mean_shift_detected_on_xbar(self):
        stable = [[10.0, 10.1, 9.9], [10.05, 9.95, 10.0]] * 4
        shifted = [[12.0, 12.1, 11.9]]
        xbar, _ = xbar_r_charts(stable + shifted, baseline_samples=8)
        assert xbar.first_signal_index() == 8

    def test_variance_blowup_detected_on_r(self):
        stable = [[10.0, 10.1, 9.9]] * 8
        noisy = [[8.0, 12.0, 10.0]]
        _, r = xbar_r_charts(stable + noisy, baseline_samples=8)
        assert r.first_signal_index() == 8

    def test_subgroup_size_bounds(self):
        with pytest.raises(QualityError):
            xbar_r_charts([[1.0]])  # n=1 unsupported
        with pytest.raises(QualityError):
            xbar_r_charts([[1.0] * 9])  # n=9 unsupported

    def test_ragged_subgroups_rejected(self):
        with pytest.raises(QualityError):
            xbar_r_charts([[1.0, 2.0], [1.0, 2.0, 3.0]])

    def test_empty_rejected(self):
        with pytest.raises(QualityError):
            xbar_r_charts([])


class TestManufacturingIntegration:
    def test_degraded_device_flagged(self):
        """E5's shape: a collection device degrades mid-stream and the
        p-chart flags it after the step change."""
        import datetime as dt

        from repro.manufacturing.collection import CollectionMethod
        from repro.manufacturing.generator import make_companies
        from repro.manufacturing.pipeline import ManufacturingPipeline
        from repro.manufacturing.sources import DataSource
        from repro.manufacturing.world import World
        from repro.relational.schema import schema

        companies = make_companies(150, seed=3)
        world = World(dt.date(1991, 1, 1), companies, seed=3)
        method = CollectionMethod("scanner", 0.01, seed=3)
        source = DataSource("registry", world, error_rate=0.0, seed=3)
        pipeline = ManufacturingPipeline(
            world,
            schema("c", [("co_name", "STR"), ("address", "STR")], key=["co_name"]),
            "co_name",
        )
        pipeline.assign("address", source, method)
        keys = list(world.keys)
        pipeline.manufacture(keys=keys[:100])
        method.degrade(0.5)  # the device fails
        pipeline.manufacture(keys=keys[100:150])

        counts, sizes = pipeline.defect_counts_by_batch(25)
        chart = p_chart(counts, sizes, baseline_samples=4)
        signal = chart.first_signal_index()
        assert signal is not None and signal >= 4
