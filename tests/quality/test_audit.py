"""Unit tests for the electronic trail."""

import pytest

from repro.errors import AuditError
from repro.quality.audit import ElectronicTrail
from repro.relational.catalog import Database
from repro.relational.schema import schema


@pytest.fixture
def trail():
    t = ElectronicTrail()
    t.record("collected", "customer", ("Nut Co",), actor="acct'g", value="62 Lois Av")
    t.record("captured", "customer", ("Nut Co",), actor="manual_entry")
    t.record("inserted", "customer", ("Nut Co",), actor="pipeline")
    t.record("collected", "customer", ("Fruit Co",), actor="sales")
    return t


class TestRecording:
    def test_sequence_numbers(self, trail):
        assert [e.sequence for e in trail.events] == [1, 2, 3, 4]

    def test_requires_step(self, trail):
        with pytest.raises(AuditError):
            trail.record("", "customer", ("X",))

    def test_detail_payload(self, trail):
        assert trail.events[0].detail["value"] == "62 Lois Av"


class TestQueries:
    def test_history_of(self, trail):
        history = trail.history_of("customer", ("Nut Co",))
        assert [e.step for e in history] == ["collected", "captured", "inserted"]

    def test_by_step_and_actor(self, trail):
        assert len(trail.by_step("collected")) == 2
        assert len(trail.by_actor("sales")) == 1

    def test_find(self, trail):
        hits = trail.find(lambda e: e.actor == "pipeline")
        assert len(hits) == 1

    def test_trace_erred_transaction(self, trail):
        trace = trail.trace_erred_transaction("customer", ("Nut Co",))
        assert trace["steps"] == ["collected", "captured", "inserted"]
        assert trace["actors"] == ["acct'g", "manual_entry", "pipeline"]
        assert trace["first"].step == "collected"
        assert trace["last"].step == "inserted"

    def test_trace_missing_is_finding(self, trail):
        with pytest.raises(AuditError):
            trail.trace_erred_transaction("customer", ("Ghost Co",))

    def test_render(self, trail):
        text = trail.render(max_events=2)
        assert "Electronic trail (4 events)" in text
        assert "[inserted]" in text


class TestJournalIngestion:
    def test_ingest_database_journal(self, customer_database):
        trail = ElectronicTrail()
        count = trail.ingest_journal(
            customer_database, {"customer": ["co_name"]}
        )
        assert count == 2
        history = trail.history_of("customer", ("Fruit Co",))
        assert len(history) == 1
        assert history[0].step == "insert"
        assert history[0].detail["after"]["address"] == "12 Jay St"

    def test_ingest_update_and_delete(self, customer_database):
        customer_database.update(
            "customer",
            lambda r: r["co_name"] == "Nut Co",
            {"employees": 701},
            actor="corrections",
        )
        customer_database.delete(
            "customer", lambda r: r["co_name"] == "Fruit Co", actor="purge"
        )
        trail = ElectronicTrail()
        trail.ingest_journal(customer_database, {"customer": ["co_name"]})
        nut_history = trail.history_of("customer", ("Nut Co",))
        assert [e.step for e in nut_history] == ["insert", "update"]
        assert nut_history[1].actor == "corrections"
        fruit_history = trail.history_of("customer", ("Fruit Co",))
        assert [e.step for e in fruit_history] == ["insert", "delete"]
