"""Unit tests for the dimension metrics."""

import datetime as dt

import pytest

from repro.errors import AssessmentError
from repro.quality.dimensions import (
    accuracy_against,
    age_in_days,
    completeness,
    consistency_rate,
    currency_score,
    functional_dependency_rate,
    overall_accuracy,
    population_completeness,
    timeliness_score,
)
from repro.relational.relation import Relation
from repro.relational.schema import schema


class TestTimeMetrics:
    def test_age_in_days(self):
        assert age_in_days(dt.date(1991, 10, 24), dt.date(1991, 10, 31)) == 7.0

    def test_age_mixed_types(self):
        assert (
            age_in_days(dt.date(1991, 1, 1), dt.datetime(1991, 1, 2, 12)) == 1.5
        )

    def test_age_rejects_non_dates(self):
        with pytest.raises(AssessmentError):
            age_in_days("1991-01-01", dt.date(1991, 1, 2))

    def test_currency_fresh(self):
        today = dt.date(1991, 6, 1)
        assert currency_score(today, today, 100) == 1.0

    def test_currency_expired(self):
        assert (
            currency_score(dt.date(1990, 1, 1), dt.date(1991, 1, 1), 100) == 0.0
        )

    def test_currency_linear(self):
        score = currency_score(dt.date(1991, 1, 1), dt.date(1991, 1, 11), 100)
        assert score == pytest.approx(0.9)

    def test_currency_future_clamped(self):
        assert (
            currency_score(dt.date(1991, 2, 1), dt.date(1991, 1, 1), 100) == 1.0
        )

    def test_currency_requires_positive_shelf_life(self):
        with pytest.raises(AssessmentError):
            currency_score(dt.date(1991, 1, 1), dt.date(1991, 1, 2), 0)

    def test_timeliness_deadline(self):
        created = dt.date(1991, 1, 1)
        today = dt.date(1991, 1, 20)
        assert timeliness_score(created, today, 100, needed_by_days=10) == 0.0
        assert timeliness_score(created, today, 100, needed_by_days=30) > 0.0


class TestCompleteness:
    @pytest.fixture
    def holey(self):
        return Relation.from_dicts(
            schema("t", [("a", "INT"), ("b", "STR")]),
            [
                {"a": 1, "b": "x"},
                {"a": None, "b": "y"},
                {"a": 3, "b": None},
                {"a": None, "b": None},
            ],
        )

    def test_overall(self, holey):
        assert completeness(holey) == pytest.approx(0.5)

    def test_per_column(self, holey):
        assert completeness(holey, ["a"]) == pytest.approx(0.5)
        assert completeness(holey, ["b"]) == pytest.approx(0.5)

    def test_empty_relation_vacuous(self):
        empty = Relation(schema("t", [("a", "INT")]))
        assert completeness(empty) == 1.0

    def test_works_on_tagged(self, tagged_customers):
        assert completeness(tagged_customers) == 1.0

    def test_population(self, holey):
        rate = population_completeness(holey, [1, 3, 99], "a")
        assert rate == pytest.approx(2 / 3)

    def test_population_empty_reference(self, holey):
        assert population_completeness(holey, [], "a") == 1.0


class TestAccuracy:
    @pytest.fixture
    def observed(self):
        return Relation.from_dicts(
            schema("t", [("k", "STR"), ("v", "INT"), ("w", "STR")]),
            [
                {"k": "a", "v": 10, "w": "right"},
                {"k": "b", "v": 99, "w": "right"},
                {"k": "c", "v": 30, "w": "wrong"},
                {"k": "zzz", "v": 1, "w": "?"},  # not in truth: skipped
            ],
        )

    @pytest.fixture
    def truth(self):
        return {
            "a": {"v": 10, "w": "right"},
            "b": {"v": 20, "w": "right"},
            "c": {"v": 30, "w": "right"},
        }

    def test_per_column(self, observed, truth):
        accuracy = accuracy_against(observed, truth, "k")
        assert accuracy["v"] == pytest.approx(2 / 3)
        assert accuracy["w"] == pytest.approx(2 / 3)

    def test_tolerance(self, observed, truth):
        loose = accuracy_against(observed, truth, "k", tolerance=5.0)
        assert loose["v"] == 1.0

    def test_none_matching(self):
        rel = Relation.from_dicts(
            schema("t", [("k", "STR"), ("v", "INT")]), [{"k": "a", "v": None}]
        )
        accuracy = accuracy_against(rel, {"a": {"v": None}}, "k")
        assert accuracy["v"] == 1.0

    def test_vacuous_is_one(self, observed):
        accuracy = accuracy_against(observed, {}, "k")
        assert accuracy["v"] == 1.0

    def test_overall_mean(self):
        assert overall_accuracy({"a": 1.0, "b": 0.5}) == 0.75
        assert overall_accuracy({}) == 1.0

    def test_works_on_tagged(self, tagged_customers):
        truth = {
            "Fruit Co": {"employees": 4004},
            "Nut Co": {"employees": 700},
        }
        accuracy = accuracy_against(
            tagged_customers, truth, "co_name", columns=["employees"]
        )
        assert accuracy["employees"] == 1.0


class TestConsistency:
    def test_rule_rate(self):
        rel = Relation.from_dicts(
            schema("t", [("low", "INT"), ("high", "INT")]),
            [
                {"low": 1, "high": 2},
                {"low": 5, "high": 3},
            ],
        )
        rate = consistency_rate(rel, lambda row: row["low"] <= row["high"])
        assert rate == 0.5

    def test_empty_vacuous(self):
        empty = Relation(schema("t", [("a", "INT")]))
        assert consistency_rate(empty, lambda row: False) == 1.0

    def test_functional_dependency(self):
        rel = Relation.from_dicts(
            schema("t", [("zip", "STR"), ("city", "STR")]),
            [
                {"zip": "02139", "city": "Cambridge"},
                {"zip": "02139", "city": "Cambridge"},
                {"zip": "02140", "city": "Cambridge"},
                {"zip": "02139", "city": "Boston"},  # violates zip→city
            ],
        )
        rate = functional_dependency_rate(rel, ["zip"], "city")
        assert rate == pytest.approx(0.25)

    def test_fd_clean(self):
        rel = Relation.from_dicts(
            schema("t", [("zip", "STR"), ("city", "STR")]),
            [{"zip": "02139", "city": "Cambridge"}],
        )
        assert functional_dependency_rate(rel, ["zip"], "city") == 1.0
