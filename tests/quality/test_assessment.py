"""Unit tests for quality assessment."""

import datetime as dt

import pytest

from repro.quality.assessment import assess, assess_many


class TestAssess:
    def test_completeness_per_column(self, tagged_customers):
        assessment = assess(tagged_customers)
        assert assessment.column("address").completeness == 1.0
        assert assessment.row_count == 2

    def test_tag_coverage_reported(self, tagged_customers):
        assessment = assess(tagged_customers)
        assert assessment.column("address").tag_coverage["source"] == 1.0
        assert assessment.column("co_name").tag_coverage == {}

    def test_age_from_creation_time(self, tagged_customers):
        assessment = assess(tagged_customers, today=dt.date(1991, 11, 1))
        address = assessment.column("address")
        # Fruit Co address created 1-2-91 (303 days), Nut Co 10-24-91 (8 days).
        assert address.mean_age_days == pytest.approx((303 + 8) / 2)

    def test_currency_shelf_life(self, tagged_customers):
        fresh = assess(
            tagged_customers, today=dt.date(1991, 11, 1), shelf_life_days=10000
        )
        stale = assess(
            tagged_customers, today=dt.date(1991, 11, 1), shelf_life_days=30
        )
        assert (
            fresh.column("address").mean_currency
            > stale.column("address").mean_currency
        )

    def test_no_today_no_age(self, tagged_customers):
        assessment = assess(tagged_customers)
        assert assessment.column("address").mean_age_days is None

    def test_accuracy_with_truth(self, tagged_customers):
        truth = {
            "Fruit Co": {"address": "12 Jay St", "employees": 9999},
            "Nut Co": {"address": "62 Lois Av", "employees": 700},
        }
        assessment = assess(
            tagged_customers, truth=truth, key_column="co_name"
        )
        assert assessment.column("address").accuracy == 1.0
        assert assessment.column("employees").accuracy == 0.5

    def test_overall_completeness(self, tagged_customers):
        assert assess(tagged_customers).overall_completeness() == 1.0

    def test_render(self, tagged_customers):
        text = assess(tagged_customers, today=dt.date(1991, 11, 1)).render()
        assert "Quality assessment: customer (2 rows)" in text
        assert "completeness=1.000" in text
        assert "tagged[source]=1.00" in text


class TestAssessMany:
    def test_assesses_all(self, tagged_customers):
        results = assess_many({"a": tagged_customers, "b": tagged_customers})
        assert set(results) == {"a", "b"}
        assert all(r.row_count == 2 for r in results.values())
