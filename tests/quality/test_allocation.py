"""Unit tests for Ballou-Tayi resource allocation."""

import pytest

from repro.errors import QualityError
from repro.quality.allocation import (
    Allocation,
    DatasetProfile,
    allocate_budget,
    profiles_from_monitoring,
)


def profile(name="d", records=1000, error_rate=0.1, unit_cost=1.0,
            effectiveness=0.5, weight=1.0):
    return DatasetProfile(name, records, error_rate, unit_cost,
                          effectiveness, weight)


class TestDatasetProfile:
    def test_validation(self):
        with pytest.raises(QualityError):
            profile(records=-1)
        with pytest.raises(QualityError):
            profile(error_rate=1.5)
        with pytest.raises(QualityError):
            profile(unit_cost=0)
        with pytest.raises(QualityError):
            profile(effectiveness=0)
        with pytest.raises(QualityError):
            profile(weight=-1)

    def test_weighted_errors(self):
        assert profile(records=1000, error_rate=0.1, weight=2.0).weighted_errors == 200

    def test_geometric_decay(self):
        p = profile(records=1000, error_rate=0.1, effectiveness=0.5)
        assert p.errors_after(0) == 100
        assert p.errors_after(1) == 50
        assert p.errors_after(2) == 25

    def test_marginal_gains_decreasing(self):
        p = profile(effectiveness=0.5)
        gains = [p.marginal_gain(i) for i in range(5)]
        assert gains == sorted(gains, reverse=True)


class TestAllocation:
    def test_spends_on_best_ratio_first(self):
        cheap_dirty = profile("dirty", records=1000, error_rate=0.3)
        clean = profile("clean", records=1000, error_rate=0.01)
        result = allocate_budget([cheap_dirty, clean], budget=1)
        assert result.units == {"dirty": 1, "clean": 0}

    def test_weight_redirects_budget(self):
        low_stakes = profile("low", records=1000, error_rate=0.3, weight=0.1)
        high_stakes = profile("high", records=1000, error_rate=0.1, weight=10.0)
        result = allocate_budget([low_stakes, high_stakes], budget=1)
        assert result.units["high"] == 1

    def test_diminishing_returns_spread_budget(self):
        a = profile("a", records=1000, error_rate=0.2, effectiveness=0.9)
        b = profile("b", records=1000, error_rate=0.2, effectiveness=0.9)
        result = allocate_budget([a, b], budget=2)
        # After one unit on either, its marginal gain collapses (90%
        # effectiveness), so the second unit goes to the other dataset.
        assert result.units == {"a": 1, "b": 1}

    def test_respects_unit_costs(self):
        pricy = profile("pricy", records=1000, error_rate=0.5, unit_cost=10.0)
        cheap = profile("cheap", records=1000, error_rate=0.2, unit_cost=1.0)
        result = allocate_budget([pricy, cheap], budget=5)
        assert result.units["pricy"] == 0
        assert result.units["cheap"] >= 1
        assert result.spent <= 5

    def test_greedy_matches_exhaustive_small(self):
        """Exactness check against brute force on a small instance."""
        import itertools

        profiles = [
            profile("a", records=100, error_rate=0.3, effectiveness=0.6,
                    unit_cost=1.0),
            profile("b", records=400, error_rate=0.05, effectiveness=0.9,
                    unit_cost=2.0),
            profile("c", records=50, error_rate=0.5, effectiveness=0.3,
                    unit_cost=1.0, weight=3.0),
        ]
        budget = 6

        def total_after(units):
            cost = sum(
                u * p.unit_cost for u, p in zip(units, profiles)
            )
            if cost > budget:
                return None
            return sum(p.errors_after(u) for u, p in zip(units, profiles))

        best = min(
            value
            for units in itertools.product(range(8), repeat=3)
            if (value := total_after(units)) is not None
        )
        greedy = allocate_budget(profiles, budget)
        assert greedy.weighted_errors_after == pytest.approx(best)

    def test_zero_budget(self):
        result = allocate_budget([profile()], budget=0)
        assert result.units == {"d": 0}
        assert result.improvement == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(QualityError):
            allocate_budget([profile()], budget=-1)

    def test_duplicate_names_rejected(self):
        with pytest.raises(QualityError):
            allocate_budget([profile("x"), profile("x")], budget=1)

    def test_improvement_fraction(self):
        result = allocate_budget(
            [profile(records=100, error_rate=0.5, effectiveness=0.5)],
            budget=1,
        )
        assert result.improvement_fraction == pytest.approx(0.5)

    def test_clean_data_attracts_nothing(self):
        spotless = profile("spotless", error_rate=0.0)
        result = allocate_budget([spotless], budget=100)
        assert result.units["spotless"] == 0
        assert result.spent == 0

    def test_render(self):
        profiles = [profile("a", error_rate=0.2)]
        result = allocate_budget(profiles, budget=2)
        text = result.render({p.name: p for p in profiles})
        assert "a:" in text and "unit(s)" in text


class TestMonitoringBridge:
    def test_profiles_from_defect_stats(self):
        stats = {"voice_decoder": (30, 200), "scanner": (1, 200)}
        profiles = profiles_from_monitoring(stats, weights={"scanner": 5.0})
        by_name = {p.name: p for p in profiles}
        assert by_name["voice_decoder"].error_rate == pytest.approx(0.15)
        assert by_name["scanner"].weight == 5.0

    def test_empty_dataset_skipped(self):
        assert profiles_from_monitoring({"empty": (0, 0)}) == []

    def test_end_to_end_with_pipeline(self):
        """Monitoring → allocation: the dirtier method gets the budget."""
        import datetime as dt

        from repro.manufacturing.collection import CollectionMethod
        from repro.manufacturing.generator import make_companies
        from repro.manufacturing.pipeline import ManufacturingPipeline
        from repro.manufacturing.sources import DataSource
        from repro.manufacturing.world import World
        from repro.relational.schema import schema

        world = World(dt.date(1991, 1, 1), make_companies(100, seed=2), seed=2)
        pipeline = ManufacturingPipeline(
            world,
            schema(
                "c",
                [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
                key=["co_name"],
            ),
            "co_name",
        )
        pipeline.assign(
            "address",
            DataSource("s1", world, error_rate=0.0, seed=2),
            CollectionMethod("scanner", 0.01, seed=2),
        )
        pipeline.assign(
            "employees",
            DataSource("s2", world, error_rate=0.0, seed=3),
            CollectionMethod("voice", 0.30, seed=3),
        )
        pipeline.manufacture()
        profiles = profiles_from_monitoring(pipeline.defect_counts_by_method())
        result = allocate_budget(profiles, budget=3)
        assert result.units["voice"] > result.units.get("scanner", 0)
