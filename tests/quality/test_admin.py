"""Unit tests for the data quality administrator."""

import datetime as dt

import pytest

from repro.core.terminology import QualityIndicatorSpec
from repro.core.views import ApplicationView, IndicatorAnnotation, QualitySchema
from repro.experiments.scenarios import run_trading_methodology
from repro.quality.admin import DataQualityAdministrator
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation
from repro.relational.schema import schema


@pytest.fixture
def quality_schema(trading_er):
    return QualitySchema(
        ApplicationView(trading_er),
        [
            IndicatorAnnotation(
                ("company_stock", "share_price"),
                QualityIndicatorSpec("creation_time", "DATE"),
                derived_from=("timeliness",),
            ),
            IndicatorAnnotation(
                ("company_stock", "research_report"),
                QualityIndicatorSpec("analyst_name"),
                mandatory=False,
            ),
        ],
    )


def _stock_relation(tag_creation_time: bool):
    ts = TagSchema(
        indicators=[
            IndicatorDefinition("creation_time", "DATE"),
            IndicatorDefinition("analyst_name"),
        ],
        allowed={
            "share_price": ["creation_time"],
            "research_report": ["analyst_name"],
        },
    )
    rel = TaggedRelation(
        schema(
            "company_stock",
            [
                ("ticker_symbol", "STR"),
                ("share_price", "FLOAT"),
                ("research_report", "STR"),
            ],
            key=["ticker_symbol"],
        ),
        ts,
    )
    price_tags = (
        [IndicatorValue("creation_time", dt.date(1991, 10, 1))]
        if tag_creation_time
        else []
    )
    rel.insert(
        {
            "ticker_symbol": "FRT",
            "share_price": QualityCell(100.0, price_tags),
            "research_report": "buy",
        }
    )
    return rel


class TestMonitoring:
    def test_conforming_data_passes(self, quality_schema):
        admin = DataQualityAdministrator(quality_schema)
        report = admin.monitor(
            {"company_stock": _stock_relation(tag_creation_time=True)}
        )
        assert report.conforms
        assert report.violations == []

    def test_missing_required_tag_violates(self, quality_schema):
        admin = DataQualityAdministrator(quality_schema)
        report = admin.monitor(
            {"company_stock": _stock_relation(tag_creation_time=False)}
        )
        assert not report.conforms
        violation = report.violations[0]
        assert violation.indicator == "creation_time"
        assert violation.coverage == 0.0
        assert report.notes

    def test_optional_tag_never_violates(self, quality_schema):
        admin = DataQualityAdministrator(quality_schema)
        report = admin.monitor(
            {"company_stock": _stock_relation(tag_creation_time=True)}
        )
        optional = [f for f in report.findings if not f.mandatory]
        assert optional and all(not f.violated for f in optional)

    def test_assessments_included(self, quality_schema):
        admin = DataQualityAdministrator(quality_schema)
        report = admin.monitor(
            {"company_stock": _stock_relation(True)},
            today=dt.date(1991, 11, 1),
        )
        assessment = report.assessments["company_stock"]
        assert assessment.column("share_price").mean_age_days == 31.0

    def test_render(self, quality_schema):
        admin = DataQualityAdministrator(quality_schema)
        report = admin.monitor({"company_stock": _stock_relation(False)})
        text = report.render()
        assert "FAIL" in text
        assert "VIOLATED" in text


class TestAdminWithMethodologyOutput:
    def test_end_to_end_schema_feeds_admin(self):
        modeling = run_trading_methodology()
        admin = DataQualityAdministrator(modeling.quality_schema)
        # Build a conforming company_stock relation from the derived
        # tag schema.
        tag_schema = modeling.quality_schema.tag_schema_for("company_stock")
        rel = TaggedRelation(
            schema(
                "company_stock",
                [
                    ("ticker_symbol", "STR"),
                    ("share_price", "FLOAT"),
                    ("research_report", "STR"),
                ],
                key=["ticker_symbol"],
            ),
            tag_schema,
        )
        rel.insert(
            {
                "ticker_symbol": "FRT",
                "share_price": QualityCell(
                    100.0, [IndicatorValue("age", 0.5)]
                ),
                "research_report": QualityCell(
                    "strong buy",
                    [
                        IndicatorValue("analyst_name", "kim"),
                        IndicatorValue("price", 500.0),
                        IndicatorValue("media", "ASCII"),
                    ],
                ),
            }
        )
        report = admin.monitor({"company_stock": rel})
        assert report.conforms


class TestExceptionTracking:
    def test_trace_delegates_to_trail(self, quality_schema):
        admin = DataQualityAdministrator(quality_schema)
        admin.trail.record("collected", "company_stock", ("FRT",), actor="feed")
        trace = admin.trace("company_stock", ("FRT",))
        assert trace["steps"] == ["collected"]

    def test_defect_chart(self, quality_schema):
        admin = DataQualityAdministrator(quality_schema)
        chart = admin.defect_chart([1, 1, 9], [50, 50, 50], baseline_samples=2)
        assert chart.first_signal_index() == 2
