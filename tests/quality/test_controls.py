"""Unit tests for data-entry controls."""

import pytest

from repro.errors import InspectionError
from repro.quality.controls import (
    CrossFieldRule,
    EntryController,
    MembershipRule,
    PatternRule,
    RangeRule,
    RequiredFieldRule,
)


class TestRules:
    def test_required(self):
        rule = RequiredFieldRule("req", ["name", "phone"])
        violations = rule.check({"name": "x", "phone": None})
        assert len(violations) == 1
        assert violations[0].field == "phone"

    def test_range_bounds(self):
        rule = RangeRule("emp", "employees", low=0, high=1_000_000)
        assert rule.check({"employees": 500}) == []
        assert rule.check({"employees": -1})[0].message.startswith("value")
        assert rule.check({"employees": 2_000_000}) != []

    def test_range_none_passes(self):
        # Missingness is RequiredFieldRule's job, not RangeRule's.
        assert RangeRule("r", "v", low=0).check({"v": None}) == []

    def test_range_non_numeric(self):
        assert RangeRule("r", "v", low=0).check({"v": "abc"}) != []

    def test_range_needs_a_bound(self):
        with pytest.raises(InspectionError):
            RangeRule("r", "v")

    def test_pattern(self):
        rule = PatternRule("phone", "telephone", r"\d{3}-\d{3}-\d{4}")
        assert rule.check({"telephone": "617-555-1234"}) == []
        assert rule.check({"telephone": "5551234"}) != []

    def test_membership(self):
        rule = MembershipRule("method", "collection", {"phone", "scanner"})
        assert rule.check({"collection": "phone"}) == []
        assert rule.check({"collection": "carrier pigeon"}) != []

    def test_cross_field(self):
        rule = CrossFieldRule(
            "trade_value",
            lambda r: r["quantity"] * r["price"] <= 1_000_000,
            "trade too large",
        )
        assert rule.check({"quantity": 10, "price": 5.0}) == []
        assert rule.check({"quantity": 10**6, "price": 5.0}) != []

    def test_cross_field_unevaluable(self):
        rule = CrossFieldRule("r", lambda r: r["missing"] > 0, "nope")
        violations = rule.check({})
        assert "not evaluable" in violations[0].message


class TestEntryController:
    @pytest.fixture
    def controller(self):
        return EntryController(
            [
                RequiredFieldRule("req", ["co_name"]),
                RangeRule("emp", "employees", low=1),
            ]
        )

    def test_accepts_clean(self, controller):
        accepted, violations = controller.submit(
            {"co_name": "Fruit Co", "employees": 4004}
        )
        assert accepted and violations == []

    def test_rejects_dirty(self, controller):
        accepted, violations = controller.submit({"employees": 0})
        assert not accepted
        assert {v.rule for v in violations} == {"req", "emp"}

    def test_rejection_rate(self, controller):
        controller.submit({"co_name": "A", "employees": 1})
        controller.submit({"co_name": None, "employees": 1})
        assert controller.rejection_rate == 0.5

    def test_rejection_rate_empty(self, controller):
        assert controller.rejection_rate == 0.0

    def test_violation_counts(self, controller):
        controller.submit({"employees": -5})
        controller.submit({"employees": -5})
        counts = controller.violation_counts()
        assert counts == {"req": 2, "emp": 2}

    def test_duplicate_rule_name(self, controller):
        with pytest.raises(InspectionError):
            controller.add_rule(RequiredFieldRule("req", ["x"]))

    def test_report(self, controller):
        controller.submit({"co_name": "A", "employees": 1})
        controller.submit({})
        text = controller.report()
        assert "2 submissions" in text
        assert "rule 'req'" in text
