"""Tests for materialized, incrementally maintained parameter scores."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssessmentError
from repro.obs import metrics
from repro.quality.materialize import (
    ScoringProfile,
    bind_profile,
    clear_profiles,
    materializer_for,
    parameter_defined,
    profile_for,
    register_profile,
    registry_version,
    row_parameter_score,
)
from repro.quality.scoring import (
    QualityScorecard,
    credibility_scorer,
    timeliness_scorer,
)
from repro.relational import hash_partitions
from repro.relational.schema import schema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import (
    IndicatorDefinition,
    IndicatorValue,
    TagSchema,
)
from repro.tagging.relation import TaggedRelation

SOURCE_RATINGS = {"acct'g": 0.9, "estimate": 0.3}
SHELF_LIFE = 100.0


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_profiles()
    yield
    clear_profiles()


def make_profile(name="grades", **kwargs):
    return ScoringProfile(
        name,
        [
            credibility_scorer(SOURCE_RATINGS),
            timeliness_scorer(SHELF_LIFE),
        ],
        **kwargs,
    )


def make_relation(name="readings"):
    tag_schema = TagSchema(
        indicators=[
            IndicatorDefinition("source"),
            IndicatorDefinition("age", "FLOAT"),
        ],
        allowed={"v": ["source", "age"]},
    )
    return TaggedRelation(
        schema(name, [("k", "INT"), ("v", "STR")]), tag_schema
    )


def tagged_cell(value, source=None, age=None):
    tags = []
    if source is not None:
        tags.append(IndicatorValue("source", source))
    if age is not None:
        tags.append(IndicatorValue("age", age))
    return QualityCell(value, tags)


def insert_row(relation, k, source=None, age=None):
    relation.insert({"k": k, "v": tagged_cell(f"v{k}", source, age)})


def expected_scores(relation, profile, parameter):
    """Fresh per-cell scorecard scores, rolled up per row (the oracle)."""
    scorecard = QualityScorecard(list(profile.scorers.values()))
    out = []
    for row in relation.row_batch():
        cells = [row[c] for c in relation.tag_schema.tagged_columns]
        scores = [
            scorecard.score_cell(cell, profile.context)[parameter]
            for cell in cells
        ]
        present = [s for s in scores if s is not None]
        out.append(sum(present) / len(present) if present else None)
    return out


class TestScoringProfile:
    def test_validation(self):
        with pytest.raises(AssessmentError):
            ScoringProfile("", [credibility_scorer(SOURCE_RATINGS)])
        with pytest.raises(AssessmentError):
            ScoringProfile("empty", [])
        with pytest.raises(AssessmentError):
            ScoringProfile(
                "dup",
                [
                    credibility_scorer(SOURCE_RATINGS),
                    credibility_scorer({"x": 0.5}),
                ],
            )
        with pytest.raises(AssessmentError):
            make_profile(thresholds={"ghost": 0.5})
        with pytest.raises(AssessmentError):
            make_profile(thresholds={"credibility": 1.5})

    def test_accessors(self):
        profile = make_profile(thresholds={"credibility": 0.5})
        assert profile.parameters == ("credibility", "timeliness")
        assert profile.defines("timeliness")
        assert not profile.defines("accuracy")
        assert profile.scorer("credibility").parameter == "credibility"
        with pytest.raises(AssessmentError):
            profile.scorer("accuracy")
        assert profile.threshold("credibility") == 0.5
        assert profile.threshold("timeliness") is None


class TestRegistry:
    def test_register_bumps_version_and_binds(self):
        before = registry_version()
        profile = register_profile(make_profile(), relations=["readings"])
        assert registry_version() == before + 1
        assert profile.version == registry_version()
        assert profile_for("readings") is profile
        assert profile_for(make_relation()) is profile
        assert profile_for("elsewhere") is None

    def test_bind_requires_registered_profile(self):
        with pytest.raises(AssessmentError):
            bind_profile("readings", "ghost")
        register_profile(make_profile())
        before = registry_version()
        bind_profile("readings", "grades")
        assert registry_version() == before + 1
        assert profile_for("readings").name == "grades"

    def test_snapshot_resolves_like_live_relation(self):
        relation = make_relation()
        insert_row(relation, 0, source="acct'g")
        register_profile(make_profile(), relations=["readings"])
        assert profile_for(relation.read_snapshot()) is profile_for(relation)

    def test_parameter_defined(self):
        assert not parameter_defined("credibility")
        register_profile(make_profile())
        assert parameter_defined("credibility")
        assert parameter_defined("timeliness")
        assert not parameter_defined("accuracy")


class TestMaterializer:
    def make_bound(self, n=10):
        relation = make_relation()
        sources = [None, "acct'g", "estimate", "rumor"]
        for k in range(n):
            insert_row(
                relation,
                k,
                source=sources[k % len(sources)],
                age=float(10 * k) if k % 3 else None,
            )
        profile = register_profile(make_profile(), relations=["readings"])
        return relation, profile

    def test_unbound_relation_raises(self):
        relation = make_relation()
        with pytest.raises(AssessmentError, match="no scoring profile"):
            materializer_for(relation).refresh()

    def test_row_scores_match_fresh_scorecard(self):
        relation, profile = self.make_bound()
        materializer = materializer_for(relation)
        for parameter in profile.parameters:
            assert materializer.row_scores(parameter) == pytest.approx(
                expected_scores(relation, profile, parameter)
            )

    def test_undefined_parameter_raises(self):
        relation, _ = self.make_bound()
        with pytest.raises(AssessmentError, match="no.*parameter"):
            materializer_for(relation).row_scores("accuracy")

    def test_mutation_invalidates_flat_block(self):
        relation, profile = self.make_bound()
        materializer = materializer_for(relation)
        assert len(materializer.row_scores("credibility")) == 10
        insert_row(relation, 99, source="acct'g")
        assert len(materializer.row_scores("credibility")) == 11
        assert materializer.row_scores("credibility") == pytest.approx(
            expected_scores(relation, profile, "credibility")
        )

    def test_incremental_refresh_recomputes_only_dirty_buckets(self):
        relation, _ = self.make_bound(n=32)
        relation.repartition(hash_partitions("k", 8))
        materializer = materializer_for(relation)
        with metrics.instrumented() as registry:
            materializer.refresh()  # cold: everything recomputes
            cold = registry.snapshot()
            assert cold["scores.recomputed"]["value"] == 32
            assert cold["scores.staleness"]["value"] == 1.0

            registry.reset()
            materializer.refresh()  # warm: everything reuses
            warm = registry.snapshot()
            assert warm["scores.recomputed"]["value"] == 0
            assert warm["scores.reused"]["value"] == 32
            assert warm["scores.staleness"]["value"] == 0.0

            registry.reset()
            insert_row(relation, 100, source="acct'g")
            materializer.refresh()  # one bucket dirty
            delta = registry.snapshot()
            dirty_bucket = relation.partition_spec.bucket_of(100)
            assert delta["scores.recomputed"]["value"] == len(
                relation.partition(dirty_bucket)
            )
            assert delta["scores.staleness"]["value"] == 1 / 8

    def test_profile_reregistration_drops_blocks(self):
        relation, _ = self.make_bound()
        materializer = materializer_for(relation)
        assert max(
            s
            for s in materializer.row_scores("credibility")
            if s is not None
        ) == pytest.approx(0.9)
        register_profile(
            ScoringProfile(
                "stricter",
                [credibility_scorer({"acct'g": 0.6})],
            ),
            relations=["readings"],
        )
        scores = materializer.row_scores("credibility")
        assert max(s for s in scores if s is not None) == pytest.approx(0.6)

    def test_filter_indices(self):
        relation, _ = self.make_bound()
        materializer = materializer_for(relation)
        scores = materializer.row_scores("credibility")
        hits = materializer.filter_indices([("credibility", ">", 0.5)])
        assert hits == [
            i
            for i, s in enumerate(scores)
            if s is not None and s > 0.5
        ]
        # None scores never match, even negated comparisons.
        negated = materializer.filter_indices([("credibility", "!=", 0.9)])
        assert all(scores[i] is not None for i in negated)
        # Candidates restrict the pool and order is preserved.
        restricted = materializer.filter_indices(
            [("credibility", ">", 0.5)], candidates=hits[1:]
        )
        assert restricted == hits[1:]
        assert materializer.filter_indices(
            [("credibility", ">", 0.5), ("credibility", "<", 0.1)]
        ) == []

    def test_filter_indices_rejects_bad_input(self):
        relation, _ = self.make_bound()
        materializer = materializer_for(relation)
        with pytest.raises(AssessmentError, match="unknown operator"):
            materializer.filter_indices([("credibility", "~", 0.5)])
        with pytest.raises(AssessmentError, match="no.*parameter"):
            materializer.filter_indices([("accuracy", ">", 0.5)])

    def test_materializer_cache_is_per_object(self):
        relation, _ = self.make_bound()
        assert materializer_for(relation) is materializer_for(relation)
        snapshot = relation.read_snapshot()
        assert materializer_for(snapshot) is not materializer_for(relation)
        assert materializer_for(snapshot).row_scores(
            "credibility"
        ) == materializer_for(relation).row_scores("credibility")

    def test_row_parameter_score_helper(self):
        relation, profile = self.make_bound(n=4)
        positions = (relation.schema.index_of("v"),)
        row = relation.row_batch()[0]  # source=None, age=None
        assert (
            row_parameter_score(profile, "credibility", row, positions)
            is None
        )


# -- the equivalence property -------------------------------------------------

_OPS = st.one_of(
    st.tuples(
        st.just("insert"),
        st.integers(0, 99),
        st.sampled_from([None, "acct'g", "estimate", "rumor"]),
        st.sampled_from([None, 0.0, 25.0, 150.0]),
    ),
    st.tuples(st.just("delete"), st.integers(0, 5)),
    st.tuples(
        st.just("repartition"), st.sampled_from([None, 2, 4, 8])
    ),
    st.tuples(
        st.just("update"),
        st.integers(0, 99),
        st.sampled_from([None, "acct'g", "rumor"]),
        st.sampled_from([None, 50.0]),
    ),
)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_OPS, max_size=12))
def test_materialized_scores_track_arbitrary_mutations(ops):
    """Materialized arrays ≡ fresh per-cell scorecard scores after any
    interleaving of inserts, deletes, updates, and repartitions."""
    clear_profiles()
    relation = make_relation()
    next_key = [1000]
    for k in range(6):
        insert_row(relation, k, source="acct'g", age=float(20 * k))
    profile = register_profile(make_profile(), relations=["readings"])
    materializer = materializer_for(relation)
    for op in ops:
        kind = op[0]
        if kind == "insert":
            insert_row(relation, next_key[0], op[2], op[3])
            next_key[0] += 1
        elif kind == "delete":
            target = op[1]
            relation.delete(lambda row: row.value("k") % 6 == target)
        elif kind == "repartition":
            spec = (
                None if op[1] is None else hash_partitions("k", op[1])
            )
            relation.repartition(spec)
        else:  # update = delete + reinsert with new tags
            target = op[1]
            if any(r.value("k") == target for r in relation.row_batch()):
                relation.delete(lambda row: row.value("k") == target)
                insert_row(relation, target, op[2], op[3])
        # Refresh after every op so incremental reuse paths are the
        # ones under test, not a single cold build at the end.
        materializer.refresh()
    for parameter in profile.parameters:
        oracle = expected_scores(relation, profile, parameter)
        flat = materializer.row_scores(parameter)
        assert flat == pytest.approx(oracle)
        if relation.partition_spec is not None:
            for bucket in range(relation.partition_spec.count):
                shard = relation.partition(bucket)
                assert materializer.row_scores(
                    parameter, bucket=bucket
                ) == pytest.approx(
                    expected_scores(shard, profile, parameter)
                )
