"""Unit and integration tests for the TDQM improvement cycle."""

import datetime as dt

import pytest

from repro.core import DataQualityModeling
from repro.core.terminology import QualityIndicatorSpec
from repro.er.model import Entity, ERAttribute, ERSchema
from repro.errors import QualityError
from repro.manufacturing.collection import CollectionMethod
from repro.manufacturing.generator import make_companies
from repro.manufacturing.pipeline import ManufacturingPipeline
from repro.manufacturing.sources import DataSource
from repro.manufacturing.world import World
from repro.quality.scoring import (
    QualityScorecard,
    collection_accuracy_scorer,
    credibility_scorer,
)
from repro.quality.tdqm import ImprovementAction, TDQMCycle
from repro.relational.schema import schema


def _quality_schema():
    er = ERSchema("crm")
    er.add_entity(
        Entity(
            "customer",
            [
                ERAttribute("co_name", "STR"),
                ERAttribute("address", "STR"),
                ERAttribute("employees", "INT"),
            ],
            key=["co_name"],
        )
    )
    modeling = DataQualityModeling()
    app_view = modeling.step1(er)
    param_view = modeling.step2(
        app_view,
        [
            (("customer", "address"), "source_credibility", ""),
            (("customer", "employees"), "source_credibility", ""),
        ],
    )
    quality_view = modeling.step3(
        param_view,
        decisions={
            (("customer", "address"), "source_credibility"): [
                QualityIndicatorSpec("source")
            ],
            (("customer", "employees"), "source_credibility"): [
                QualityIndicatorSpec("source")
            ],
        },
        auto=False,
    )
    return modeling.step4([quality_view])


@pytest.fixture
def environment():
    world = World(dt.date(1991, 1, 1), make_companies(120, seed=55), seed=55)
    pipeline = ManufacturingPipeline(
        world,
        schema(
            "customer",
            [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
            key=["co_name"],
        ),
        "co_name",
    )
    good_source = DataSource("acct'g", world, error_rate=0.01, seed=55)
    bad_source = DataSource("rumor_mill", world, error_rate=0.45, seed=56)
    good_method = CollectionMethod("scanner", 0.005, seed=55)
    bad_method = CollectionMethod("voice_decoder", 0.02, seed=56)
    pipeline.assign("address", good_source, good_method)
    pipeline.assign("employees", bad_source, bad_method)

    scorecard = QualityScorecard(
        [
            credibility_scorer(
                {"acct'g": 0.95, "rumor_mill": 0.2, "verified_registry": 0.95}
            ),
        ]
    )
    cycle = TDQMCycle(
        _quality_schema(), "customer", scorecard, pipeline,
        deficit_threshold=0.3,
    )
    return world, pipeline, cycle


class TestMeasure:
    def test_measurement_records(self, environment):
        world, pipeline, cycle = environment
        relation = pipeline.manufacture()
        measurement = cycle.measure(relation, today=world.today)
        assert measurement.cycle == 0
        assert measurement.overall_score is not None
        assert "conformance=" in measurement.summary()

    def test_conformance_uses_quality_schema(self, environment):
        world, pipeline, cycle = environment
        relation = pipeline.manufacture()
        measurement = cycle.measure(relation, today=world.today)
        # The pipeline tags source on every cell: requirements conform.
        assert measurement.admin_report.conforms


class TestAnalyze:
    def test_flags_the_bad_route(self, environment):
        world, pipeline, cycle = environment
        relation = pipeline.manufacture()
        measurement = cycle.measure(relation, today=world.today)
        analysis = cycle.analyze(measurement)
        # employees (rumor_mill) is the deficit leader.
        assert analysis.column_deficits[0][0] == "employees"
        assert len(analysis.actions) == 1
        action = analysis.actions[0]
        assert action.attribute == "employees"
        assert action.kind == "replace_source"  # source dominates device
        assert "rumor_mill" in action.reason

    def test_good_columns_not_flagged(self, environment):
        world, pipeline, cycle = environment
        relation = pipeline.manufacture()
        analysis = cycle.analyze(cycle.measure(relation, today=world.today))
        assert all(a.attribute != "address" for a in analysis.actions)

    def test_inspection_budget_plan(self, environment):
        world, pipeline, cycle = environment
        relation = pipeline.manufacture()
        analysis = cycle.analyze(
            cycle.measure(relation, today=world.today), inspection_budget=4.0
        )
        assert analysis.inspection_plan is not None
        assert analysis.inspection_plan.spent <= 4.0
        # The noisier route receives at least as many units.
        units = analysis.inspection_plan.units
        assert units.get("voice_decoder", 0) >= units.get("scanner", 0)

    def test_render(self, environment):
        world, pipeline, cycle = environment
        relation = pipeline.manufacture()
        analysis = cycle.analyze(cycle.measure(relation, today=world.today))
        text = analysis.render()
        assert "column deficits" in text
        assert "proposed actions" in text


class TestImprove:
    def test_applies_replacement(self, environment):
        world, pipeline, cycle = environment
        relation = pipeline.manufacture()
        analysis = cycle.analyze(cycle.measure(relation, today=world.today))
        better = DataSource("verified_registry", world, error_rate=0.02, seed=57)
        changes = cycle.improve(
            analysis, replacement_sources={"employees": better}
        )
        assert len(changes) == 1
        assert pipeline.routes["employees"].source.name == "verified_registry"

    def test_no_replacement_no_change(self, environment):
        world, pipeline, cycle = environment
        relation = pipeline.manufacture()
        analysis = cycle.analyze(cycle.measure(relation, today=world.today))
        changes = cycle.improve(analysis)
        assert changes == []
        assert pipeline.routes["employees"].source.name == "rumor_mill"


class TestFullCycleImproves:
    def test_score_rises_across_cycles(self, environment):
        """The TDQM promise, measured: cycle 2 scores beat cycle 1."""
        world, pipeline, cycle = environment
        better = DataSource("verified_registry", world, error_rate=0.02, seed=57)
        first, analysis, changes = cycle.run_cycle(
            today=world.today,
            replacement_sources={"employees": better},
        )
        assert changes  # the improvement was applied
        second, _, _ = cycle.run_cycle(today=world.today)
        assert second.overall_score > first.overall_score
        history = cycle.render_history()
        assert "cycle 1" in history and "cycle 2" in history

    def test_threshold_validated(self, environment):
        world, pipeline, _ = environment
        scorecard = QualityScorecard([credibility_scorer({"a": 1.0})])
        with pytest.raises(QualityError):
            TDQMCycle(
                _quality_schema(), "customer", scorecard, pipeline,
                deficit_threshold=1.5,
            )
