"""Unit tests for inspection mechanisms."""

import pytest

from repro.errors import InspectionError
from repro.quality.inspection import (
    CertificationLog,
    DoubleEntry,
    PeriodicInspectionPrompt,
)


class TestDoubleEntry:
    def test_agreement(self):
        de = DoubleEntry()
        de.enter(("Nut Co",), "employees", 700, "alice")
        de.enter(("Nut Co",), "employees", 700, "bob")
        assert de.discrepancies() == []
        assert de.agreement_rate() == 1.0

    def test_discrepancy_flagged(self):
        de = DoubleEntry()
        de.enter(("Nut Co",), "employees", 700, "alice")
        de.enter(("Nut Co",), "employees", 710, "bob")
        pairs = de.discrepancies()
        assert len(pairs) == 1
        assert (pairs[0].first, pairs[0].second) == (700, 710)

    def test_same_operator_rejected(self):
        de = DoubleEntry()
        de.enter(("X",), "f", 1, "alice")
        with pytest.raises(InspectionError):
            de.enter(("X",), "f", 1, "alice")

    def test_third_entry_rejected(self):
        de = DoubleEntry()
        de.enter(("X",), "f", 1, "alice")
        de.enter(("X",), "f", 1, "bob")
        with pytest.raises(InspectionError):
            de.enter(("X",), "f", 1, "carol")

    def test_pending(self):
        de = DoubleEntry()
        de.enter(("X",), "f", 1, "alice")
        assert de.pending() == [(("X",), "f")]
        assert de.agreement_rate() == 1.0  # vacuous

    def test_mixed_agreement_rate(self):
        de = DoubleEntry()
        de.enter(("A",), "f", 1, "alice")
        de.enter(("A",), "f", 1, "bob")
        de.enter(("B",), "f", 1, "alice")
        de.enter(("B",), "f", 2, "bob")
        assert de.agreement_rate() == 0.5


class TestCertificationLog:
    def test_latest_verdict_wins(self):
        log = CertificationLog()
        log.reject("customer", ("Nut Co",), "auditor", "address stale")
        log.certify("customer", ("Nut Co",), "auditor", "re-verified")
        assert log.status_of("customer", ("Nut Co",)) == "certified"

    def test_never_certified(self):
        log = CertificationLog()
        assert log.status_of("customer", ("Ghost",)) is None

    def test_requires_certifier(self):
        log = CertificationLog()
        with pytest.raises(InspectionError):
            log.certify("customer", ("X",), "")

    def test_certified_subjects(self):
        log = CertificationLog()
        log.certify("customer", ("A",), "auditor")
        log.certify("customer", ("B",), "auditor")
        log.reject("customer", ("B",), "auditor")
        assert log.certified_subjects("customer") == [("A",)]


class TestPeriodicPrompt:
    def test_periodic_schedule(self):
        prompt = PeriodicInspectionPrompt(every_n=3)
        reasons = [prompt.observe({"v": i}) for i in range(6)]
        fired = [i for i, r in enumerate(reasons) if r]
        assert fired == [2, 5]

    def test_peculiar_data_fires_immediately(self):
        prompt = PeriodicInspectionPrompt(
            every_n=100, peculiar=lambda record: record["v"] > 10
        )
        assert prompt.observe({"v": 5}) == []
        assert prompt.observe({"v": 50}) == ["peculiar data"]

    def test_both_reasons(self):
        prompt = PeriodicInspectionPrompt(
            every_n=1, peculiar=lambda record: True
        )
        reasons = prompt.observe({"v": 1})
        assert len(reasons) == 2

    def test_invalid_period(self):
        with pytest.raises(InspectionError):
            PeriodicInspectionPrompt(every_n=0)

    def test_prompt_log(self):
        prompt = PeriodicInspectionPrompt(every_n=2)
        prompt.observe({})
        prompt.observe({})
        assert prompt.prompts == [(2, "periodic inspection (every 2 records)")]
        assert prompt.observed == 2
