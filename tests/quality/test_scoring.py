"""Unit tests for parameter scoring and hierarchical rollups."""

import datetime as dt

import pytest

from repro.errors import AssessmentError
from repro.quality.scoring import (
    ParameterScorer,
    QualityScorecard,
    collection_accuracy_scorer,
    credibility_scorer,
    inspection_scorer,
    timeliness_scorer,
)
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue


def cell_with(**tags):
    return QualityCell(1, [IndicatorValue(k, v) for k, v in tags.items()])


class TestBuiltinScorers:
    def test_timeliness_from_age(self):
        scorer = timeliness_scorer(shelf_life_days=100)
        assert scorer.score(cell_with(age=0.0)) == 1.0
        assert scorer.score(cell_with(age=50.0)) == 0.5
        assert scorer.score(cell_with(age=500.0)) == 0.0

    def test_timeliness_from_creation_time(self):
        scorer = timeliness_scorer(shelf_life_days=100)
        cell = cell_with(creation_time=dt.date(1991, 1, 1))
        score = scorer.score(cell, {"today": dt.date(1991, 1, 31)})
        assert score == pytest.approx(0.7)
        # Without today the cell is unscorable.
        assert scorer.score(cell) is None

    def test_timeliness_age_beats_creation_time(self):
        scorer = timeliness_scorer(shelf_life_days=10)
        cell = QualityCell(
            1,
            [
                IndicatorValue("age", 1.0),
                IndicatorValue("creation_time", dt.date(1980, 1, 1)),
            ],
        )
        assert scorer.score(cell, {"today": dt.date(1991, 1, 1)}) == 0.9

    def test_timeliness_requires_positive_shelf_life(self):
        with pytest.raises(AssessmentError):
            timeliness_scorer(0)

    def test_credibility_table(self):
        scorer = credibility_scorer({"Wall Street Journal": 0.95}, default=0.3)
        assert scorer.score(cell_with(source="Wall Street Journal")) == 0.95
        assert scorer.score(cell_with(source="rumor mill")) == 0.3
        assert scorer.score(QualityCell(1)) == 0.3

    def test_credibility_no_default_unscorable(self):
        scorer = credibility_scorer({"a": 1.0})
        assert scorer.score(QualityCell(1)) is None

    def test_collection_accuracy(self):
        scorer = collection_accuracy_scorer({"bar_code_scanner": 0.998})
        assert scorer.score(cell_with(collection_method="bar_code_scanner")) == 0.998

    def test_inspection_levels(self):
        scorer = inspection_scorer()
        assert scorer.score(cell_with(inspection="certified")) == 1.0
        assert scorer.score(cell_with(inspection="pending")) == 0.75
        assert scorer.score(QualityCell(1)) == 0.5

    def test_scores_clamped(self):
        scorer = ParameterScorer("x", lambda tags, ctx: 7.0)
        assert scorer.score(QualityCell(1)) == 1.0
        scorer_negative = ParameterScorer("x", lambda tags, ctx: -2.0)
        assert scorer_negative.score(QualityCell(1)) == 0.0

    def test_timeliness_clamps_future_dated_cells(self):
        # A future-dated creation_time (source clock skew) makes age
        # negative; the raw scoring function itself must honor the
        # [0, 1] contract, not lean on ParameterScorer's outer clamp —
        # rollups and materialized arrays read the same function.
        scorer = timeliness_scorer(shelf_life_days=100)
        assert scorer.func({"age": -5.0}, {}) == 1.0
        created = dt.date(1991, 2, 1)
        assert (
            scorer.func(
                {"creation_time": created}, {"today": dt.date(1991, 1, 1)}
            )
            == 1.0
        )

    def test_timeliness_non_numeric_age_unscorable(self):
        scorer = timeliness_scorer(shelf_life_days=100)
        assert scorer.score(cell_with(age="unknown")) is None

    def test_timeliness_non_date_creation_time_unscorable(self):
        scorer = timeliness_scorer(shelf_life_days=100)
        cell = cell_with(creation_time="not-a-date")
        assert scorer.score(cell, {"today": dt.date(1991, 1, 1)}) is None

    def test_rating_tables_validated_at_construction(self):
        with pytest.raises(AssessmentError):
            credibility_scorer({"rumor mill": 1.5})
        with pytest.raises(AssessmentError):
            credibility_scorer({"WSJ": 0.9}, default=-0.1)
        with pytest.raises(AssessmentError):
            collection_accuracy_scorer({"bar_code_scanner": 99.8})
        with pytest.raises(AssessmentError):
            collection_accuracy_scorer({"manual": 0.9}, default=2.0)


class TestScorecardCellLevel:
    @pytest.fixture
    def scorecard(self):
        return QualityScorecard(
            [
                timeliness_scorer(100),
                credibility_scorer({"acct'g": 0.9, "estimate": 0.3}),
            ],
            weights={"timeliness": 2.0, "credibility": 1.0},
        )

    def test_per_parameter(self, scorecard):
        cell = cell_with(age=50.0, source="acct'g")
        scores = scorecard.score_cell(cell)
        assert scores == {"timeliness": 0.5, "credibility": 0.9}

    def test_weighted_composite(self, scorecard):
        cell = cell_with(age=50.0, source="acct'g")
        composite = scorecard.composite_cell(cell)
        assert composite == pytest.approx((2 * 0.5 + 1 * 0.9) / 3)

    def test_composite_renormalizes_over_scorable(self, scorecard):
        # Only credibility scorable: composite = its score, not dragged
        # to zero by the unscorable timeliness.
        cell = cell_with(source="estimate")
        assert scorecard.composite_cell(cell) == 0.3

    def test_fully_unscorable_is_none(self, scorecard):
        assert scorecard.composite_cell(QualityCell(1)) is None

    def test_validation(self):
        with pytest.raises(AssessmentError):
            QualityScorecard([])
        scorer = timeliness_scorer(10)
        with pytest.raises(AssessmentError):
            QualityScorecard([scorer, timeliness_scorer(20)])
        with pytest.raises(AssessmentError):
            QualityScorecard([scorer], weights={"ghost": 1.0})
        with pytest.raises(AssessmentError):
            QualityScorecard([scorer], weights={"timeliness": -1.0})


class TestScorecardRollups:
    @pytest.fixture
    def relation(self, customer_schema, customer_tag_schema):
        from repro.tagging.relation import TaggedRelation

        rel = TaggedRelation(customer_schema, customer_tag_schema)
        rel.insert(
            {
                "co_name": "A",
                "address": QualityCell(
                    "1 St",
                    [
                        IndicatorValue("source", "acct'g"),
                        IndicatorValue("creation_time", dt.date(1991, 1, 1)),
                    ],
                ),
                "employees": QualityCell(
                    10, [IndicatorValue("source", "estimate")]
                ),
            }
        )
        rel.insert(
            {
                "co_name": "B",
                "address": QualityCell("2 St", []),
                "employees": QualityCell(
                    20, [IndicatorValue("source", "acct'g")]
                ),
            }
        )
        return rel

    @pytest.fixture
    def scorecard(self):
        return QualityScorecard(
            [
                credibility_scorer({"acct'g": 0.9, "estimate": 0.3}),
                timeliness_scorer(365),
            ]
        )

    def test_column_rollup(self, relation, scorecard):
        column = scorecard.score_column(
            relation, "employees", {"today": dt.date(1991, 7, 1)}
        )
        credibility = column.parameters["credibility"]
        assert credibility.score == pytest.approx((0.3 + 0.9) / 2)
        assert credibility.coverage == 1.0
        # No time tags on employees: timeliness unscorable.
        assert column.parameters["timeliness"].score is None
        assert column.parameters["timeliness"].coverage == 0.0

    def test_coverage_honest(self, relation, scorecard):
        column = scorecard.score_column(
            relation, "address", {"today": dt.date(1991, 7, 1)}
        )
        # Row B's address has no tags: coverage 0.5 for each parameter.
        assert column.parameters["credibility"].coverage == 0.5
        assert column.composite.coverage == 0.5

    def test_relation_rollup(self, relation, scorecard):
        score = scorecard.score_relation(
            relation, context={"today": dt.date(1991, 7, 1)}
        )
        assert set(score.columns) == {"address", "employees"}
        assert score.composite.total == 4  # 2 rows × 2 tagged columns
        text = score.render()
        assert "Data quality scorecard: customer" in text
        assert "credibility" in text

    def test_database_rollup(self, relation, scorecard):
        result = scorecard.score_database(
            {"customer": relation}, context={"today": dt.date(1991, 7, 1)}
        )
        assert "customer" in result["relations"]
        overall = result["overall"]
        assert overall.total == 4
        assert overall.score is not None

    def test_premise13_heterogeneity_visible(self, relation, scorecard):
        """The rollup exposes Premise 1.3: column quality differs."""
        score = scorecard.score_relation(
            relation, context={"today": dt.date(1991, 7, 1)}
        )
        address = score.columns["address"].composite
        employees = score.columns["employees"].composite
        assert address.score != employees.score
