"""Unit tests for application quality profiles."""

import pytest

from repro.errors import QualityError
from repro.quality.profiles import ApplicationProfile, ProfileRegistry
from repro.tagging.query import IndicatorConstraint, QualityFilter


@pytest.fixture
def registry(tagged_customers):
    reg = ProfileRegistry()
    reg.register(
        ApplicationProfile(
            "mass_mailing", QualityFilter(name="mass_mailing"), "no constraints"
        )
    )
    reg.register(
        ApplicationProfile(
            "fund_raising",
            QualityFilter(
                [IndicatorConstraint("employees", "source", "!=", "estimate")],
                name="fund_raising",
            ),
            "constrained",
        )
    )
    return reg


class TestApplicationProfile:
    def test_requires_name(self):
        with pytest.raises(QualityError):
            ApplicationProfile("", QualityFilter())

    def test_retrieve(self, registry, tagged_customers):
        open_grade = registry.get("mass_mailing").retrieve(tagged_customers)
        strict_grade = registry.get("fund_raising").retrieve(tagged_customers)
        assert len(open_grade) == 2
        assert len(strict_grade) == 1

    def test_describe(self, registry):
        text = registry.get("fund_raising").describe()
        assert "fund_raising" in text
        assert "employees.source != 'estimate'" in text


class TestProfileRegistry:
    def test_duplicate_rejected(self, registry):
        with pytest.raises(QualityError):
            registry.register(
                ApplicationProfile("mass_mailing", QualityFilter())
            )

    def test_unknown_profile(self, registry):
        with pytest.raises(QualityError):
            registry.get("ghost")

    def test_retrieve_by_name(self, registry, tagged_customers):
        assert len(registry.retrieve("fund_raising", tagged_customers)) == 1

    def test_names_sorted(self, registry):
        assert registry.names == ("fund_raising", "mass_mailing")

    def test_contains_len_iter(self, registry):
        assert "mass_mailing" in registry
        assert len(registry) == 2
        assert {p.name for p in registry} == {"mass_mailing", "fund_raising"}

    def test_describe_all(self, registry):
        text = registry.describe()
        assert "mass_mailing" in text and "fund_raising" in text
        assert ProfileRegistry().describe() == "(no profiles registered)"
