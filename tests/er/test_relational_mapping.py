"""Unit tests for ER → relational translation."""

import pytest

from repro.er.model import (
    Cardinality,
    Entity,
    ERAttribute,
    ERSchema,
    Participant,
    Relationship,
)
from repro.er.relational_mapping import er_to_relational
from repro.errors import ConstraintViolation, ERValidationError


class TestEntityMapping:
    def test_entities_become_relations(self, trading_er):
        db = er_to_relational(trading_er)
        assert "client" in db
        assert "company_stock" in db

    def test_entity_key_carried(self, trading_er):
        db = er_to_relational(trading_er)
        assert db.relation("client").schema.key == ("account_number",)

    def test_primary_key_enforced(self, trading_er):
        db = er_to_relational(trading_er)
        db.insert(
            "client",
            {
                "account_number": "A1",
                "name": "x",
                "address": "y",
                "telephone": "z",
            },
        )
        with pytest.raises(ConstraintViolation):
            db.insert(
                "client",
                {
                    "account_number": "A1",
                    "name": "other",
                    "address": "y",
                    "telephone": "z",
                },
            )

    def test_invalid_schema_rejected(self):
        er = ERSchema("bad")
        er.add_entity(Entity("a", [ERAttribute("x")]))  # no key
        with pytest.raises(ERValidationError):
            er_to_relational(er)


class TestManyToManyMapping:
    def test_relationship_relation_created(self, trading_er):
        db = er_to_relational(trading_er)
        trade = db.relation("trade")
        assert trade.schema.column_names == (
            "client_account_number",
            "company_stock_ticker_symbol",
            "date",
            "quantity",
            "trade_price",
        )

    def test_foreign_keys_enforced(self, trading_er):
        db = er_to_relational(trading_er)
        with pytest.raises(ConstraintViolation):
            db.insert(
                "trade",
                {
                    "client_account_number": "ghost",
                    "company_stock_ticker_symbol": "ghost",
                    "date": "1991-01-02",
                    "quantity": 100,
                    "trade_price": 10.0,
                },
            )

    def test_full_insert_path(self, trading_er):
        db = er_to_relational(trading_er)
        db.insert(
            "client",
            {
                "account_number": "A1",
                "name": "Ann",
                "address": "1 Main",
                "telephone": "617",
            },
        )
        db.insert(
            "company_stock",
            {
                "ticker_symbol": "FRT",
                "share_price": 10.0,
                "research_report": "...",
            },
        )
        db.insert(
            "trade",
            {
                "client_account_number": "A1",
                "company_stock_ticker_symbol": "FRT",
                "date": "1991-01-02",
                "quantity": 100,
                "trade_price": 10.5,
            },
        )
        assert len(db.relation("trade")) == 1


class TestOneToManyFolding:
    @pytest.fixture
    def dept_er(self):
        er = ERSchema("org")
        er.add_entity(Entity("dept", [ERAttribute("dname")], key=["dname"]))
        er.add_entity(
            Entity(
                "emp",
                [ERAttribute("eid", "INT"), ERAttribute("ename")],
                key=["eid"],
            )
        )
        er.add_relationship(
            Relationship(
                "works_in",
                [
                    Participant("emp", Cardinality.MANY),
                    Participant("dept", Cardinality.ONE),
                ],
            )
        )
        return er

    def test_folded_into_many_side(self, dept_er):
        db = er_to_relational(dept_er)
        assert "works_in" not in db
        assert "dept_dname" in db.relation("emp").schema

    def test_folded_fk_enforced(self, dept_er):
        db = er_to_relational(dept_er)
        with pytest.raises(ConstraintViolation):
            db.insert(
                "emp", {"eid": 1, "ename": "x", "dept_dname": "ghost"}
            )
        db.insert("dept", {"dname": "sales"})
        db.insert("emp", {"eid": 1, "ename": "x", "dept_dname": "sales"})

    def test_one_to_many_with_attributes_not_folded(self):
        er = ERSchema("org")
        er.add_entity(Entity("dept", [ERAttribute("dname")], key=["dname"]))
        er.add_entity(Entity("emp", [ERAttribute("eid", "INT")], key=["eid"]))
        er.add_relationship(
            Relationship(
                "works_in",
                [
                    Participant("emp", Cardinality.MANY),
                    Participant("dept", Cardinality.ONE),
                ],
                [ERAttribute("since", "DATE")],
            )
        )
        db = er_to_relational(er)
        assert "works_in" in db
