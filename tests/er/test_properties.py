"""Property-based tests for ER schemas and the relational mapping."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.er.model import (
    Cardinality,
    Entity,
    ERAttribute,
    ERSchema,
    Participant,
    Relationship,
)
from repro.er.relational_mapping import er_to_relational
from repro.er.validation import validate_er_schema

NAMES = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)
DOMAINS = st.sampled_from(["STR", "INT", "FLOAT", "DATE"])


@st.composite
def er_schemas(draw) -> ERSchema:
    """Random well-formed ER schemas: 1-4 entities, 0-3 binary rels."""
    schema = ERSchema("generated")
    entity_names = draw(
        st.lists(NAMES, min_size=1, max_size=4, unique=True)
    )
    for name in entity_names:
        attr_names = draw(
            st.lists(
                st.sampled_from(["id", "a", "b", "c", "d"]),
                min_size=1,
                max_size=4,
                unique=True,
            )
        )
        if "id" not in attr_names:
            attr_names.insert(0, "id")
        attributes = [
            ERAttribute(a, draw(DOMAINS)) for a in attr_names
        ]
        schema.add_entity(Entity(name, attributes, key=["id"]))
    n_rels = draw(st.integers(min_value=0, max_value=3))
    for index in range(n_rels):
        left = draw(st.sampled_from(entity_names))
        right = draw(st.sampled_from(entity_names))
        cardinalities = draw(
            st.tuples(
                st.sampled_from(list(Cardinality)),
                st.sampled_from(list(Cardinality)),
            )
        )
        rel_attrs = draw(
            st.lists(
                st.sampled_from(["x", "y", "z"]),
                max_size=2,
                unique=True,
            )
        )
        schema.add_relationship(
            Relationship(
                f"rel{index}",
                [
                    Participant(left, cardinalities[0], role=f"l{index}"),
                    Participant(right, cardinalities[1], role=f"r{index}"),
                ],
                [ERAttribute(a, "INT") for a in rel_attrs],
            )
        )
    return schema


class TestERSchemaProperties:
    @settings(max_examples=50)
    @given(er_schemas())
    def test_generated_schemas_valid(self, schema):
        assert validate_er_schema(schema) == []

    @settings(max_examples=50)
    @given(er_schemas())
    def test_serialization_round_trip(self, schema):
        restored = ERSchema.from_dict(schema.to_dict())
        assert restored.to_dict() == schema.to_dict()

    @settings(max_examples=50)
    @given(er_schemas())
    def test_copy_is_deep(self, schema):
        copy = schema.copy()
        copy.entity(copy.entities[0].name).add_attribute(
            ERAttribute("sentinel")
        )
        assert not schema.entities[0].has_attribute("sentinel")

    @settings(max_examples=50)
    @given(er_schemas())
    def test_annotation_targets_resolve(self, schema):
        for target in schema.annotation_targets():
            kind, obj = schema.resolve_target(target)
            assert kind in (
                "entity",
                "entity_attribute",
                "relationship",
                "relationship_attribute",
            )
            assert obj is not None


class TestRelationalMappingProperties:
    @settings(max_examples=40, deadline=None)
    @given(er_schemas())
    def test_every_entity_becomes_a_relation(self, schema):
        database = er_to_relational(schema)
        for entity in schema.entities:
            assert entity.name in database
            relation_schema = database.relation(entity.name).schema
            # All entity attributes survive (extra FK columns may join).
            for attribute in entity.attributes:
                assert attribute.name in relation_schema
            assert relation_schema.key == entity.key

    @settings(max_examples=40, deadline=None)
    @given(er_schemas())
    def test_relationships_accounted_for(self, schema):
        database = er_to_relational(schema)
        for relationship in schema.relationships:
            cards = [p.cardinality for p in relationship.participants]
            foldable = (
                len(relationship.participants) == 2
                and not relationship.attributes
                and cards.count(Cardinality.ONE) == 1
            )
            if foldable:
                # Folded into the MANY side as FK columns.
                assert relationship.name not in database
                many = relationship.participants[
                    cards.index(Cardinality.MANY)
                ]
                one = relationship.participants[1 - cards.index(Cardinality.MANY)]
                many_schema = database.relation(many.entity_name).schema
                assert f"{one.role}_id" in many_schema
            else:
                assert relationship.name in database

    @settings(max_examples=40, deadline=None)
    @given(er_schemas())
    def test_foreign_keys_registered(self, schema):
        database = er_to_relational(schema)
        fk_names = [
            c.name for c in database.constraints if c.name.startswith("fk_")
        ]
        # One FK per participant of each unfolded relationship; one per
        # folded relationship.
        expected = 0
        for relationship in schema.relationships:
            cards = [p.cardinality for p in relationship.participants]
            foldable = (
                len(relationship.participants) == 2
                and not relationship.attributes
                and cards.count(Cardinality.ONE) == 1
            )
            expected += 1 if foldable else len(relationship.participants)
        assert len(fk_names) == expected
