"""Unit tests for ASCII ER diagram rendering."""

import pytest

from repro.er.diagram import (
    Annotation,
    STYLE_CLOUD,
    STYLE_DOTTED,
    STYLE_INSPECTION,
    render_er_diagram,
)


class TestAnnotation:
    def test_cloud_marker(self):
        assert Annotation(("e",), "timeliness").marker() == "( timeliness )"

    def test_dotted_marker(self):
        assert (
            Annotation(("e",), "age", STYLE_DOTTED).marker() == "[. age .]"
        )

    def test_inspection_marker(self):
        assert (
            Annotation(("e",), "inspection", STYLE_INSPECTION).marker()
            == "(/ inspection )"
        )

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            Annotation(("e",), "x", "wavy")


class TestRenderPlain:
    def test_contains_entities_and_keys(self, trading_er):
        text = render_er_diagram(trading_er)
        assert "+-- client " in text
        assert "account_number: STR <*key*>" in text
        assert "<trade>" in text
        assert "client (N) --- company_stock (N)" in text

    def test_relationship_attributes_listed(self, trading_er):
        text = render_er_diagram(trading_er)
        assert ". quantity: INT" in text

    def test_title_and_legend(self, trading_er):
        text = render_er_diagram(trading_er, title="Figure 3", legend=True)
        assert text.startswith("Figure 3\n========")
        assert "Legend:" in text

    def test_deterministic(self, trading_er):
        assert render_er_diagram(trading_er) == render_er_diagram(trading_er)

    def test_box_borders_align(self, trading_er):
        lines = render_er_diagram(trading_er).splitlines()
        index = 0
        boxes_checked = 0
        while index < len(lines):
            line = lines[index]
            if line.startswith("+-- "):  # a box top
                box = [line]
                index += 1
                while index < len(lines) and not set(lines[index]) <= {"+", "-"}:
                    box.append(lines[index])
                    index += 1
                assert index < len(lines), "box has no bottom border"
                box.append(lines[index])  # the bottom border
                assert len({len(l) for l in box}) == 1, box
                boxes_checked += 1
            index += 1
        assert boxes_checked == 2  # client and company_stock


class TestRenderAnnotated:
    def test_attribute_annotation_inline(self, trading_er):
        text = render_er_diagram(
            trading_er,
            [Annotation(("company_stock", "share_price"), "timeliness")],
        )
        assert "share_price: FLOAT   ( timeliness )" in text

    def test_entity_level_annotation_in_title(self, trading_er):
        text = render_er_diagram(
            trading_er, [Annotation(("client",), "completeness")]
        )
        assert "+-- client  ( completeness )" in text

    def test_relationship_annotation(self, trading_er):
        text = render_er_diagram(
            trading_er,
            [Annotation(("trade",), "inspection", STYLE_INSPECTION)],
        )
        assert "<trade>" in text
        assert "(/ inspection )" in text

    def test_relationship_attribute_annotation(self, trading_er):
        text = render_er_diagram(
            trading_er,
            [Annotation(("trade", "date"), "creation_time", STYLE_DOTTED)],
        )
        assert ". date: DATE   [. creation_time .]" in text

    def test_multiple_annotations_same_target(self, trading_er):
        text = render_er_diagram(
            trading_er,
            [
                Annotation(("company_stock", "research_report"), "cost"),
                Annotation(("company_stock", "research_report"), "credibility"),
            ],
        )
        assert "( cost ) ( credibility )" in text
