"""Unit tests for ER schema validation."""

import pytest

from repro.er.model import Entity, ERAttribute, ERSchema, Participant, Relationship
from repro.er.validation import require_valid, validate_er_schema
from repro.errors import ERValidationError


def test_valid_schema_has_no_problems(trading_er):
    assert validate_er_schema(trading_er) == []


def test_missing_key_reported():
    er = ERSchema("s")
    er.add_entity(Entity("a", [ERAttribute("x")]))
    problems = validate_er_schema(er)
    assert any("no identifying key" in p for p in problems)


def test_missing_key_tolerated_when_not_required():
    er = ERSchema("s")
    er.add_entity(Entity("a", [ERAttribute("x")]))
    assert validate_er_schema(er, require_keys=False) == []


def test_attributeless_entity_reported():
    er = ERSchema("s")
    er.add_entity(Entity("a"))
    problems = validate_er_schema(er, require_keys=False)
    assert any("no attributes" in p for p in problems)


def test_relationship_attribute_colliding_with_entity_key():
    er = ERSchema("s")
    er.add_entity(Entity("a", [ERAttribute("id")], key=["id"]))
    er.add_entity(Entity("b", [ERAttribute("id2")], key=["id2"]))
    er.add_relationship(
        Relationship(
            "r",
            [Participant("a"), Participant("b")],
            [ERAttribute("id")],  # collides with a's key
        )
    )
    problems = validate_er_schema(er)
    assert any("collide" in p for p in problems)


def test_require_valid_raises(trading_er):
    require_valid(trading_er)  # no error
    er = ERSchema("bad")
    er.add_entity(Entity("a", [ERAttribute("x")]))
    with pytest.raises(ERValidationError):
        require_valid(er)
