"""Unit tests for the ER model objects."""

import pytest

from repro.er.model import (
    Cardinality,
    Entity,
    ERAttribute,
    ERSchema,
    Participant,
    Relationship,
)
from repro.errors import ERModelError


class TestERAttribute:
    def test_defaults_to_str(self):
        assert ERAttribute("name").domain.name == "STR"

    def test_requires_name(self):
        with pytest.raises(ERModelError):
            ERAttribute("")

    def test_equality(self):
        assert ERAttribute("a", "INT") == ERAttribute("a", "INT")
        assert ERAttribute("a", "INT") != ERAttribute("a", "STR")


class TestEntity:
    def test_construction_with_key(self):
        entity = Entity(
            "client",
            [ERAttribute("account", "STR"), ERAttribute("name", "STR")],
            key=["account"],
        )
        assert entity.key == ("account",)
        assert entity.attribute_names == ("account", "name")

    def test_duplicate_attribute(self):
        entity = Entity("e", [ERAttribute("a")])
        with pytest.raises(ERModelError):
            entity.add_attribute(ERAttribute("a"))

    def test_key_must_be_attribute(self):
        with pytest.raises(ERModelError):
            Entity("e", [ERAttribute("a")], key=["b"])

    def test_empty_key_rejected(self):
        entity = Entity("e", [ERAttribute("a")])
        with pytest.raises(ERModelError):
            entity.set_key([])

    def test_remove_attribute(self):
        entity = Entity("e", [ERAttribute("a"), ERAttribute("b")], key=["a"])
        removed = entity.remove_attribute("b")
        assert removed.name == "b"
        assert entity.attribute_names == ("a",)

    def test_cannot_remove_key_attribute(self):
        entity = Entity("e", [ERAttribute("a")], key=["a"])
        with pytest.raises(ERModelError):
            entity.remove_attribute("a")

    def test_remove_unknown_attribute(self):
        entity = Entity("e", [ERAttribute("a")])
        with pytest.raises(ERModelError):
            entity.remove_attribute("ghost")

    def test_attribute_lookup(self):
        entity = Entity("e", [ERAttribute("a", "INT")])
        assert entity.attribute("a").domain.name == "INT"
        with pytest.raises(ERModelError):
            entity.attribute("ghost")


class TestRelationship:
    def _participants(self):
        return [Participant("a"), Participant("b")]

    def test_requires_two_participants(self):
        with pytest.raises(ERModelError):
            Relationship("r", [Participant("a")])

    def test_duplicate_roles_rejected(self):
        with pytest.raises(ERModelError):
            Relationship("r", [Participant("a"), Participant("a")])

    def test_same_entity_distinct_roles_ok(self):
        rel = Relationship(
            "manages",
            [Participant("emp", role="manager"), Participant("emp", role="report")],
        )
        assert rel.entity_names == ("emp", "emp")

    def test_relationship_attributes(self):
        rel = Relationship(
            "trade", self._participants(), [ERAttribute("date", "DATE")]
        )
        assert rel.attribute("date").domain.name == "DATE"
        with pytest.raises(ERModelError):
            rel.add_attribute(ERAttribute("date"))

    def test_default_cardinality_many(self):
        rel = Relationship("r", self._participants())
        assert all(p.cardinality is Cardinality.MANY for p in rel.participants)


class TestERSchema:
    def test_add_and_lookup(self, trading_er):
        assert trading_er.entity("client").key == ("account_number",)
        assert trading_er.relationship("trade").attribute_names == (
            "date",
            "quantity",
            "trade_price",
        )

    def test_duplicate_entity(self, trading_er):
        with pytest.raises(ERModelError):
            trading_er.add_entity(Entity("client", [ERAttribute("x")]))

    def test_relationship_unknown_entity(self):
        er = ERSchema("s")
        er.add_entity(Entity("a", [ERAttribute("x")], key=["x"]))
        with pytest.raises(ERModelError):
            er.add_relationship(
                Relationship("r", [Participant("a"), Participant("ghost")])
            )

    def test_entity_relationship_name_collision(self):
        er = ERSchema("s")
        er.add_entity(Entity("a", [ERAttribute("x")], key=["x"]))
        er.add_entity(Entity("b", [ERAttribute("y")], key=["y"]))
        er.add_relationship(Relationship("r", [Participant("a"), Participant("b")]))
        with pytest.raises(ERModelError):
            er.add_entity(Entity("r", [ERAttribute("z")]))

    def test_contains(self, trading_er):
        assert "client" in trading_er
        assert "trade" in trading_er
        assert "ghost" not in trading_er


class TestAnnotationTargets:
    def test_targets_enumerated(self, trading_er):
        targets = set(trading_er.annotation_targets())
        assert ("client",) in targets
        assert ("client", "telephone") in targets
        assert ("trade",) in targets
        assert ("trade", "quantity") in targets

    def test_target_count(self, trading_er):
        # 2 entities + 7 entity attributes + 1 relationship + 3 rel attributes.
        assert len(list(trading_er.annotation_targets())) == 13

    def test_resolve_entity(self, trading_er):
        kind, obj = trading_er.resolve_target(("client",))
        assert kind == "entity" and obj.name == "client"

    def test_resolve_entity_attribute(self, trading_er):
        kind, obj = trading_er.resolve_target(("company_stock", "share_price"))
        assert kind == "entity_attribute" and obj.name == "share_price"

    def test_resolve_relationship(self, trading_er):
        kind, _ = trading_er.resolve_target(("trade",))
        assert kind == "relationship"

    def test_resolve_relationship_attribute(self, trading_er):
        kind, obj = trading_er.resolve_target(("trade", "quantity"))
        assert kind == "relationship_attribute" and obj.name == "quantity"

    def test_resolve_unknown(self, trading_er):
        with pytest.raises(ERModelError):
            trading_er.resolve_target(("ghost",))
        with pytest.raises(ERModelError):
            trading_er.resolve_target(("client", "ghost"))
        with pytest.raises(ERModelError):
            trading_er.resolve_target(("a", "b", "c"))


class TestERSerialization:
    def test_round_trip(self, trading_er):
        restored = ERSchema.from_dict(trading_er.to_dict())
        assert restored.to_dict() == trading_er.to_dict()

    def test_copy_independent(self, trading_er):
        copy = trading_er.copy()
        copy.entity("client").add_attribute(ERAttribute("email"))
        assert not trading_er.entity("client").has_attribute("email")
        assert copy.entity("client").has_attribute("email")
