"""Direct unit tests for the specification document generator."""

import pytest

from repro.core.specification import build_specification
from repro.core.terminology import QualityIndicatorSpec
from repro.core.views import (
    ApplicationView,
    IndicatorAnnotation,
    QualitySchema,
)
from repro.experiments.scenarios import trading_er_schema


@pytest.fixture
def minimal_schema():
    return QualitySchema(
        ApplicationView(trading_er_schema(), "narrative requirements"),
        [
            IndicatorAnnotation(
                ("company_stock", "share_price"),
                QualityIndicatorSpec("age", "FLOAT"),
                derived_from=("timeliness",),
            )
        ],
        integration_notes=["one decision"],
    )


class TestBuildSpecification:
    def test_minimal_document(self, minimal_schema):
        spec = build_specification(minimal_schema)
        assert "DATA QUALITY REQUIREMENTS SPECIFICATION: trading" in spec
        assert "Application requirements" in spec
        assert "narrative requirements" in spec
        assert "Integrated quality schema (Step 4)" in spec
        assert "Integration decisions" in spec
        assert "- one decision" in spec

    def test_no_session_no_log_section(self, minimal_schema):
        spec = build_specification(minimal_schema)
        assert "Design session log" not in spec

    def test_session_included(self, minimal_schema):
        from repro.core.methodology import DesignSession

        session = DesignSession("team X")
        session.record("step2", "decided something")
        spec = build_specification(minimal_schema, session=session)
        assert "Design session log" in spec
        assert "team X" in spec

    def test_component_views_rendered(self, minimal_schema):
        from repro.core.views import QualityView

        component = QualityView(minimal_schema.application_view)
        component.add(minimal_schema.annotations[0])
        schema_with_views = QualitySchema(
            minimal_schema.application_view,
            minimal_schema.annotations,
            component_views=[component],
        )
        spec = build_specification(schema_with_views)
        assert "Quality view 1 (Step 3)" in spec

    def test_untagged_owners_skipped_in_tag_section(self, minimal_schema):
        spec = build_specification(minimal_schema)
        tag_section = spec.split("Derived tag schemas")[1]
        assert "company_stock:" in tag_section
        assert "client:" not in tag_section

    def test_no_requirements_doc_no_section(self):
        schema = QualitySchema(
            ApplicationView(trading_er_schema()),
            [
                IndicatorAnnotation(
                    ("client",), QualityIndicatorSpec("source")
                )
            ],
        )
        spec = build_specification(schema)
        assert "Application requirements\n" not in spec

    def test_requirements_listing(self, minimal_schema):
        spec = build_specification(minimal_schema)
        assert (
            "company_stock.share_price must be tagged with age" in spec
        )
