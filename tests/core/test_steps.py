"""Unit tests for the four methodology steps."""

import pytest

from repro.core.steps import (
    Step1ApplicationView,
    Step2QualityParameters,
    Step3QualityIndicators,
    Step4ViewIntegration,
)
from repro.core.terminology import QualityIndicatorSpec
from repro.core.views import ApplicationView, ParameterView
from repro.er.model import Entity, ERAttribute, ERSchema
from repro.errors import ERValidationError, MethodologyError, StepOrderError


class TestStep1:
    def test_produces_application_view(self, trading_er):
        view = Step1ApplicationView().run(trading_er, "requirements text")
        assert isinstance(view, ApplicationView)
        assert view.requirements_doc == "requirements text"

    def test_validates(self):
        bad = ERSchema("bad")
        bad.add_entity(Entity("a", [ERAttribute("x")]))  # no key
        with pytest.raises(ERValidationError):
            Step1ApplicationView().run(bad)

    def test_keys_optional(self):
        loose = ERSchema("loose")
        loose.add_entity(Entity("a", [ERAttribute("x")]))
        view = Step1ApplicationView().run(loose, require_keys=False)
        assert view.name == "loose"


class TestStep2:
    @pytest.fixture
    def app_view(self, trading_er):
        return Step1ApplicationView().run(trading_er)

    def test_attaches_catalog_parameters(self, app_view):
        view = Step2QualityParameters().run(
            app_view,
            [(("company_stock", "share_price"), "timeliness", "why")],
        )
        assert len(view.annotations) == 1
        assert view.annotations[0].parameter.name == "timeliness"
        # Catalog-backed parameters carry the survey doc.
        assert view.annotations[0].parameter.doc

    def test_team_defined_parameter_allowed(self, app_view):
        view = Step2QualityParameters().run(
            app_view,
            [(("client",), "house_style_conformance", "internal norm")],
        )
        assert view.annotations[0].parameter.name == "house_style_conformance"

    def test_inspection_parameter(self, app_view):
        view = Step2QualityParameters().run(
            app_view, [(("trade",), "inspection", "verify trades")]
        )
        assert view.annotations[0].is_inspection

    def test_suggest(self):
        step = Step2QualityParameters()
        assert "timeliness" in step.suggest("current", "stale", "time")

    def test_invalid_target(self, app_view):
        with pytest.raises(Exception):
            Step2QualityParameters().run(
                app_view, [(("ghost",), "timeliness", "")]
            )


class TestStep3:
    @pytest.fixture
    def parameter_view(self, trading_er):
        app_view = Step1ApplicationView().run(trading_er)
        return Step2QualityParameters().run(
            app_view,
            [
                (("company_stock", "share_price"), "timeliness", "stale prices"),
                (("company_stock", "research_report"), "credibility", ""),
            ],
        )

    def test_auto_operationalization(self, parameter_view):
        view = Step3QualityIndicators().run(parameter_view)
        indicators = {a.indicator.name for a in view.annotations}
        # timeliness → age/creation_time/update_frequency; credibility → source/...
        assert "creation_time" in indicators or "age" in indicators
        assert "source" in indicators or "analyst_name" in indicators

    def test_traceability(self, parameter_view):
        view = Step3QualityIndicators().run(parameter_view)
        for annotation in view.annotations:
            assert annotation.derived_from

    def test_explicit_decision_wins(self, parameter_view):
        decisions = {
            (("company_stock", "share_price"), "timeliness"): [
                QualityIndicatorSpec("age", "FLOAT")
            ],
            (("company_stock", "research_report"), "credibility"): [
                QualityIndicatorSpec("analyst_name")
            ],
        }
        view = Step3QualityIndicators().run(
            parameter_view, decisions=decisions, auto=False
        )
        names = {a.indicator.name for a in view.annotations}
        assert names == {"age", "analyst_name"}

    def test_objective_parameter_remains(self, trading_er):
        # Paper: "if age had been defined as a quality parameter, and is
        # deemed objective, it can remain."
        app_view = Step1ApplicationView().run(trading_er)
        parameter_view = Step2QualityParameters().run(
            app_view, [(("company_stock", "share_price"), "age", "")]
        )
        view = Step3QualityIndicators().run(parameter_view, auto=False)
        assert [a.indicator.name for a in view.annotations] == ["age"]

    def test_unoperationalizable_raises(self, trading_er):
        app_view = Step1ApplicationView().run(trading_er)
        parameter_view = Step2QualityParameters().run(
            app_view, [(("client",), "vibes", "")]
        )
        with pytest.raises(MethodologyError):
            Step3QualityIndicators().run(parameter_view)

    def test_empty_parameter_view_rejected(self, trading_er):
        app_view = Step1ApplicationView().run(trading_er)
        empty = ParameterView(app_view)
        with pytest.raises(StepOrderError):
            Step3QualityIndicators().run(empty)

    def test_empty_decision_rejected(self, parameter_view):
        decisions = {(("company_stock", "share_price"), "timeliness"): []}
        with pytest.raises(MethodologyError):
            Step3QualityIndicators().run(parameter_view, decisions=decisions)

    def test_shared_indicator_merges_provenance(self, trading_er):
        app_view = Step1ApplicationView().run(trading_er)
        parameter_view = Step2QualityParameters().run(
            app_view,
            [
                (("client", "address"), "accuracy", ""),
                (("client", "address"), "credibility", ""),
            ],
        )
        decisions = {
            (("client", "address"), "accuracy"): [QualityIndicatorSpec("source")],
            (("client", "address"), "credibility"): [
                QualityIndicatorSpec("source")
            ],
        }
        view = Step3QualityIndicators().run(
            parameter_view, decisions=decisions, auto=False
        )
        assert len(view.annotations) == 1
        assert set(view.annotations[0].derived_from) == {
            "accuracy",
            "credibility",
        }


class TestStep4:
    def test_delegates_to_integration(self, trading_er):
        app_view = Step1ApplicationView().run(trading_er)
        parameter_view = Step2QualityParameters().run(
            app_view, [(("company_stock", "share_price"), "timeliness", "")]
        )
        quality_view = Step3QualityIndicators().run(parameter_view)
        schema = Step4ViewIntegration().run([quality_view])
        assert schema.annotations
        assert schema.integration_notes
