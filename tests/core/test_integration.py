"""Unit tests for Step 4: quality view integration."""

import pytest

from repro.core.integration import (
    DEFAULT_DERIVABILITY_RULES,
    DerivabilityRule,
    Refinement,
    integrate_views,
)
from repro.core.terminology import QualityIndicatorSpec
from repro.core.views import (
    ApplicationView,
    IndicatorAnnotation,
    QualityView,
)
from repro.errors import ViewIntegrationError


@pytest.fixture
def app_view(trading_er):
    return ApplicationView(trading_er)


def make_view(app_view, annotations):
    view = QualityView(app_view)
    for annotation in annotations:
        view.add(annotation)
    return view


class TestUnionDedup:
    def test_duplicate_annotations_merge(self, app_view):
        a = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("creation_time", "DATE"),
                    derived_from=("timeliness",),
                )
            ],
        )
        b = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("creation_time", "DATE"),
                    derived_from=("currency",),
                )
            ],
        )
        schema = integrate_views([a, b])
        assert len(schema.annotations) == 1
        assert set(schema.annotations[0].derived_from) == {
            "timeliness",
            "currency",
        }

    def test_domain_conflict_raises(self, app_view):
        a = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("client", "address"), QualityIndicatorSpec("age", "FLOAT")
                )
            ],
        )
        b = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("client", "address"), QualityIndicatorSpec("age", "STR")
                )
            ],
        )
        with pytest.raises(ViewIntegrationError):
            integrate_views([a, b])

    def test_no_views_rejected(self):
        with pytest.raises(ViewIntegrationError):
            integrate_views([])

    def test_different_application_views_rejected(self, trading_er):
        a = make_view(ApplicationView(trading_er), [])
        other_er = trading_er.copy()
        other_er.entity("client").add_attribute(
            __import__("repro.er.model", fromlist=["ERAttribute"]).ERAttribute(
                "email"
            )
        )
        b = make_view(ApplicationView(other_er), [])
        with pytest.raises(ViewIntegrationError):
            integrate_views([a, b])


class TestDerivability:
    def test_age_dropped_for_creation_time(self, app_view):
        # The paper's own example: one view has age, another creation time.
        a = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("age", "FLOAT"),
                    derived_from=("timeliness",),
                )
            ],
        )
        b = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("creation_time", "DATE"),
                    derived_from=("currency",),
                )
            ],
        )
        schema = integrate_views([a, b])
        names = {x.indicator.name for x in schema.annotations}
        assert names == {"creation_time"}
        # Provenance of the dropped indicator folded into the survivor.
        survivor = schema.annotations[0]
        assert "timeliness" in survivor.derived_from
        assert any("age" in note for note in schema.integration_notes)

    def test_age_alone_kept(self, app_view):
        a = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("age", "FLOAT"),
                )
            ],
        )
        schema = integrate_views([a])
        assert {x.indicator.name for x in schema.annotations} == {"age"}

    def test_derivability_is_per_target(self, app_view):
        # age on one target, creation_time on another: both kept.
        a = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("age", "FLOAT"),
                ),
                IndicatorAnnotation(
                    ("client", "address"),
                    QualityIndicatorSpec("creation_time", "DATE"),
                ),
            ],
        )
        schema = integrate_views([a])
        assert len(schema.annotations) == 2

    def test_custom_rule(self, app_view):
        rule = DerivabilityRule("price", "age", "synthetic test rule")
        a = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "research_report"),
                    QualityIndicatorSpec("price", "FLOAT"),
                ),
                IndicatorAnnotation(
                    ("company_stock", "research_report"),
                    QualityIndicatorSpec("age", "FLOAT"),
                ),
            ],
        )
        schema = integrate_views([a], rules=[rule])
        assert {x.indicator.name for x in schema.annotations} == {"age"}


class TestRefinement:
    def test_promote_indicator_to_attribute(self, app_view):
        # The paper's company-name example: a quality indicator enhancing
        # ticker interpretability becomes an application attribute.
        view = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "ticker_symbol"),
                    QualityIndicatorSpec("company_name"),
                    rationale="enhances interpretability of ticker symbol",
                )
            ],
        )
        schema = integrate_views(
            [view],
            refinements=[
                Refinement(
                    Refinement.PROMOTE,
                    "company_stock",
                    "company_name",
                    "company name is application data after all (Premise 1.1)",
                )
            ],
        )
        assert schema.er_schema.entity("company_stock").has_attribute(
            "company_name"
        )
        assert not schema.annotations
        # Original application view untouched (refinement copies).
        assert not app_view.er_schema.entity("company_stock").has_attribute(
            "company_name"
        )

    def test_promote_missing_indicator_raises(self, app_view):
        view = make_view(app_view, [])
        with pytest.raises(ViewIntegrationError):
            integrate_views(
                [view],
                refinements=[
                    Refinement(Refinement.PROMOTE, "company_stock", "ghost")
                ],
            )

    def test_demote_attribute_to_indicator(self, app_view):
        # The bank-teller direction: an application attribute becomes a
        # quality indicator for administration.
        view = make_view(app_view, [])
        schema = integrate_views(
            [view],
            refinements=[
                Refinement(
                    Refinement.DEMOTE,
                    "client",
                    "telephone",
                    "phone captured only for verification callbacks",
                )
            ],
        )
        assert not schema.er_schema.entity("client").has_attribute("telephone")
        demoted = [
            a for a in schema.annotations if a.indicator.name == "telephone"
        ]
        assert len(demoted) == 1
        assert demoted[0].target == ("client",)

    def test_demote_key_rejected(self, app_view):
        view = make_view(app_view, [])
        with pytest.raises(ViewIntegrationError):
            integrate_views(
                [view],
                refinements=[
                    Refinement(Refinement.DEMOTE, "client", "account_number")
                ],
            )

    def test_unknown_kind(self):
        with pytest.raises(ViewIntegrationError):
            Refinement("sideways", "a", "b")

    def test_notes_record_decisions(self, app_view):
        view = make_view(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "ticker_symbol"),
                    QualityIndicatorSpec("company_name"),
                )
            ],
        )
        schema = integrate_views(
            [view],
            refinements=[
                Refinement(Refinement.PROMOTE, "company_stock", "company_name")
            ],
        )
        assert any("promote" in note for note in schema.integration_notes)
