"""Unit tests for methodology-artifact serialization."""

import pytest

from repro.core.serialization import (
    load_quality_schema,
    parameter_view_from_dict,
    parameter_view_to_dict,
    quality_schema_from_dict,
    quality_schema_to_dict,
    quality_view_from_dict,
    quality_view_to_dict,
    save_quality_schema,
)
from repro.errors import MethodologyError
from repro.experiments.scenarios import run_trading_methodology


@pytest.fixture(scope="module")
def modeling():
    return run_trading_methodology()


class TestParameterViewRoundTrip:
    def test_round_trip(self, modeling):
        view = modeling.parameter_views[0]
        restored = parameter_view_from_dict(parameter_view_to_dict(view))
        assert len(restored.annotations) == len(view.annotations)
        assert restored.render() == view.render()

    def test_kind_checked(self, modeling):
        data = parameter_view_to_dict(modeling.parameter_views[0])
        data["kind"] = "bogus"
        with pytest.raises(MethodologyError):
            parameter_view_from_dict(data)


class TestQualityViewRoundTrip:
    def test_round_trip(self, modeling):
        view = modeling.quality_views[0]
        restored = quality_view_from_dict(quality_view_to_dict(view))
        assert restored.render() == view.render()
        # Provenance survives.
        for original, copy in zip(view.annotations, restored.annotations):
            assert copy.derived_from == original.derived_from
            assert copy.mandatory == original.mandatory

    def test_kind_checked(self, modeling):
        data = quality_view_to_dict(modeling.quality_views[0])
        data["kind"] = "bogus"
        with pytest.raises(MethodologyError):
            quality_view_from_dict(data)


class TestQualitySchemaRoundTrip:
    def test_round_trip(self, modeling):
        schema = modeling.quality_schema
        restored = quality_schema_from_dict(quality_schema_to_dict(schema))
        assert restored.render() == schema.render()
        assert restored.integration_notes == schema.integration_notes
        assert len(restored.requirements()) == len(schema.requirements())

    def test_tag_schemas_survive_transport(self, modeling):
        """The point of transport: the receiving organization derives
        the same operational tag schemas."""
        schema = modeling.quality_schema
        restored = quality_schema_from_dict(quality_schema_to_dict(schema))
        for owner in ("client", "company_stock", "trade"):
            assert restored.tag_schema_for(owner) == schema.tag_schema_for(
                owner
            )

    def test_file_round_trip(self, modeling, tmp_path):
        path = save_quality_schema(
            modeling.quality_schema, tmp_path / "schema.json"
        )
        restored = load_quality_schema(path)
        assert restored.name == modeling.quality_schema.name
        assert restored.render() == modeling.quality_schema.render()

    def test_receiving_org_can_instantiate(self, modeling, tmp_path):
        """Transport → live database in the receiving organization."""
        from repro.tagging.catalog import QualityDatabase

        path = save_quality_schema(
            modeling.quality_schema, tmp_path / "schema.json"
        )
        restored = load_quality_schema(path)
        database = QualityDatabase.from_quality_schema(restored)
        assert set(database.relation_names) == {
            "client",
            "company_stock",
            "trade",
        }

    def test_kind_checked(self, modeling):
        data = quality_schema_to_dict(modeling.quality_schema)
        data["kind"] = "bogus"
        with pytest.raises(MethodologyError):
            quality_schema_from_dict(data)
