"""Unit tests for the executable premises (§2)."""

import pytest

from repro.core.mapping import UserQualityStandard, timeliness_from_age
from repro.core.premises import (
    classify_attribute_role,
    heterogeneity_profile,
    heterogeneity_spread,
    non_orthogonality_report,
    single_user_variation_report,
    user_standards_report,
)
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorDefinition, IndicatorValue, TagSchema
from repro.tagging.relation import TaggedRelation
from repro.relational.schema import schema


class TestPremise11Classification:
    def test_bank_teller_example(self):
        # Premise 1.1's example: the teller who performs a transaction.
        assert (
            classify_attribute_role(
                "teller_name", "the bank teller who performs a transaction"
            )
            == "quality_indicator"
        )

    def test_manufacturing_signals(self):
        assert classify_attribute_role("creation_date") == "quality_indicator"
        assert classify_attribute_role("collection_device") == "quality_indicator"
        assert classify_attribute_role("data_source") == "quality_indicator"

    def test_application_attributes(self):
        assert classify_attribute_role("share_price") == "application"
        assert classify_attribute_role("address") == "application"
        assert classify_attribute_role("employees") == "application"


class TestPremise12NonOrthogonality:
    def test_timeliness_volatility_pair(self):
        # Premise 1.2's example pair.
        pairs = non_orthogonality_report(["timeliness", "volatility"])
        assert ("timeliness", "volatility") in pairs

    def test_unrelated_parameters(self):
        pairs = non_orthogonality_report(["cost", "completeness"])
        assert pairs == []

    def test_unknown_names_skipped(self):
        assert non_orthogonality_report(["made_up_dimension"]) == []

    def test_pairs_deduplicated_and_sorted(self):
        pairs = non_orthogonality_report(
            ["timeliness", "volatility", "currency"]
        )
        assert pairs == sorted(set(pairs))


def _relation_with_sources(name, sources):
    ts = TagSchema(
        indicators=[IndicatorDefinition("source")],
        allowed={"v": ["source"]},
    )
    rel = TaggedRelation(schema(name, [("k", "STR"), ("v", "INT")]), ts)
    for i, source in enumerate(sources):
        tags = [IndicatorValue("source", source)] if source else []
        rel.insert({"k": str(i), "v": QualityCell(i, tags)})
    return rel


def _trust_metric(cell):
    source = cell.tag_value("source")
    if source is None:
        return None
    return 1.0 if source == "trusted" else 0.0


class TestPremise13Heterogeneity:
    def test_profile_shows_hierarchy(self):
        relations = {
            "alumni": _relation_with_sources(
                "alumni", ["trusted", "untrusted"]
            ),
            "student": _relation_with_sources(
                "student", ["trusted", "trusted"]
            ),
        }
        profile = heterogeneity_profile(relations, _trust_metric, "trust")
        assert profile["relations"]["student"]["overall"] == 1.0
        assert profile["relations"]["alumni"]["overall"] == 0.5
        assert profile["overall"] == 0.75

    def test_unassessable_cells_skipped(self):
        relations = {"t": _relation_with_sources("t", ["trusted", None])}
        profile = heterogeneity_profile(relations, _trust_metric)
        assert profile["relations"]["t"]["columns"]["v"] == 1.0
        assert profile["relations"]["t"]["columns"]["k"] is None

    def test_spread(self):
        relations = {
            "good": _relation_with_sources("good", ["trusted"] * 4),
            "bad": _relation_with_sources("bad", ["untrusted"] * 4),
        }
        profile = heterogeneity_profile(relations, _trust_metric)
        spread = heterogeneity_spread(profile)
        assert spread["relation_spread"] == 1.0

    def test_uniform_has_zero_spread(self):
        relations = {
            "a": _relation_with_sources("a", ["trusted"] * 3),
            "b": _relation_with_sources("b", ["trusted"] * 3),
        }
        spread = heterogeneity_spread(
            heterogeneity_profile(relations, _trust_metric)
        )
        assert spread["relation_spread"] == 0.0


def _age_relation():
    ts = TagSchema(
        indicators=[IndicatorDefinition("age", "FLOAT")],
        allowed={"a": ["age"], "b": ["age"]},
    )
    rel = TaggedRelation(schema("t", [("a", "INT"), ("b", "INT")]), ts)
    for age_a, age_b in [(1.0, 1.0), (5.0, 1.0), (20.0, 1.0)]:
        rel.insert(
            {
                "a": QualityCell(1, [IndicatorValue("age", age_a)]),
                "b": QualityCell(1, [IndicatorValue("age", age_b)]),
            }
        )
    return rel


class TestPremises2xAnd3:
    def test_user_standards_report(self):
        rel = _age_relation()
        loose = UserQualityStandard(
            "loose",
            mappings=[timeliness_from_age(10.0)],
            acceptance={"timeliness": lambda t: t},
        )
        strict = UserQualityStandard(
            "strict",
            mappings=[timeliness_from_age(2.0)],
            acceptance={"timeliness": lambda t: t},
        )
        report = user_standards_report([loose, strict], rel, "a")
        rates = {entry["user"]: entry["acceptance_rate"] for entry in report}
        assert rates["loose"] > rates["strict"]

    def test_single_user_variation(self):
        rel = _age_relation()
        same_user_strict = UserQualityStandard(
            "analyst",
            mappings=[timeliness_from_age(2.0)],
            acceptance={"timeliness": lambda t: t},
        )
        same_user_loose = UserQualityStandard(
            "analyst",
            mappings=[timeliness_from_age(30.0)],
            acceptance={"timeliness": lambda t: t},
        )
        # Premise 3: the same user is stricter about column a than b.
        report = single_user_variation_report(
            {"a": same_user_strict, "b": same_user_loose}, rel
        )
        assert report["b"] == 1.0
        assert report["a"] < 1.0
