"""Unit tests for the Appendix-A candidate attribute catalog."""

import pytest

from repro.core.catalog import (
    BOUNDARY_DATA,
    BOUNDARY_SERVICE,
    BOUNDARY_SYSTEM,
    BOUNDARY_USER,
    CandidateAttribute,
    CandidateCatalog,
    default_catalog,
)
from repro.core.terminology import AttributeKind
from repro.errors import CatalogError


@pytest.fixture
def catalog():
    return default_catalog()


class TestCatalogContent:
    def test_core_dimensions_present(self, catalog):
        # §4: "Certain characteristics seem universally important".
        for name in ("completeness", "timeliness", "accuracy", "interpretability"):
            assert name in catalog

    def test_boundary_examples_from_section4(self, catalog):
        assert catalog.get("resolution_of_graphics").boundary == BOUNDARY_SYSTEM
        assert (
            catalog.get("clear_data_responsibility").boundary == BOUNDARY_SERVICE
        )
        assert catalog.get("past_experience").boundary == BOUNDARY_USER
        assert catalog.get("accuracy").boundary == BOUNDARY_DATA

    def test_size_is_survey_like(self, catalog):
        assert len(catalog) >= 35

    def test_both_kinds_present(self, catalog):
        assert catalog.parameters()
        assert catalog.indicators()
        assert catalog.get("timeliness").kind is AttributeKind.PARAMETER
        assert catalog.get("creation_time").kind is AttributeKind.INDICATOR

    def test_categories(self, catalog):
        assert "time" in catalog.categories
        assert all(catalog.by_category(c) for c in catalog.categories)


class TestCatalogQueries:
    def test_get_unknown(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get("ghost")

    def test_related_symmetric(self, catalog):
        # Premise 1.2's example pair: timeliness and volatility.
        timeliness_related = {a.name for a in catalog.related_to("timeliness")}
        assert "volatility" in timeliness_related
        volatility_related = {a.name for a in catalog.related_to("volatility")}
        assert "timeliness" in volatility_related

    def test_operationalizations_timeliness(self, catalog):
        specs = catalog.operationalizations_for("timeliness")
        names = {s.name for s in specs}
        assert "age" in names
        assert "creation_time" in names

    def test_operationalizations_credibility(self, catalog):
        names = {s.name for s in catalog.operationalizations_for("credibility")}
        assert "source" in names

    def test_keyword_search(self, catalog):
        hits = {a.name for a in catalog.suggest_for_keywords("manufactur")}
        assert "source" in hits

    def test_by_boundary_validates(self, catalog):
        with pytest.raises(CatalogError):
            catalog.by_boundary("cosmic")


class TestCatalogConstruction:
    def test_duplicate_rejected(self):
        entry = CandidateAttribute("x", AttributeKind.PARAMETER, "cat")
        with pytest.raises(CatalogError):
            CandidateCatalog([entry, entry])

    def test_invalid_boundary(self):
        with pytest.raises(CatalogError):
            CandidateAttribute(
                "x", AttributeKind.PARAMETER, "cat", boundary="nowhere"
            )

    def test_as_parameter_and_indicator(self, catalog):
        entry = catalog.get("timeliness")
        assert entry.as_parameter().name == "timeliness"
        assert entry.as_indicator("FLOAT").domain.name == "FLOAT"
