"""Unit tests for parameter mappings and user quality standards."""

import datetime as dt

import pytest

from repro.core.mapping import (
    ParameterMapping,
    UserQualityStandard,
    compare_standards,
    credibility_from_source,
    timeliness_from_age,
    timeliness_from_creation_time,
)
from repro.errors import AssessmentError, MethodologyError
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue


@pytest.fixture
def wsj_cell():
    return QualityCell(
        101.5, [IndicatorValue("source", "Wall Street Journal")]
    )


class TestParameterMapping:
    def test_wsj_example(self, wsj_cell):
        # §1.3: "because the source is Wall Street Journal, an investor
        # may conclude that data credibility is high."
        mapping = credibility_from_source({"Wall Street Journal": 0.95})
        assert mapping.evaluate(wsj_cell) == 0.95

    def test_unknown_source_default(self, wsj_cell):
        mapping = credibility_from_source({"Other": 0.2}, default=0.1)
        assert mapping.evaluate(wsj_cell) == 0.1

    def test_missing_tag_returns_none(self):
        mapping = credibility_from_source({"X": 1.0})
        assert mapping.evaluate(QualityCell(1)) is None

    def test_timeliness_from_age(self):
        mapping = timeliness_from_age(max_age_days=10)
        fresh = QualityCell(1, [IndicatorValue("age", 3.0)])
        stale = QualityCell(1, [IndicatorValue("age", 30.0)])
        assert mapping.evaluate(fresh) is True
        assert mapping.evaluate(stale) is False

    def test_timeliness_from_creation_time_uses_context(self):
        mapping = timeliness_from_creation_time(max_age_days=10)
        cell = QualityCell(
            1, [IndicatorValue("creation_time", dt.date(1991, 10, 1))]
        )
        assert mapping.evaluate(cell, {"today": dt.date(1991, 10, 5)}) is True
        assert mapping.evaluate(cell, {"today": dt.date(1991, 12, 1)}) is False
        assert mapping.evaluate(cell, {}) is None

    def test_requires_parameter_name(self):
        with pytest.raises(MethodologyError):
            ParameterMapping("", lambda tags, ctx: 1)


class TestUserQualityStandard:
    def _investor(self):
        # Premise 2.2: ten-minute delay is timely for a loose investor.
        return UserQualityStandard(
            "investor",
            mappings=[timeliness_from_age(10 / (24 * 60))],
            acceptance={"timeliness": lambda timely: timely},
        )

    def _trader(self):
        # The real-time trader's standard: one minute.
        return UserQualityStandard(
            "trader",
            mappings=[timeliness_from_age(1 / (24 * 60))],
            acceptance={"timeliness": lambda timely: timely},
        )

    def test_different_standards_different_verdicts(self):
        five_minutes = QualityCell(
            100.0, [IndicatorValue("age", 5 / (24 * 60))]
        )
        assert self._investor().accepts_cell(five_minutes)
        assert not self._trader().accepts_cell(five_minutes)

    def test_undetermined_fails_closed(self):
        untagged = QualityCell(100.0)
        assert not self._investor().accepts_cell(untagged)

    def test_duplicate_mapping_rejected(self):
        standard = self._investor()
        with pytest.raises(MethodologyError):
            standard.add_mapping(timeliness_from_age(1))

    def test_acceptance_requires_mapping(self):
        with pytest.raises(MethodologyError):
            UserQualityStandard(
                "u", acceptance={"timeliness": lambda v: True}
            )
        standard = self._investor()
        with pytest.raises(MethodologyError):
            standard.set_acceptance("ghost", lambda v: True)

    def test_evaluate_cell(self):
        standard = self._investor()
        values = standard.evaluate_cell(
            QualityCell(1, [IndicatorValue("age", 0.001)])
        )
        assert values == {"timeliness": True}

    def test_mapping_lookup(self):
        standard = self._investor()
        assert standard.mapping("timeliness").parameter == "timeliness"
        with pytest.raises(AssessmentError):
            standard.mapping("ghost")


class TestStandardsOverRelations:
    @pytest.fixture
    def ticks(self):
        from repro.experiments.scenarios import trading_ticks

        return trading_ticks(n_ticks=200, seed=5)

    def test_acceptance_rates_ordered(self, ticks):
        investor = UserQualityStandard(
            "investor",
            mappings=[timeliness_from_age(10 / (24 * 60))],
            acceptance={"timeliness": lambda t: t},
        )
        trader = UserQualityStandard(
            "trader",
            mappings=[timeliness_from_age(1 / (24 * 60))],
            acceptance={"timeliness": lambda t: t},
        )
        rates = compare_standards([investor, trader], ticks, "price")
        # Premise 2.2's shape: the looser standard accepts more.
        assert rates["investor"] > rates["trader"]
        assert 0.0 < rates["trader"] < rates["investor"] < 1.0

    def test_filter_relation(self, ticks):
        investor = UserQualityStandard(
            "investor",
            mappings=[timeliness_from_age(10 / (24 * 60))],
            acceptance={"timeliness": lambda t: t},
        )
        kept = investor.filter_relation(ticks, "price")
        assert 0 < len(kept) < len(ticks)
        assert len(kept) == round(
            investor.acceptance_rate(ticks, "price") * len(ticks)
        )

    def test_empty_relation_rate(self, ticks):
        empty = ticks.empty_like()
        investor = UserQualityStandard(
            "investor", mappings=[timeliness_from_age(1)]
        )
        assert investor.acceptance_rate(empty, "price") == 0.0
