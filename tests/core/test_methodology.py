"""Unit tests for the end-to-end methodology pipeline."""

import pytest

from repro.core.methodology import DataQualityModeling, DesignSession
from repro.errors import StepOrderError
from repro.experiments.scenarios import (
    TRADING_PARAMETER_REQUESTS,
    run_trading_methodology,
    trading_er_schema,
    trading_indicator_decisions,
)


class TestDesignSession:
    def test_records_numbered(self):
        session = DesignSession("team A")
        session.record("step1", "did something", "detail")
        session.record("step2", "did more")
        assert [d.sequence for d in session.decisions] == [1, 2]
        text = session.render()
        assert "team A" in text
        assert "[step1] did something — detail" in text


class TestPipelineOrdering:
    def test_step2_requires_step1(self):
        modeling = DataQualityModeling()
        with pytest.raises(StepOrderError):
            modeling.step2(requests=[])

    def test_step4_requires_views(self):
        modeling = DataQualityModeling()
        with pytest.raises(StepOrderError):
            modeling.step4([])

    def test_specification_requires_step4(self):
        modeling = DataQualityModeling()
        with pytest.raises(StepOrderError):
            modeling.specification()


class TestTradingPipeline:
    def test_full_run_produces_all_artifacts(self):
        modeling = run_trading_methodology()
        assert modeling.application_view is not None
        assert len(modeling.parameter_views) == 1
        assert len(modeling.quality_views) == 1
        assert modeling.quality_schema is not None

    def test_parameter_view_matches_figure4(self):
        modeling = run_trading_methodology()
        text = modeling.parameter_views[0].render()
        assert "( timeliness )" in text
        assert "( credibility )" in text
        assert "( cost )" in text
        assert "(/ inspection )" in text

    def test_quality_view_matches_figure5(self):
        modeling = run_trading_methodology()
        text = modeling.quality_views[0].render()
        assert "[. age .]" in text
        assert "[. analyst_name .]" in text
        assert "[. media .]" in text
        assert "[. collection_method .]" in text
        assert "[. inspection .]" in text

    def test_session_log_covers_all_steps(self):
        modeling = run_trading_methodology()
        steps = {d.step for d in modeling.session.decisions}
        assert steps == {"step1", "step2", "step3", "step4"}

    def test_run_all_one_shot(self):
        modeling = DataQualityModeling()
        schema = modeling.run_all(
            trading_er_schema(),
            "requirements",
            TRADING_PARAMETER_REQUESTS,
            indicator_decisions=trading_indicator_decisions(),
        )
        assert schema.annotations
        assert modeling.quality_schema is schema

    def test_deterministic(self):
        a = run_trading_methodology().quality_schema.render()
        b = run_trading_methodology().quality_schema.render()
        assert a == b


class TestSpecificationDocument:
    def test_contains_all_sections(self):
        modeling = run_trading_methodology()
        spec = modeling.specification()
        assert "DATA QUALITY REQUIREMENTS SPECIFICATION: trading" in spec
        assert "Application view (Step 1)" in spec
        assert "Parameter view 1 (Step 2)" in spec
        assert "Quality view 1 (Step 3)" in spec
        assert "Integrated quality schema (Step 4)" in spec
        assert "Data quality requirements" in spec
        assert "Derived tag schemas" in spec
        assert "Design session log" in spec

    def test_requirements_traceable(self):
        spec = run_trading_methodology().specification()
        assert "operationalizes timeliness" in spec

    def test_tag_schema_section(self):
        spec = run_trading_methodology().specification()
        assert "share_price — required: age" in spec
