"""Unit tests for the methodology's view artifacts."""

import pytest

from repro.core.terminology import QualityIndicatorSpec, QualityParameter
from repro.core.views import (
    ApplicationView,
    INSPECTION_PARAMETER,
    IndicatorAnnotation,
    ParameterAnnotation,
    ParameterView,
    QualitySchema,
    QualityView,
)
from repro.errors import MethodologyError


@pytest.fixture
def app_view(trading_er):
    return ApplicationView(trading_er, "trading requirements")


class TestApplicationView:
    def test_render_is_figure3_style(self, app_view):
        text = app_view.render(title="Figure 3")
        assert text.startswith("Figure 3")
        assert "company_stock" in text


class TestParameterView:
    def test_add_and_query(self, app_view):
        view = ParameterView(app_view)
        view.add(
            ParameterAnnotation(
                ("company_stock", "share_price"),
                QualityParameter("timeliness"),
                "prices go stale",
            )
        )
        params = view.parameters_at(("company_stock", "share_price"))
        assert [p.name for p in params] == ["timeliness"]

    def test_invalid_target_rejected(self, app_view):
        view = ParameterView(app_view)
        with pytest.raises(Exception):
            view.add(
                ParameterAnnotation(("ghost",), QualityParameter("timeliness"))
            )

    def test_duplicate_rejected(self, app_view):
        view = ParameterView(app_view)
        annotation = ParameterAnnotation(
            ("client",), QualityParameter("completeness")
        )
        view.add(annotation)
        with pytest.raises(MethodologyError):
            view.add(
                ParameterAnnotation(
                    ("client",), QualityParameter("completeness")
                )
            )

    def test_all_parameters_distinct(self, app_view):
        view = ParameterView(app_view)
        view.add(ParameterAnnotation(("client",), QualityParameter("accuracy")))
        view.add(
            ParameterAnnotation(
                ("client", "address"), QualityParameter("accuracy")
            )
        )
        assert len(view.all_parameters()) == 1

    def test_inspection_renders_specially(self, app_view):
        view = ParameterView(app_view)
        view.add(ParameterAnnotation(("trade",), INSPECTION_PARAMETER))
        text = view.render()
        assert "(/ inspection )" in text

    def test_cloud_markers(self, app_view):
        view = ParameterView(app_view)
        view.add(
            ParameterAnnotation(
                ("company_stock", "share_price"), QualityParameter("timeliness")
            )
        )
        assert "( timeliness )" in view.render()


class TestQualityView:
    def test_indicators_render_dotted(self, app_view):
        view = QualityView(app_view)
        view.add(
            IndicatorAnnotation(
                ("company_stock", "share_price"),
                QualityIndicatorSpec("age", "FLOAT"),
                derived_from=("timeliness",),
            )
        )
        assert "[. age .]" in view.render()

    def test_requirements_induced(self, app_view):
        view = QualityView(app_view)
        view.add(
            IndicatorAnnotation(
                ("client", "telephone"),
                QualityIndicatorSpec("collection_method"),
                derived_from=("accuracy",),
            )
        )
        requirements = view.requirements()
        assert len(requirements) == 1
        assert "operationalizes accuracy" in requirements[0].describe()

    def test_duplicate_rejected(self, app_view):
        view = QualityView(app_view)
        annotation = IndicatorAnnotation(
            ("client",), QualityIndicatorSpec("source")
        )
        view.add(annotation)
        with pytest.raises(MethodologyError):
            view.add(
                IndicatorAnnotation(("client",), QualityIndicatorSpec("source"))
            )


class TestQualitySchema:
    @pytest.fixture
    def schema_with_annotations(self, app_view):
        return QualitySchema(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("creation_time", "DATE"),
                    derived_from=("timeliness",),
                ),
                IndicatorAnnotation(
                    ("company_stock", "research_report"),
                    QualityIndicatorSpec("analyst_name"),
                    derived_from=("credibility",),
                    mandatory=False,
                ),
                IndicatorAnnotation(
                    ("company_stock",),
                    QualityIndicatorSpec("source"),
                    rationale="entity-level provenance",
                ),
            ],
        )

    def test_tag_schema_attribute_level(self, schema_with_annotations):
        tag_schema = schema_with_annotations.tag_schema_for("company_stock")
        assert "creation_time" in tag_schema.required_for("share_price")
        assert "analyst_name" in tag_schema.allowed_for("research_report")
        assert "analyst_name" not in tag_schema.required_for("research_report")

    def test_owner_level_annotation_covers_all_columns(
        self, schema_with_annotations
    ):
        tag_schema = schema_with_annotations.tag_schema_for("company_stock")
        for column in ("ticker_symbol", "share_price", "research_report"):
            assert "source" in tag_schema.required_for(column)

    def test_tag_schema_for_unannotated_owner(self, schema_with_annotations):
        tag_schema = schema_with_annotations.tag_schema_for("client")
        assert tag_schema.tagged_columns == ()

    def test_requirements(self, schema_with_annotations):
        assert len(schema_with_annotations.requirements()) == 3

    def test_all_indicators_distinct(self, schema_with_annotations):
        names = {i.name for i in schema_with_annotations.all_indicators()}
        assert names == {"creation_time", "analyst_name", "source"}

    def test_conflicting_definitions_rejected(self, app_view):
        quality_schema = QualitySchema(
            app_view,
            [
                IndicatorAnnotation(
                    ("company_stock", "share_price"),
                    QualityIndicatorSpec("age", "FLOAT"),
                ),
                IndicatorAnnotation(
                    ("company_stock", "research_report"),
                    QualityIndicatorSpec("age", "STR"),
                ),
            ],
        )
        with pytest.raises(MethodologyError):
            quality_schema.tag_schema_for("company_stock")
