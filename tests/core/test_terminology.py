"""Unit tests for the §1.3 terminology layer."""

import pytest

from repro.core.terminology import (
    AttributeKind,
    QualityIndicatorSpec,
    QualityParameter,
    QualityRequirement,
)
from repro.errors import MethodologyError
from repro.tagging.indicators import IndicatorDefinition


class TestQualityParameter:
    def test_kind_subjective(self):
        assert QualityParameter("timeliness").kind is AttributeKind.PARAMETER

    def test_requires_name(self):
        with pytest.raises(MethodologyError):
            QualityParameter("")

    def test_equality_by_name(self):
        assert QualityParameter("a") == QualityParameter("a")
        assert QualityParameter("a") != QualityParameter("b")

    def test_hashable(self):
        assert len({QualityParameter("a"), QualityParameter("a")}) == 1


class TestQualityIndicatorSpec:
    def test_kind_objective(self):
        assert QualityIndicatorSpec("age").kind is AttributeKind.INDICATOR

    def test_domain_resolution(self):
        spec = QualityIndicatorSpec("age", "FLOAT")
        assert spec.domain.name == "FLOAT"

    def test_to_definition(self):
        spec = QualityIndicatorSpec("source", "STR", doc="who made it")
        definition = spec.to_definition()
        assert isinstance(definition, IndicatorDefinition)
        assert definition.name == "source"
        assert definition.doc == "who made it"

    def test_equality(self):
        assert QualityIndicatorSpec("age", "FLOAT") == QualityIndicatorSpec(
            "age", "FLOAT"
        )
        assert QualityIndicatorSpec("age", "FLOAT") != QualityIndicatorSpec(
            "age", "INT"
        )


class TestQualityRequirement:
    def test_describe_mandatory(self):
        requirement = QualityRequirement(
            ("company_stock", "share_price"),
            QualityIndicatorSpec("age", "FLOAT"),
            rationale="operationalizes timeliness",
        )
        text = requirement.describe()
        assert "company_stock.share_price must be tagged with age" in text
        assert "operationalizes timeliness" in text

    def test_describe_optional(self):
        requirement = QualityRequirement(
            ("client",), QualityIndicatorSpec("source"), mandatory=False
        )
        assert "may be tagged" in requirement.describe()

    def test_equality_ignores_rationale(self):
        a = QualityRequirement(("e",), QualityIndicatorSpec("s"), "why A")
        b = QualityRequirement(("e",), QualityIndicatorSpec("s"), "why B")
        assert a == b
