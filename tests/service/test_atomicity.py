"""Regression tests for the concurrency bugfixes.

Each test here fails on the pre-service code (plain ``+= 1`` version
bumps, unlocked ``OrderedDict`` plan-cache mutation, raise-on-busy
transaction manager) when run under threads.  ``sys.setswitchinterval``
is dropped to force frequent preemption so the lost-update windows are
actually hit within a few thousand iterations.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager

import pytest

from repro.errors import SchemaError, TransactionError
from repro.relational.catalog import Database
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema, schema
from repro.sql.plancache import PlanCache
from repro.tagging.indicators import IndicatorDefinition, TagSchema
from repro.tagging.relation import TaggedRelation

THREADS = 8
PER_THREAD = 400


@contextmanager
def aggressive_preemption():
    """Force thread switches every ~10µs so races actually interleave."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def run_threads(target, count=THREADS):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_relation_version_and_rows_update_atomically():
    """Concurrent inserts and deletes must lose no row and no version bump.

    ``delete`` is a read-rebuild-assign over ``(_rows, _version)``: it
    filters the row list, assigns the rebuilt list, and bumps the
    version.  Unlocked, an insert landing *during* the rebuild appends
    to the list the delete is about to throw away — the inserted row
    silently vanishes, and the version/row bookkeeping diverges from
    the mutations actually applied.
    """
    for trial in range(4):
        relation = Relation(
            RelationSchema("r", [Column("a", "INT"), Column("keep", "INT")])
        )
        base = relation.version
        writers_done = threading.Event()
        delete_calls = [0]

        def worker(thread_index):
            if thread_index == 0:
                # deleter runs for the writers' whole lifetime, so every
                # rebuild overlaps in-flight inserts
                while not writers_done.is_set():
                    relation.delete(lambda r: r["keep"] == 0)
                    delete_calls[0] += 1
            else:
                for i in range(PER_THREAD):
                    relation.insert({"a": i, "keep": 1})
                    relation.insert({"a": i, "keep": 0})

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(THREADS)
        ]
        with aggressive_preemption():
            for thread in threads:
                thread.start()
            for thread in threads[1:]:
                thread.join()
            writers_done.set()
            threads[0].join()

        relation.delete(lambda r: r["keep"] == 0)
        delete_calls[0] += 1
        payload = (THREADS - 1) * PER_THREAD
        # no insert was lost to a delete's rebuild
        assert len(relation) == payload, f"trial {trial} lost rows"
        # every mutation bumped the version exactly once: one bump per
        # insert, one per delete call (delete routes the rebuild through
        # _replace_rows)
        inserts = 2 * payload
        assert relation.version == base + inserts + delete_calls[0]


def test_tagged_relation_version_and_rows_update_atomically():
    tag_schema = TagSchema([IndicatorDefinition("source")], allowed={})
    relation = TaggedRelation(
        RelationSchema("r", [Column("a", "INT"), Column("keep", "INT")]),
        tag_schema,
    )

    def worker(thread_index):
        if thread_index == 0:
            for _ in range(PER_THREAD // 4):
                relation.delete(lambda r: r.value("keep") == 0)
        else:
            for i in range(PER_THREAD):
                relation.insert({"a": i, "keep": 1})
                relation.insert({"a": i, "keep": 0})

    with aggressive_preemption():
        run_threads(worker)

    relation.delete(lambda r: r.value("keep") == 0)
    assert len(relation) == (THREADS - 1) * PER_THREAD


def test_concurrent_create_of_same_name_exactly_one_wins():
    """The create-relation check-then-act must be atomic.

    Unlocked, two sessions racing to create the same name both pass the
    membership check (constructing and partitioning the relation
    between check and assignment is a wide preemption window), both
    "succeed", one silently overwrites the other, and the catalog
    version double-bumps for a single surviving relation.
    """
    from repro.relational import hash_partitions

    for round_index in range(300):
        database = Database("races")
        barrier = threading.Barrier(2)
        outcomes: list[str] = []

        def creator(thread_index):
            barrier.wait()
            try:
                database.create_relation(
                    schema("dup", [("a", "INT")]),
                    enforce_key=False,
                    partition_by=hash_partitions("a", 16),
                )
                outcomes.append("created")
            except SchemaError:
                outcomes.append("duplicate")

        with aggressive_preemption():
            run_threads(creator, count=2)

        assert sorted(outcomes) == ["created", "duplicate"], (
            f"round {round_index}: both creators succeeded"
        )
        assert database.catalog_version == 1
        assert database.relation_names == ("dup",)


def test_catalog_version_tracks_concurrent_create_drop_exactly():
    """T threads creating + dropping distinct relations must land on
    exactly one catalog-version bump per schema change."""
    database = Database("races")
    creates_per_thread = 40

    def creator(thread_index):
        for i in range(creates_per_thread):
            name = f"rel_{thread_index}_{i}"
            database.create_relation(
                schema(name, [("a", "INT")]), enforce_key=False
            )
            if i % 2:
                database.drop_relation(name)

    with aggressive_preemption():
        run_threads(creator)

    total = THREADS * creates_per_thread
    dropped = THREADS * (creates_per_thread // 2)
    assert len(database.relation_names) == total - dropped
    assert database.catalog_version == total + dropped


def test_plan_cache_concurrent_lookup_store_is_safe():
    """Hammer one small PlanCache from many threads: no exceptions, and
    the hit/miss counters add up to exactly the lookups performed.

    On the unlocked cache, concurrent ``move_to_end``/``popitem`` and
    ``setdefault`` corrupt the OrderedDict (KeyError/RuntimeError) and
    the ``+= 1`` counters under-count.
    """
    relation = Relation(
        RelationSchema("t", [Column("a", "INT"), Column("b", "STR")])
    )
    for i in range(10):
        relation.insert({"a": i, "b": f"x{i}"})
    cache = PlanCache(max_statements=4)  # small: eviction is exercised
    statements = [
        f"SELECT a FROM t WHERE a = {i} ORDER BY a" for i in range(12)
    ]
    # Enough churn that an unlocked cache's move_to_end/eviction window
    # is hit: a concurrent eviction between .get(sql) and
    # .move_to_end(sql) raises KeyError on the pre-lock code.
    lookups_per_thread = 400
    errors: list[BaseException] = []

    def worker(thread_index):
        try:
            for i in range(lookups_per_thread):
                sql = statements[(thread_index + i) % len(statements)]
                found = cache.lookup(sql, relation)
                if found is None:
                    from repro.sql.parser import parse
                    from repro.sql.physical import compile_plan
                    from repro.sql.plancache import (
                        PreparedStatement,
                        plan_statement,
                    )

                    statement = parse(sql)
                    plan, resolved, _ = plan_statement(statement, relation)
                    compiled = compile_plan(plan, {statement.relation: resolved})
                    cache.store(
                        PreparedStatement(
                            sql, statement, plan, compiled, resolved, None
                        )
                    )
        except BaseException as exc:  # noqa: BLE001 - recorded for assert
            errors.append(exc)

    with aggressive_preemption():
        run_threads(worker)

    assert errors == []
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == THREADS * lookups_per_thread
    assert stats["statements"] <= 4


def test_cross_thread_transactions_serialize_instead_of_raising():
    """insert_many from many threads must serialize, not raise.

    The old manager raised ``TransactionError: transaction N is still
    active`` whenever a second thread began while any transaction was
    open — a concurrent writer could not exist at all.
    """
    database = Database("corp")
    database.create_relation(
        schema("t", [("a", "INT"), ("w", "INT")]), enforce_key=False
    )
    batch = 25
    failures: list[BaseException] = []

    def writer(thread_index):
        try:
            for round_index in range(8):
                database.insert_many(
                    "t",
                    [
                        {"a": round_index * batch + i, "w": thread_index}
                        for i in range(batch)
                    ],
                )
        except BaseException as exc:  # noqa: BLE001
            failures.append(exc)

    with aggressive_preemption():
        run_threads(writer)

    assert failures == []
    assert len(database.relation("t")) == THREADS * 8 * batch


def test_same_thread_nested_begin_still_raises():
    """The same-thread double-begin contract is unchanged."""
    database = Database("corp")
    txn = database.transactions.begin()
    with pytest.raises(TransactionError):
        database.transactions.begin()
    txn.commit()
    # and after finishing, begin works again
    database.transactions.begin().commit()
