"""QueryService API: sessions, options, snapshots, admission, lifecycle."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    ServiceClosedError,
    ServiceOverloadedError,
    SnapshotWriteError,
)
from repro.relational.catalog import Database
from repro.relational.schema import schema
from repro.relational.snapshot import DatabaseSnapshot
from repro.service import QueryService, pin_snapshot
from repro.sql import clear_plan_cache
from repro.sql.errors import SQLError


def make_database(n=20):
    db = Database("corp")
    db.create_relation(
        schema("t", [("a", "INT"), ("b", "STR")], key=["a"])
    )
    db.insert_many("t", [{"a": i, "b": f"x{i % 3}"} for i in range(n)])
    return db


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


# -- basic execution -----------------------------------------------------------


def test_session_execute_returns_query_result():
    with QueryService(make_database(), workers=2) as service:
        with service.session() as session:
            result = session.execute(
                "SELECT a, b FROM t WHERE a < 5 ORDER BY a"
            )
            assert [row["a"] for row in result] == [0, 1, 2, 3, 4]


def test_execution_options_flow_through():
    with QueryService(make_database(), workers=2) as service:
        with service.session(strict=True) as session:
            # strict=True rejects analysis errors before execution
            from repro.analysis.diagnostics import QueryAnalysisError

            with pytest.raises(QueryAnalysisError):
                session.execute("SELECT a FROM t WHERE a = 'zzz'")
            # per-call override wins over the session default
            result = session.execute(
                "SELECT a FROM t WHERE a = 'zzz'", strict=False
            )
            assert len(result) == 0
        # planner/columnar toggles execute cleanly through the service
        with service.session(planner=False, columnar=False) as session:
            assert len(session.execute("SELECT a FROM t")) == 20


def test_explain_and_explain_analyze():
    with QueryService(make_database(), workers=1) as service:
        with service.session() as session:
            plan = session.explain("SELECT a FROM t WHERE a = 3")
            assert any("Scan" in row["plan"] for row in plan)
            analyzed = session.explain(
                "SELECT a FROM t WHERE a = 3", analyze=True
            )
            assert any("time=" in row["plan"] for row in analyzed)


def test_query_errors_propagate_to_the_caller():
    with QueryService(make_database(), workers=1) as service:
        with service.session() as session:
            from repro.errors import UnknownColumnError

            with pytest.raises(UnknownColumnError):
                session.execute("SELECT nope FROM t")
            ticket = session.submit("SELEC broken")
            assert isinstance(ticket.exception(timeout=5), SQLError)
            stats = session.stats.snapshot()
            assert stats["failed"] == 2 and stats["executed"] == 0


# -- snapshot pinning ----------------------------------------------------------


def test_submit_time_pin_never_observes_later_writes():
    db = make_database(n=50)
    gate = threading.Event()
    service = QueryService(
        db, workers=1, runner=lambda fn: (gate.wait(5), fn())[1]
    )
    try:
        ticket = service.submit("SELECT a FROM t")
        # the write lands after submit but before the worker runs
        db.insert("t", {"a": 999, "b": "late"})
        gate.set()
        assert len(ticket.result(timeout=10)) == 50
        # a fresh query sees the write
        assert len(service.execute("SELECT a FROM t")) == 51
    finally:
        gate.set()
        service.close()


def test_explicit_session_pin_holds_one_version():
    db = make_database(n=10)
    with QueryService(db, workers=2) as service:
        with service.session() as session:
            pinned = session.pin()
            assert isinstance(pinned, DatabaseSnapshot)
            db.insert("t", {"a": 100, "b": "new"})
            assert len(session.execute("SELECT a FROM t")) == 10
            session.refresh()
            assert len(session.execute("SELECT a FROM t")) == 11


def test_snapshot_relations_reject_writes():
    db = make_database(n=5)
    snap = db.snapshot()
    frozen = snap["t"]
    assert frozen.frozen
    with pytest.raises(SnapshotWriteError):
        frozen.insert({"a": 77, "b": "w"})
    with pytest.raises(SnapshotWriteError):
        frozen.delete(lambda r: True)
    # the live relation is untouched and still writable
    db.insert("t", {"a": 77, "b": "w"})
    assert len(db.relation("t")) == 6 and len(frozen) == 5


def test_snapshot_reads_off_runs_against_live_source():
    db = make_database(n=5)
    gate = threading.Event()
    service = QueryService(
        db,
        workers=1,
        snapshot_reads=False,
        runner=lambda fn: (gate.wait(5), fn())[1],
    )
    try:
        ticket = service.submit("SELECT a FROM t")
        db.insert("t", {"a": 99, "b": "live"})
        gate.set()
        assert len(ticket.result(timeout=10)) == 6
    finally:
        gate.set()
        service.close()


def test_pin_snapshot_source_shapes():
    db = make_database(n=4)
    relation = db.relation("t")
    assert pin_snapshot(relation).frozen
    snap = db.snapshot()
    assert pin_snapshot(snap) is snap
    mapping_pin = pin_snapshot({"t": relation})
    assert mapping_pin["t"].frozen
    with pytest.raises(TypeError):
        pin_snapshot(42)


def test_snapshot_is_cached_until_mutation():
    db = make_database(n=4)
    first = db.snapshot()
    assert db.snapshot()["t"] is first["t"]  # version unchanged: reused
    db.insert("t", {"a": 50, "b": "w"})
    assert db.snapshot()["t"] is not first["t"]


def test_database_snapshot_mapping_protocol():
    db = make_database(n=3)
    snap = db.snapshot()
    assert set(snap) == {"t"}
    assert len(snap) == 1
    assert snap.catalog_version == db.catalog_version
    assert snap.relation_names == ("t",)
    assert "DatabaseSnapshot" in repr(snap)
    from repro.errors import UnknownRelationError

    with pytest.raises(UnknownRelationError):
        snap.relation("missing")


def test_snapshot_round_trips_through_storage(tmp_path):
    from repro.relational.storage import load, save

    db = make_database(n=6)
    frozen = db.snapshot()["t"]
    save(frozen, tmp_path / "t")
    loaded = load(tmp_path / "t")
    assert sorted(r.values_tuple() for r in loaded) == sorted(
        r.values_tuple() for r in frozen
    )


# -- admission control ---------------------------------------------------------


def test_full_queue_rejects_with_overloaded():
    db = make_database(n=3)
    gate = threading.Event()
    service = QueryService(
        db,
        workers=1,
        max_pending=2,
        runner=lambda fn: (gate.wait(5), fn())[1],
    )
    try:
        tickets = []
        with pytest.raises(ServiceOverloadedError):
            for _ in range(10):
                tickets.append(service.submit("SELECT a FROM t"))
        assert len(tickets) <= 3  # 1 in flight + 2 queued at most
        gate.set()
        for ticket in tickets:
            assert len(ticket.result(timeout=10)) == 3
        assert service.stats()["rejected"] >= 1
    finally:
        gate.set()
        service.close()


def test_stats_counters_track_lifecycle():
    with QueryService(make_database(n=3), workers=2, name="svc") as service:
        service.execute("SELECT a FROM t")
        stats = service.stats()
        assert stats["name"] == "svc"
        assert stats["submitted"] == 1
        assert stats["completed"] == 1
        assert stats["failed"] == 0
        assert not stats["closed"]


def test_obs_metrics_report_when_enabled():
    from repro.obs import metrics

    with metrics.instrumented() as registry:
        with QueryService(make_database(n=3), workers=1) as service:
            service.execute("SELECT a FROM t")
            with pytest.raises(SQLError):
                service.execute("SELEC broken")
        snapshot = registry.snapshot()
    assert snapshot["service.queries"]["value"] == 1
    assert snapshot["service.errors"]["value"] == 1
    assert snapshot["service.latency_seconds"]["count"] == 2


# -- lifecycle -----------------------------------------------------------------


def test_closed_service_rejects_everything():
    service = QueryService(make_database(n=2), workers=1)
    service.close()
    assert service.closed
    with pytest.raises(ServiceClosedError):
        service.submit("SELECT a FROM t")
    with pytest.raises(ServiceClosedError):
        service.session()
    service.close()  # idempotent


def test_queued_queries_finish_before_close_returns():
    db = make_database(n=3)
    service = QueryService(db, workers=2)
    tickets = [service.submit("SELECT a FROM t") for _ in range(8)]
    service.close(wait=True)
    assert all(len(t.result(timeout=0)) == 3 for t in tickets)


def test_closed_session_rejects_but_keeps_stats():
    with QueryService(make_database(n=2), workers=1) as service:
        session = service.session()
        session.execute("SELECT a FROM t")
        session.close()
        assert session.closed
        with pytest.raises(ServiceClosedError):
            session.execute("SELECT a FROM t")
        with pytest.raises(ServiceClosedError):
            session.pin()
        assert session.stats.snapshot()["executed"] == 1


def test_constructor_validation():
    db = make_database(n=1)
    with pytest.raises(ValueError):
        QueryService(db, workers=0)
    with pytest.raises(ValueError):
        QueryService(db, max_pending=0)
