"""Thread-safety stress tests: readers racing writers and repartitions.

These are the service-level counterparts to the targeted races in
``test_atomicity.py``: many reader threads take snapshots (directly or
through a :class:`QueryService`) while one writer mutates the database,
and every observation must be consistent — no torn ``insert_many``
batches, no rows lost across a concurrent ``repartition()``, and no
stale plan-cache pruning after the partition layout changes.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager

import pytest

from repro.relational import hash_partitions
from repro.relational.catalog import Database
from repro.relational.schema import schema
from repro.service import QueryService
from repro.sql import clear_plan_cache, execute

READERS = 4
BATCH = 10
BATCHES = 30


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@contextmanager
def aggressive_preemption():
    """Force thread switches every ~10µs so races actually interleave."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _events_database(prepopulate: int = 0) -> Database:
    database = Database("stress")
    database.create_relation(
        schema("events", [("event_id", "INT"), ("region", "STR")]),
        enforce_key=False,
        partition_by=hash_partitions("region", 8),
    )
    if prepopulate:
        database.insert_many(
            "events",
            [
                {"event_id": i, "region": f"r{i % 5}"}
                for i in range(prepopulate)
            ],
        )
    return database


def test_snapshots_never_observe_torn_batches():
    """Readers snapshotting a partitioned relation mid-``insert_many``
    must only ever see whole batches.

    ``Database.snapshot()`` holds the transaction manager's exclusive
    gate, so a batch that inserts atomically is also *observed*
    atomically: every snapshot row count is a multiple of the batch
    size.
    """
    database = _events_database()
    writers_done = threading.Event()
    start = threading.Barrier(READERS + 1)
    torn: list[int] = []

    def writer():
        start.wait()
        try:
            for batch_index in range(BATCHES):
                database.insert_many(
                    "events",
                    [
                        {
                            "event_id": batch_index * BATCH + i,
                            "region": f"r{i % 5}",
                        }
                        for i in range(BATCH)
                    ],
                )
        finally:
            writers_done.set()

    def reader(counts: list[int]):
        start.wait()
        while not writers_done.is_set():
            count = len(database.snapshot()["events"])
            counts.append(count)
            if count % BATCH:
                torn.append(count)

    observed: list[list[int]] = [[] for _ in range(READERS)]
    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(observed[i],))
        for i in range(READERS)
    ]
    with aggressive_preemption():
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert torn == [], f"torn batch counts observed: {torn[:5]}"
    assert len(database.relation("events")) == BATCH * BATCHES
    # the readers genuinely raced the writer (took snapshots mid-run)
    assert any(observed)


def test_service_readers_race_writer_over_columnar_scans():
    """Service readers (columnar plans over pinned snapshots) racing a
    live writer: every result is a whole-batch view, and concurrent
    ``columnar_store()`` builds on the shared frozen snapshot are safe.
    """
    database = _events_database(prepopulate=BATCH)
    writers_done = threading.Event()
    bad: list[int] = []

    def writer():
        try:
            for batch_index in range(1, BATCHES):
                database.insert_many(
                    "events",
                    [
                        {
                            "event_id": batch_index * BATCH + i,
                            "region": f"r{i % 5}",
                        }
                        for i in range(BATCH)
                    ],
                )
        finally:
            writers_done.set()

    with QueryService(database, workers=READERS) as service:

        def reader():
            with service.session() as session:
                while not writers_done.is_set():
                    result = session.execute(
                        "SELECT event_id, region FROM events"
                    )
                    if len(result) % BATCH:
                        bad.append(len(result))

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(READERS)
        ]
        with aggressive_preemption():
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

    assert bad == [], f"torn result sizes: {bad[:5]}"
    assert len(database.relation("events")) == BATCH * BATCHES


def test_repartition_under_query_never_serves_stale_plans():
    """Queries racing ``repartition()`` must stay correct.

    A compiled plan caches the pruned shard list for the layout it was
    planned against; reusing it after the layout changed would scan the
    wrong buckets.  The plan cache pins ``partition_layout_version``,
    so every reader result must equal the static answer no matter how
    often the layout flips underneath.
    """
    database = _events_database(prepopulate=500)
    sql = (
        "SELECT event_id FROM events WHERE region = 'r3' "
        "ORDER BY event_id"
    )
    expected = [row["event_id"] for row in execute(sql, database)]
    assert expected  # the probe query is not vacuous

    readers_done = threading.Event()
    wrong: list[list[int]] = []
    layouts = [
        hash_partitions("region", 2),
        hash_partitions("region", 16),
        None,  # drop partitioning entirely
        hash_partitions("region", 8),
    ]

    def mutator():
        index = 0
        while not readers_done.is_set():
            database.repartition("events", layouts[index % len(layouts)])
            index += 1

    def reader():
        with QueryService(database, workers=1) as service:
            with service.session() as session:
                for _ in range(40):
                    result = session.execute(sql)
                    rows = [row["event_id"] for row in result]
                    if rows != expected:
                        wrong.append(rows)

    reader_threads = [threading.Thread(target=reader) for _ in range(2)]
    mutator_thread = threading.Thread(target=mutator)
    with aggressive_preemption():
        mutator_thread.start()
        for thread in reader_threads:
            thread.start()
        for thread in reader_threads:
            thread.join()
        readers_done.set()
        mutator_thread.join()

    assert wrong == [], f"stale-plan result: {wrong[:1]}"


def test_repartition_racing_inserts_conserves_rows():
    """Repartitioning while inserts land must lose no row: the
    redistribution and the insert routing serialize on the relation
    lock instead of racing over the shard lists."""
    database = Database("stress")
    relation = database.create_relation(
        schema("t", [("a", "INT"), ("w", "INT")]),
        enforce_key=False,
        partition_by=hash_partitions("a", 4),
    )
    per_writer = 300
    writers = 4
    writers_done = threading.Event()

    def writer(worker_index: int):
        try:
            for i in range(per_writer):
                relation.insert({"a": i, "w": worker_index})
        finally:
            if worker_index == writers - 1:
                writers_done.set()

    def mutator():
        buckets = [2, 8, 3, 16]
        index = 0
        while not writers_done.is_set():
            relation.repartition(hash_partitions("a", buckets[index % 4]))
            index += 1

    threads = [threading.Thread(target=mutator)] + [
        threading.Thread(target=writer, args=(w,)) for w in range(writers)
    ]
    with aggressive_preemption():
        for thread in threads:
            thread.start()
        for thread in threads[1:]:
            thread.join()
        writers_done.set()
        threads[0].join()

    assert len(relation) == writers * per_writer
    seen = {(row["a"], row["w"]) for row in relation}
    assert len(seen) == writers * per_writer
