"""Property test: the service path is observationally equal to ``execute``.

Reuses the generators from the planner equivalence suite: random small
relations and random QSQL statements.  For every pair, running the
statement through a :class:`QueryService` session (worker thread, job
queue, pinned snapshot) must produce exactly the result of calling
:func:`repro.sql.execute` directly on the live relation — the service
adds scheduling and isolation, never semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.service import QueryService
from repro.sql import clear_plan_cache, execute
from tests.sql.test_planner_equivalence import (
    canonical,
    plain_relations,
    statements,
    tagged_relations,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@settings(max_examples=60, deadline=None)
@given(plain_relations(), statements(quality=False))
def test_service_path_equals_direct_execute_plain(relation, sql):
    direct = canonical(execute(sql, relation))
    with QueryService(relation, workers=2) as service:
        with service.session() as session:
            via_service = canonical(session.execute(sql))
    assert via_service == direct


@settings(max_examples=40, deadline=None)
@given(tagged_relations(), statements(quality=True))
def test_service_path_equals_direct_execute_tagged(relation, sql):
    direct = canonical(execute(sql, relation))
    with QueryService(relation, workers=2) as service:
        with service.session() as session:
            via_service = canonical(session.execute(sql))
    assert via_service == direct
