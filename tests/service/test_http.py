"""The HTTP front end: POST /query, health/stats/metrics, error mapping."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.relational.catalog import Database
from repro.relational.schema import schema
from repro.service import QueryService
from repro.service.http import make_server, relation_to_payload
from repro.sql import clear_plan_cache


@pytest.fixture()
def served():
    """A live server over a small database; yields (base_url, db, service)."""
    clear_plan_cache()
    db = Database("corp")
    db.create_relation(
        schema("t", [("a", "INT"), ("b", "STR")], key=["a"])
    )
    db.insert_many("t", [{"a": i, "b": f"x{i % 3}"} for i in range(10)])
    service = QueryService(db, workers=2, name="test-http")
    server = make_server(service, "127.0.0.1", 0)  # free port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", db, service
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        clear_plan_cache()


def post_query(base, payload):
    request = urllib.request.Request(
        base + "/query",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def test_post_query_returns_rows(served):
    base, _, _ = served
    status, payload = post_query(
        base, {"sql": "SELECT a, b FROM t WHERE a < 3 ORDER BY a"}
    )
    assert status == 200
    assert payload["columns"] == ["a", "b"]
    assert payload["rows"] == [[0, "x0"], [1, "x1"], [2, "x2"]]
    assert payload["row_count"] == 3


def test_post_query_honors_execution_options(served):
    base, _, _ = served
    # strict: type-incompatible comparison becomes a 400, not empty rows
    status, payload = post_query(
        base, {"sql": "SELECT a FROM t WHERE a = 'zzz'", "strict": True}
    )
    assert status == 400 and "error" in payload
    status, payload = post_query(
        base,
        {
            "sql": "SELECT a FROM t WHERE a = 1",
            "planner": False,
            "columnar": False,
        },
    )
    assert status == 200 and payload["row_count"] == 1


def test_post_explain_analyze(served):
    base, _, _ = served
    status, payload = post_query(
        base, {"sql": "EXPLAIN ANALYZE SELECT a FROM t WHERE a = 1"}
    )
    assert status == 200
    assert payload["columns"] == ["plan"]
    assert any("time=" in row[0] for row in payload["rows"])


def test_malformed_requests_get_400(served):
    base, _, _ = served
    assert post_query(base, {"sql": "SELEC broken"})[0] == 400
    assert post_query(base, {"nosql": 1})[0] == 400
    assert post_query(base, {"sql": "   "})[0] == 400
    assert post_query(base, {"sql": "SELECT a FROM t", "strict": "yes"})[0] == 400
    assert post_query(base, {"sql": "SELECT a FROM t", "tags": 1})[0] == 400
    # non-object body
    request = urllib.request.Request(base + "/query", data=b"[1, 2]")
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request, timeout=10)
    assert info.value.code == 400
    # invalid JSON
    request = urllib.request.Request(base + "/query", data=b"{nope")
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request, timeout=10)
    assert info.value.code == 400
    # empty body
    request = urllib.request.Request(base + "/query", data=b"")
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request, timeout=10)
    assert info.value.code == 400


def test_unknown_paths_get_404(served):
    base, _, _ = served
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(base + "/nope", timeout=10)
    assert info.value.code == 404
    assert post_query(base, {"sql": "SELECT a FROM t"})[0] == 200
    request = urllib.request.Request(base + "/elsewhere", data=b"{}")
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(request, timeout=10)
    assert info.value.code == 404


def test_health_stats_metrics_endpoints(served):
    base, _, service = served
    status, body = get(base, "/health")
    assert status == 200
    assert json.loads(body) == {"status": "ok", "service": "test-http"}
    post_query(base, {"sql": "SELECT a FROM t"})
    status, body = get(base, "/stats")
    assert status == 200
    stats = json.loads(body)
    assert stats["completed"] >= 1 and stats["name"] == "test-http"
    status, body = get(base, "/metrics")
    assert status == 200  # exposition text; may be empty when obs is off


def test_overload_maps_to_503(served):
    base, db, _ = served
    gate = threading.Event()
    slow = QueryService(
        db,
        workers=1,
        max_pending=1,
        name="tiny",
        runner=lambda fn: (gate.wait(5), fn())[1],
    )
    server = make_server(slow, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    tiny = f"http://{host}:{port}"
    try:
        # saturate: worker blocked on the gate + a full queue, so POSTs
        # from extra threads pile up until one is shed with 503.
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(
                    post_query(tiny, {"sql": "SELECT a FROM t"})
                )
            )
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        import time

        deadline = time.time() + 5
        while time.time() < deadline:
            if any(status == 503 for status, _ in results):
                break
            time.sleep(0.05)
        gate.set()
        for t in threads:
            t.join(timeout=10)
        assert any(status == 503 for status, _ in results)
        overloaded = [p for status, p in results if status == 503]
        assert all(p == {"error": "overloaded"} for p in overloaded)
        assert any(status == 200 for status, _ in results)
    finally:
        gate.set()
        server.shutdown()
        server.server_close()
        slow.close()


def test_tagged_results_can_include_tags(tagged_customers):
    clear_plan_cache()
    with QueryService(tagged_customers, workers=1) as service:
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            status, payload = post_query(
                base,
                {
                    "sql": "SELECT co_name, address FROM customer "
                    "ORDER BY co_name",
                    "tags": True,
                },
            )
            assert status == 200
            assert payload["row_count"] == len(tagged_customers)
            assert "tags" in payload
            assert any(
                "address" in row_tags for row_tags in payload["tags"]
            )
        finally:
            server.shutdown()
            server.server_close()
    clear_plan_cache()


def test_relation_to_payload_serializes_dates():
    from datetime import date

    from repro.relational.relation import Relation
    from repro.relational.schema import schema as make_schema

    relation = Relation(make_schema("d", [("day", "DATE")]))
    relation.insert({"day": date(2026, 8, 8)})
    payload = relation_to_payload(relation)
    assert json.dumps(payload, default=str)  # round-trips through JSON


def test_module_main_serves_banner_and_shuts_down(monkeypatch, capsys):
    """``python -m repro.service`` wires scenario → service → server.

    ``serve_forever`` is replaced with an immediate KeyboardInterrupt so
    the whole lifecycle (build, banner, interrupt, close) runs inline.
    """
    import repro.service.__main__ as service_main
    from repro.obs import metrics as obs_metrics

    real_make_server = service_main.make_server

    def interrupted_make_server(service, host, port):
        server = real_make_server(service, host, port)

        def interrupt():
            raise KeyboardInterrupt

        server.serve_forever = interrupt
        return server

    monkeypatch.setattr(service_main, "make_server", interrupted_make_server)
    try:
        exit_code = service_main.main(
            ["--port", "0", "--scenario", "columnar", "--scale", "128"]
        )
    finally:
        obs_metrics.disable()
    assert exit_code == 0
    banner = capsys.readouterr().out
    assert "POST http://" in banner
    assert "/query" in banner
    clear_plan_cache()
