"""Unit tests for experiment reporting helpers."""

import pytest

from repro.experiments.harness import ExperimentResult, run_experiment
from repro.experiments.reporting import TextTable, render_series


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(["a", "b"])
        table.add_row(["x", 1])
        table.add_row(["yy", 22])
        text = table.render()
        lines = text.splitlines()
        assert lines[0].rstrip() == "a  | b"
        assert lines[2].rstrip() == "x  | 1"
        assert lines[3].rstrip() == "yy | 22"

    def test_title(self):
        table = TextTable(["a"], title="My Table")
        table.add_row([1])
        assert table.render().startswith("My Table")

    def test_arity_check(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_float_formatting(self):
        table = TextTable(["v"])
        table.add_row([0.123456789])
        assert "0.1235" in table.render()

    def test_none_blank(self):
        table = TextTable(["k", "v"])
        table.add_row(["x", None])
        assert table.render().splitlines()[-1].rstrip() == "x |"

    def test_add_rows_and_count(self):
        table = TextTable(["v"])
        table.add_rows([[1], [2], [3]])
        assert table.row_count == 3


class TestRenderSeries:
    def test_bars_scale(self):
        text = render_series("n", "time", [(1, 1.0), (2, 2.0)], width=10)
        lines = text.splitlines()
        assert lines[-1].count("#") == 10
        assert lines[-2].count("#") == 5

    def test_empty(self):
        assert "(no points)" in render_series("x", "y", [])

    def test_title(self):
        text = render_series("x", "y", [(1, 1.0)], title="Figure E2")
        assert text.startswith("Figure E2")


class TestExperimentResult:
    def test_checks(self):
        result = ExperimentResult("T1", "Table 1", "artifact text")
        result.check("renders", True)
        result.check("shape", False)
        assert not result.all_checks_pass
        text = result.render()
        assert "[PASS] renders" in text
        assert "[FAIL] shape" in text

    def test_run_experiment(self):
        result = run_experiment(
            "X", "an experiment", lambda: ("body", {"n": 3})
        )
        assert result.artifact == "body"
        assert result.data == {"n": 3}
        assert result.all_checks_pass  # vacuous
