"""Unit tests for the canonical paper scenarios."""

import datetime as dt

import pytest

from repro.experiments import scenarios


class TestTable1:
    def test_exact_rows(self):
        relation = scenarios.table1_relation()
        assert relation.to_dicts() == [
            {"co_name": "Fruit Co", "address": "12 Jay St", "employees": 4004},
            {"co_name": "Nut Co", "address": "62 Lois Av", "employees": 700},
        ]

    def test_render_matches_paper_layout(self):
        text = scenarios.table1_relation().render()
        assert "co_name" in text and "address" in text and "#" not in text


class TestTable2:
    def test_exact_tags(self):
        relation = scenarios.table2_relation()
        nut = relation.rows[1]
        assert nut["address"].tag_value("creation_time") == dt.date(1991, 10, 24)
        assert nut["address"].tag_value("source") == "acct'g"
        assert nut["employees"].tag_value("source") == "estimate"

    def test_render_paper_style(self):
        text = scenarios.table2_relation().render()
        assert "62 Lois Av (10-24-91, acct'g)" in text
        assert "4004 (10-03-91, Nexis)" in text

    def test_values_match_table1(self):
        assert (
            scenarios.table2_relation().values_relation().to_dicts()
            == scenarios.table1_relation().to_dicts()
        )


class TestTradingSchema:
    def test_figure3_content(self):
        er = scenarios.trading_er_schema()
        assert {e.name for e in er.entities} == {"client", "company_stock"}
        assert [r.name for r in er.relationships] == ["trade"]
        trade = er.relationship("trade")
        assert trade.attribute_names == ("date", "quantity", "trade_price")


class TestCustomerDatabase:
    def test_scaled_build(self):
        world, pipeline, relation = scenarios.customer_database(
            n_companies=40, seed=3, simulated_days=30
        )
        assert len(relation) == 40
        assert relation.rows[0]["address"].has_tag("source")

    def test_heterogeneous_quality(self):
        world, _, relation = scenarios.customer_database(
            n_companies=80, seed=3, simulated_days=120
        )
        from repro.quality.dimensions import accuracy_against

        accuracy = accuracy_against(relation, world.truth(), "co_name")
        # The §1.2 situation: address (acct'g) beats employees (estimate).
        assert accuracy["address"] > accuracy["employees"]


class TestClearinghouse:
    def test_profiles_registered(self):
        _, _, _, registry = scenarios.clearinghouse(
            n_people=30, simulated_days=30
        )
        assert set(registry.names) == {"fund_raising", "mass_mailing"}
        assert len(registry.get("mass_mailing").quality_filter) == 0
        assert len(registry.get("fund_raising").quality_filter) == 2

    def test_mixed_sources(self):
        _, _, relation, _ = scenarios.clearinghouse(
            n_people=100, seed=1, simulated_days=60
        )
        sources = {
            row["address"].tag_value("source") for row in relation
        }
        assert sources == {"postal_feed", "purchased_list"}


class TestTicks:
    def test_all_priced_and_aged(self):
        ticks = scenarios.trading_ticks(n_ticks=50, seed=2)
        assert len(ticks) == 50
        assert all(row["price"].has_tag("age") for row in ticks)

    def test_long_tailed_ages(self):
        ticks = scenarios.trading_ticks(n_ticks=300, seed=2)
        ages = [row["price"].tag_value("age") for row in ticks]
        assert min(ages) < 0.001  # sub-minute quotes exist
        assert max(ages) > 0.5  # half-day-stale quotes exist


class TestDuplicatedCustomers:
    def test_counts(self):
        records, n_dups = scenarios.duplicated_customers(
            n_base=50, duplicate_fraction=0.2, seed=1
        )
        assert n_dups == 10
        assert len(records) == 60

    def test_entities_hidden_field(self):
        records, _ = scenarios.duplicated_customers(n_base=20, seed=1)
        entities = [r["_entity"] for r in records]
        # Duplicated entities appear more than once.
        assert any(entities.count(e) > 1 for e in set(entities))

    def test_deterministic(self):
        a, _ = scenarios.duplicated_customers(n_base=30, seed=4)
        b, _ = scenarios.duplicated_customers(n_base=30, seed=4)
        assert a == b
