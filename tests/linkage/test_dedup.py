"""Unit tests for duplicate detection (and the E7 threshold sweep)."""

import pytest

from repro.experiments.scenarios import duplicated_customers
from repro.linkage.blocking import prefix_key
from repro.linkage.comparators import jaro_winkler, numeric_closeness
from repro.linkage.dedup import DuplicateFinder
from repro.linkage.fellegi_sunter import (
    FellegiSunterModel,
    FieldModel,
    MatchDecision,
)


def make_model(upper=6.0):
    return FellegiSunterModel(
        [
            FieldModel("co_name", jaro_winkler, m=0.95, u=0.01),
            FieldModel("address", jaro_winkler, m=0.85, u=0.02),
            FieldModel(
                "employees",
                lambda a, b: numeric_closeness(a, b, tolerance=0.2),
                m=0.8,
                u=0.05,
            ),
        ],
        upper_threshold=upper,
        lower_threshold=0.0,
    )


@pytest.fixture(scope="module")
def dup_data():
    records, n_dups = duplicated_customers(n_base=60, duplicate_fraction=0.4, seed=9)
    return records, n_dups


class TestScoring:
    def test_scores_sorted_descending(self, dup_data):
        records, _ = dup_data
        finder = DuplicateFinder(make_model())
        results = finder.score_pairs(records)
        weights = [r.weight for r in results]
        assert weights == sorted(weights, reverse=True)

    def test_links_are_mostly_true_duplicates(self, dup_data):
        records, _ = dup_data
        finder = DuplicateFinder(make_model())
        evaluation = finder.evaluate(
            records, lambda a, b: a["_entity"] == b["_entity"]
        )
        assert evaluation.precision > 0.8
        assert evaluation.recall > 0.6

    def test_clusters_group_duplicates(self, dup_data):
        records, n_dups = dup_data
        finder = DuplicateFinder(make_model())
        clusters = finder.duplicate_clusters(records)
        assert clusters
        # Each cluster should be entity-pure at a high rate.
        pure = sum(
            1
            for cluster in clusters
            if len({records[i]["_entity"] for i in cluster}) == 1
        )
        assert pure / len(clusters) > 0.8


class TestBlockingIntegration:
    def test_blocked_finder_faster_pair_space(self, dup_data):
        records, _ = dup_data
        blocked = DuplicateFinder(
            make_model(), blocking_keys=[prefix_key("co_name", 3)]
        )
        unblocked = DuplicateFinder(make_model())
        assert len(blocked.candidate_pairs(records)) < len(
            unblocked.candidate_pairs(records)
        )

    def test_blocked_recall_reasonable(self, dup_data):
        records, _ = dup_data
        blocked = DuplicateFinder(
            make_model(), blocking_keys=[prefix_key("co_name", 2)]
        )
        evaluation = blocked.evaluate(
            records, lambda a, b: a["_entity"] == b["_entity"]
        )
        assert evaluation.recall > 0.2  # blocking costs real recall here:
        # the dirtier duplicates often corrupt the first characters of
        # the name, so prefix blocking drops those true pairs entirely


class TestThresholdSweep:
    def test_e7_shape(self, dup_data):
        """Precision rises / recall falls with the threshold; F1 peaks
        at an interior point."""
        records, _ = dup_data
        finder = DuplicateFinder(make_model())
        rows = finder.threshold_sweep(
            records,
            lambda a, b: a["_entity"] == b["_entity"],
            thresholds=[-5.0, 0.0, 3.0, 6.0, 9.0, 12.0],
        )
        precisions = [r["precision"] for r in rows]
        recalls = [r["recall"] for r in rows]
        # Monotone shapes (weak).
        assert all(a <= b + 1e-9 for a, b in zip(precisions, precisions[1:]))
        assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
        # Interior F1 peak: best threshold is neither the loosest nor the
        # strictest.
        best = max(rows, key=lambda r: r["f1"])
        assert rows[0]["f1"] < best["f1"]
        assert rows[-1]["f1"] < best["f1"]

    def test_requires_thresholds(self, dup_data):
        records, _ = dup_data
        finder = DuplicateFinder(make_model())
        with pytest.raises(Exception):
            finder.threshold_sweep(records, lambda a, b: False, [])


class TestEvaluationMetrics:
    def test_degenerate_cases(self):
        from repro.linkage.dedup import DedupEvaluation

        perfect = DedupEvaluation(10, 0, 0)
        assert perfect.precision == perfect.recall == perfect.f1 == 1.0
        nothing = DedupEvaluation(0, 0, 0)
        assert nothing.precision == 1.0 and nothing.recall == 1.0
        bad = DedupEvaluation(0, 5, 5)
        assert bad.f1 == 0.0
