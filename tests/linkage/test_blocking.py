"""Unit tests for blocking / candidate-pair generation."""

import pytest

from repro.errors import LinkageError
from repro.linkage.blocking import (
    block_pairs,
    field_key,
    full_pairs,
    prefix_key,
    reduction_ratio,
    soundex_key,
)


@pytest.fixture
def records():
    return [
        {"name": "Robert", "city": "Boston"},
        {"name": "Rupert", "city": "Boston"},
        {"name": "Smith", "city": "Cambridge"},
        {"name": "Smyth", "city": "Cambridge"},
        {"name": "Jones", "city": None},
    ]


class TestFullPairs:
    def test_count(self, records):
        assert len(list(full_pairs(records))) == 10  # C(5,2)

    def test_ordering(self, records):
        assert all(i < j for i, j in full_pairs(records))


class TestBlockPairs:
    def test_field_key_blocks(self, records):
        pairs = list(block_pairs(records, [field_key("city")]))
        assert set(pairs) == {(0, 1), (2, 3)}

    def test_none_keys_excluded(self, records):
        pairs = list(block_pairs(records, [field_key("city")]))
        assert all(4 not in pair for pair in pairs)

    def test_soundex_key(self, records):
        pairs = set(block_pairs(records, [soundex_key("name")]))
        assert (0, 1) in pairs  # Robert ~ Rupert
        assert (2, 3) in pairs  # Smith ~ Smyth

    def test_prefix_key(self, records):
        pairs = set(block_pairs(records, [prefix_key("name", 2)]))
        assert (2, 3) in pairs  # Sm
        assert (0, 1) not in pairs  # Ro vs Ru

    def test_multi_pass_union_dedup(self, records):
        single = set(block_pairs(records, [field_key("city")]))
        double = list(
            block_pairs(records, [field_key("city"), field_key("city")])
        )
        assert set(double) == single
        assert len(double) == len(single)  # yielded once

    def test_requires_keys(self, records):
        with pytest.raises(LinkageError):
            list(block_pairs(records, []))

    def test_prefix_length_positive(self):
        with pytest.raises(LinkageError):
            prefix_key("name", 0)


class TestReductionRatio:
    def test_blocking_reduces(self, records):
        ratio = reduction_ratio(records, [field_key("city")])
        assert ratio == pytest.approx(1 - 2 / 10)

    def test_no_records(self):
        assert reduction_ratio([], [field_key("x")]) == 0.0
