"""Property-based tests for comparator metrics and model weights."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linkage.comparators import (
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    soundex,
)
from repro.linkage.fellegi_sunter import FellegiSunterModel, FieldModel
from repro.linkage.comparators import exact

WORDS = st.text(alphabet="abcdefghij", min_size=0, max_size=10)
NAMES = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=12)


class TestLevenshteinProperties:
    @given(WORDS, WORDS)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(WORDS)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(WORDS, WORDS)
    def test_bounded_by_longer(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(WORDS, WORDS, WORDS)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(WORDS, WORDS)
    def test_similarity_bounds(self, a, b):
        assert 0.0 <= levenshtein_similarity(a, b) <= 1.0


class TestJaroProperties:
    @given(WORDS, WORDS)
    def test_symmetry(self, a, b):
        assert jaro(a, b) == pytest.approx(jaro(b, a))

    @given(WORDS)
    def test_identity(self, a):
        assert jaro(a, a) == 1.0

    @given(WORDS, WORDS)
    def test_bounds(self, a, b):
        assert 0.0 <= jaro(a, b) <= 1.0

    @given(WORDS, WORDS)
    def test_winkler_dominates_jaro(self, a, b):
        assert jaro_winkler(a, b) >= jaro(a, b) - 1e-12

    @given(WORDS, WORDS)
    def test_winkler_bounds(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0


class TestSoundexProperties:
    @given(NAMES)
    def test_code_shape(self, name):
        code = soundex(name)
        assert len(code) == 4
        assert code[0].isalpha() and code[0].isupper()
        assert all(c.isdigit() for c in code[1:])

    @given(NAMES)
    def test_deterministic(self, name):
        assert soundex(name) == soundex(name)

    @given(NAMES)
    def test_case_insensitive(self, name):
        assert soundex(name) == soundex(name.upper())


class TestModelWeightProperties:
    @given(
        st.floats(min_value=0.5, max_value=0.99),
        st.floats(min_value=0.01, max_value=0.49),
    )
    def test_informative_field_signs(self, m, u):
        field = FieldModel("f", exact, m=m, u=u)
        # m > u: agreement is evidence for, disagreement against.
        assert field.agreement_weight > 0
        assert field.disagreement_weight < 0

    @given(st.lists(st.booleans(), min_size=1, max_size=5))
    def test_weight_monotone_in_agreements(self, pattern):
        fields = [
            FieldModel(f"f{i}", exact, m=0.9, u=0.1)
            for i in range(len(pattern))
        ]
        model = FellegiSunterModel(fields)
        record_a = {f"f{i}": "x" for i in range(len(pattern))}
        record_b = {
            f"f{i}": ("x" if agrees else "y")
            for i, agrees in enumerate(pattern)
        }
        record_all = dict(record_a)
        assert model.weight(record_a, record_all) >= model.weight(
            record_a, record_b
        )
