"""Unit tests for the Fellegi-Sunter model."""

import math

import pytest

from repro.errors import LinkageError
from repro.linkage.comparators import exact, jaro_winkler
from repro.linkage.fellegi_sunter import (
    FellegiSunterModel,
    FieldModel,
    MatchDecision,
)


@pytest.fixture
def model():
    return FellegiSunterModel(
        [
            FieldModel("name", jaro_winkler, m=0.95, u=0.01),
            FieldModel("address", jaro_winkler, m=0.85, u=0.05),
        ],
        upper_threshold=5.0,
        lower_threshold=0.0,
    )


class TestFieldModel:
    def test_weights(self):
        field = FieldModel("f", exact, m=0.9, u=0.1)
        assert field.agreement_weight == pytest.approx(math.log2(9))
        assert field.disagreement_weight == pytest.approx(math.log2(0.1 / 0.9))

    def test_probability_bounds(self):
        with pytest.raises(LinkageError):
            FieldModel("f", exact, m=1.0)
        with pytest.raises(LinkageError):
            FieldModel("f", exact, u=0.0)

    def test_agreement_threshold(self):
        field = FieldModel("f", jaro_winkler, agree_threshold=0.9)
        assert field.agrees({"f": "martha"}, {"f": "martha"})
        assert not field.agrees({"f": "martha"}, {"f": "zzz"})


class TestModelDecisions:
    def test_exact_pair_links(self, model):
        a = {"name": "Fruit Co", "address": "12 Jay St"}
        assert model.decide(a, dict(a)) is MatchDecision.LINK

    def test_different_pair_non_link(self, model):
        a = {"name": "Fruit Co", "address": "12 Jay St"}
        b = {"name": "Zephyr Ltd", "address": "999 Elm St"}
        assert model.decide(a, b) is MatchDecision.NON_LINK

    def test_partial_agreement_possible(self, model):
        a = {"name": "Fruit Co", "address": "12 Jay St"}
        b = {"name": "Fruit Co", "address": "nowhere at all"}
        assert model.decide(a, b) is MatchDecision.POSSIBLE

    def test_weight_additive(self, model):
        a = {"name": "Fruit Co", "address": "12 Jay St"}
        total = model.weight(a, dict(a))
        expected = sum(f.agreement_weight for f in model.fields)
        assert total == pytest.approx(expected)

    def test_agreement_pattern(self, model):
        a = {"name": "Fruit Co", "address": "12 Jay St"}
        b = {"name": "Fruit Co", "address": "zzz"}
        assert model.agreement_pattern(a, b) == (True, False)

    def test_validation(self):
        with pytest.raises(LinkageError):
            FellegiSunterModel([])
        field = FieldModel("f", exact)
        with pytest.raises(LinkageError):
            FellegiSunterModel([field, FieldModel("f", exact)])
        with pytest.raises(LinkageError):
            FellegiSunterModel(
                [field], upper_threshold=0.0, lower_threshold=1.0
            )


class TestEstimation:
    def test_u_estimation_from_data(self):
        records = [{"city": "Boston"}] * 5 + [{"city": "Cambridge"}] * 5
        model = FellegiSunterModel([FieldModel("city", exact, m=0.9, u=0.5)])
        model.estimate_u_from_data(records)
        # Among random pairs, ~4/9 agree on city.
        assert model.fields[0].u == pytest.approx(4 / 9, abs=0.05)

    def test_u_estimation_needs_records(self):
        model = FellegiSunterModel([FieldModel("f", exact)])
        with pytest.raises(LinkageError):
            model.estimate_u_from_data([{"f": 1}])

    def test_em_separates_matches(self):
        # Pairs: 30 clear matches (agree on both), 70 clear non-matches.
        match_pair = ({"a": "x", "b": "y"}, {"a": "x", "b": "y"})
        non_pair = ({"a": "x", "b": "y"}, {"a": "q", "b": "r"})
        pairs = [match_pair] * 30 + [non_pair] * 70
        model = FellegiSunterModel(
            [
                FieldModel("a", exact, m=0.8, u=0.3),
                FieldModel("b", exact, m=0.8, u=0.3),
            ]
        )
        p = model.fit_em(pairs, iterations=30, initial_match_rate=0.5)
        assert p == pytest.approx(0.3, abs=0.05)
        # m should move toward 1 and u toward 0.
        assert all(f.m > 0.9 for f in model.fields)
        assert all(f.u < 0.1 for f in model.fields)

    def test_em_needs_pairs(self):
        model = FellegiSunterModel([FieldModel("f", exact)])
        with pytest.raises(LinkageError):
            model.fit_em([])
