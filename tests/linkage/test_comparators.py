"""Unit tests for string/field comparators."""

import pytest

from repro.linkage.comparators import (
    exact,
    jaro,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    numeric_closeness,
    soundex,
    soundex_match,
)


class TestExact:
    def test_equal(self):
        assert exact("a", "a") == 1.0
        assert exact(1, 1) == 1.0

    def test_unequal(self):
        assert exact("a", "b") == 0.0

    def test_none_handling(self):
        assert exact(None, None) == 1.0
        assert exact(None, "a") == 0.0


class TestLevenshtein:
    def test_classic(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_identity(self):
        assert levenshtein("abc", "abc") == 0

    def test_empty(self):
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_similarity_normalized(self):
        assert levenshtein_similarity("abc", "abc") == 1.0
        assert levenshtein_similarity("abc", "xyz") == 0.0
        assert 0 < levenshtein_similarity("abc", "abd") < 1

    def test_similarity_none(self):
        assert levenshtein_similarity(None, None) == 1.0
        assert levenshtein_similarity(None, "x") == 0.0


class TestJaro:
    def test_martha_marhta(self):
        assert jaro("martha", "marhta") == pytest.approx(0.9444, abs=1e-4)

    def test_identity(self):
        assert jaro("abc", "abc") == 1.0

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_winkler_boosts_prefix(self):
        assert jaro_winkler("martha", "marhta") > jaro("martha", "marhta")

    def test_winkler_no_boost_without_prefix(self):
        assert jaro_winkler("xmartha", "ymartha") == pytest.approx(
            jaro("xmartha", "ymartha")
        )

    def test_bounds(self):
        for a, b in [("abc", "abd"), ("fruit", "froot"), ("a", "ab")]:
            assert 0.0 <= jaro(a, b) <= 1.0
            assert 0.0 <= jaro_winkler(a, b) <= 1.0


class TestSoundex:
    def test_classic_codes(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Tymczak") == "T522"
        assert soundex("Pfister") == "P236"
        assert soundex("Honeyman") == "H555"

    def test_empty(self):
        assert soundex("") == "0000"
        assert soundex("123") == "0000"

    def test_match(self):
        assert soundex_match("Robert", "Rupert") == 1.0
        assert soundex_match("Robert", "Smith") == 0.0


class TestNumericCloseness:
    def test_equal(self):
        assert numeric_closeness(10, 10) == 1.0

    def test_within_tolerance(self):
        assert 0 < numeric_closeness(100, 105, tolerance=0.1) < 1

    def test_outside_tolerance(self):
        assert numeric_closeness(100, 200, tolerance=0.1) == 0.0

    def test_non_numeric(self):
        assert numeric_closeness("a", "b") == 0.0
