"""Unit tests for the relational algebra."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.relational import algebra
from repro.relational.relation import Relation
from repro.relational.schema import schema


@pytest.fixture
def numbers():
    return Relation.from_tuples(
        schema("numbers", [("name", "STR"), ("n", "INT")]),
        [("a", 1), ("b", 2), ("c", 3), ("b", 2)],
    )


@pytest.fixture
def depts():
    return Relation.from_tuples(
        schema("depts", [("dept", "STR"), ("head", "STR")]),
        [("sales", "kim"), ("acctg", "lee")],
    )


@pytest.fixture
def emps():
    return Relation.from_tuples(
        schema("emps", [("emp", "STR"), ("dept", "STR"), ("salary", "INT")]),
        [
            ("ann", "sales", 50),
            ("bob", "sales", 60),
            ("carol", "acctg", 70),
            ("dave", "ops", 40),
        ],
    )


class TestSelect:
    def test_filters(self, numbers):
        result = algebra.select(numbers, lambda r: r["n"] > 1)
        assert len(result) == 3

    def test_pure(self, numbers):
        algebra.select(numbers, lambda r: False)
        assert len(numbers) == 4

    def test_empty_result_keeps_schema(self, numbers):
        result = algebra.select(numbers, lambda r: False)
        assert result.schema == numbers.schema


class TestProject:
    def test_keeps_duplicates(self, numbers):
        result = algebra.project(numbers, ["n"])
        assert len(result) == 4

    def test_column_order(self, numbers):
        result = algebra.project(numbers, ["n", "name"])
        assert result.schema.column_names == ("n", "name")

    def test_requires_columns(self, numbers):
        with pytest.raises(QueryError):
            algebra.project(numbers, [])


class TestRename:
    def test_rename_column(self, numbers):
        result = algebra.rename(numbers, {"n": "value"})
        assert "value" in result.schema
        assert result.column_values("value") == [1, 2, 3, 2]

    def test_rename_relation(self, numbers):
        result = algebra.rename(numbers, new_name="renamed")
        assert result.schema.name == "renamed"


class TestDistinct:
    def test_removes_duplicates(self, numbers):
        assert len(algebra.distinct(numbers)) == 3

    def test_preserves_first_occurrence_order(self, numbers):
        result = algebra.distinct(numbers)
        assert result.column_values("name") == ["a", "b", "c"]


class TestSetOperators:
    def test_union_bag(self, numbers):
        result = algebra.union(numbers, numbers)
        assert len(result) == 8

    def test_union_requires_compatibility(self, numbers, depts):
        with pytest.raises(SchemaError):
            algebra.union(numbers, depts)

    def test_difference_cancels_multiplicity(self, numbers):
        single_b = algebra.select(numbers, lambda r: r["name"] == "b")
        single_b = algebra.limit(single_b, 1)
        result = algebra.difference(numbers, single_b)
        assert len(result) == 3
        assert result.column_values("name").count("b") == 1

    def test_difference_self_is_empty(self, numbers):
        assert len(algebra.difference(numbers, numbers)) == 0

    def test_intersection_min_multiplicity(self, numbers):
        once = algebra.distinct(numbers)
        result = algebra.intersection(numbers, once)
        assert len(result) == 3

    def test_intersection_disjoint(self, numbers):
        empty = numbers.empty_like()
        assert len(algebra.intersection(numbers, empty)) == 0


class TestProductsAndJoins:
    def test_cartesian_size(self, depts, emps):
        result = algebra.cartesian_product(depts, emps)
        assert len(result) == len(depts) * len(emps)

    def test_cartesian_qualifies_overlap(self, depts, emps):
        result = algebra.cartesian_product(depts, emps)
        assert "depts.dept" in result.schema
        assert "emps.dept" in result.schema

    def test_theta_join(self, depts, emps):
        result = algebra.theta_join(
            depts, emps, lambda d, e: d["dept"] == e["dept"]
        )
        assert len(result) == 3

    def test_equi_join(self, depts, emps):
        result = algebra.equi_join(emps, depts, on=[("dept", "dept")])
        assert len(result) == 3
        heads = {row["head"] for row in result}
        assert heads == {"kim", "lee"}

    def test_equi_join_requires_on(self, depts, emps):
        with pytest.raises(QueryError):
            algebra.equi_join(depts, emps, on=[])

    def test_natural_join_shares_columns(self, depts, emps):
        result = algebra.natural_join(emps, depts)
        assert result.schema.column_names == ("emp", "dept", "salary", "head")
        assert len(result) == 3

    def test_natural_join_no_shared_is_product(self, numbers):
        other = Relation.from_tuples(
            schema("other", [("x", "INT")]), [(9,), (8,)]
        )
        result = algebra.natural_join(numbers, other)
        assert len(result) == 8

    def test_join_size_bound(self, depts, emps):
        result = algebra.equi_join(emps, depts, on=[("dept", "dept")])
        assert len(result) <= len(emps) * len(depts)


class TestSortAndLimit:
    def test_sort_ascending(self, numbers):
        result = algebra.sort(numbers, ["n"])
        assert result.column_values("n") == [1, 2, 2, 3]

    def test_sort_descending(self, numbers):
        result = algebra.sort(numbers, ["n"], descending=True)
        assert result.column_values("n") == [3, 2, 2, 1]

    def test_sort_none_first(self):
        rel = Relation.from_dicts(
            schema("t", [("n", "INT")]), [{"n": 2}, {"n": None}, {"n": 1}]
        )
        result = algebra.sort(rel, ["n"])
        assert result.column_values("n") == [None, 1, 2]

    def test_limit(self, numbers):
        assert len(algebra.limit(numbers, 2)) == 2

    def test_limit_negative(self, numbers):
        with pytest.raises(QueryError):
            algebra.limit(numbers, -1)


class TestAggregate:
    def test_group_count(self, emps):
        result = algebra.aggregate(
            emps, ["dept"], {"headcount": ("count", "emp")}
        )
        by_dept = {row["dept"]: row["headcount"] for row in result}
        assert by_dept == {"sales": 2, "acctg": 1, "ops": 1}

    def test_global_aggregates(self, emps):
        result = algebra.aggregate(
            emps,
            [],
            {
                "total": ("sum", "salary"),
                "mean": ("avg", "salary"),
                "low": ("min", "salary"),
                "high": ("max", "salary"),
            },
        )
        row = result.rows[0]
        assert row["total"] == 220
        assert row["mean"] == 55.0
        assert row["low"] == 40
        assert row["high"] == 70

    def test_empty_global_aggregate_yields_row(self, emps):
        empty = emps.empty_like()
        result = algebra.aggregate(empty, [], {"c": ("count", "emp")})
        assert len(result) == 1
        assert result.rows[0]["c"] == 0

    def test_count_skips_nulls(self):
        rel = Relation.from_dicts(
            schema("t", [("a", "INT")]), [{"a": 1}, {"a": None}]
        )
        result = algebra.aggregate(rel, [], {"c": ("count", "a")})
        assert result.rows[0]["c"] == 1

    def test_unknown_aggregate(self, emps):
        with pytest.raises(QueryError):
            algebra.aggregate(emps, [], {"x": ("median", "salary")})


class TestExtend:
    def test_adds_computed_column(self, emps):
        result = algebra.extend(
            emps, "double", "INT", lambda r: r["salary"] * 2
        )
        assert result.column_values("double") == [100, 120, 140, 80]

    def test_rejects_existing_column(self, emps):
        with pytest.raises(SchemaError):
            algebra.extend(emps, "salary", "INT", lambda r: 0)
