"""Unit tests for relations and rows."""

import pytest

from repro.errors import DomainError, SchemaError, UnknownColumnError
from repro.relational.relation import Relation, Row
from repro.relational.schema import schema


@pytest.fixture
def simple_schema():
    return schema("t", [("name", "STR"), ("n", "INT")], key=["name"])


class TestRow:
    def test_mapping_access(self, simple_schema):
        row = Row(simple_schema, {"name": "a", "n": 1})
        assert row["name"] == "a"
        assert dict(row) == {"name": "a", "n": 1}
        assert len(row) == 2

    def test_positional_access(self, simple_schema):
        row = Row(simple_schema, {"name": "a", "n": 1})
        assert row.at(1) == 1

    def test_unknown_column(self, simple_schema):
        row = Row(simple_schema, {"name": "a", "n": 1})
        with pytest.raises(UnknownColumnError):
            row["missing"]

    def test_values_validated(self, simple_schema):
        with pytest.raises(DomainError):
            Row(simple_schema, {"name": "a", "n": "xyz"})

    def test_replace(self, simple_schema):
        row = Row(simple_schema, {"name": "a", "n": 1})
        updated = row.replace(n=2)
        assert updated["n"] == 2
        assert row["n"] == 1  # original untouched

    def test_key_tuple(self, simple_schema):
        row = Row(simple_schema, {"name": "a", "n": 1})
        assert row.key_tuple() == ("a",)

    def test_key_tuple_requires_key(self):
        keyless = schema("t", [("a", "INT")])
        row = Row(keyless, {"a": 1})
        with pytest.raises(SchemaError):
            row.key_tuple()

    def test_equality_and_hash(self, simple_schema):
        a = Row(simple_schema, {"name": "a", "n": 1})
        b = Row(simple_schema, {"name": "a", "n": 1})
        assert a == b
        assert hash(a) == hash(b)


class TestRelationConstruction:
    def test_from_dicts(self, simple_schema):
        rel = Relation.from_dicts(simple_schema, [{"name": "a", "n": 1}])
        assert len(rel) == 1

    def test_from_tuples(self, simple_schema):
        rel = Relation.from_tuples(simple_schema, [("a", 1), ("b", 2)])
        assert rel.column_values("n") == [1, 2]

    def test_from_tuples_arity_checked(self, simple_schema):
        with pytest.raises(SchemaError):
            Relation.from_tuples(simple_schema, [("a",)])

    def test_empty_like(self, customer_relation):
        empty = customer_relation.empty_like()
        assert len(empty) == 0
        assert empty.schema == customer_relation.schema

    def test_copy_is_independent(self, customer_relation):
        copy = customer_relation.copy()
        copy.insert({"co_name": "New Co", "address": None, "employees": 1})
        assert len(copy) == 3
        assert len(customer_relation) == 2


class TestRelationMutation:
    def test_insert_validates(self, simple_schema):
        rel = Relation(simple_schema)
        with pytest.raises(DomainError):
            rel.insert({"name": "a", "n": "nope"})

    def test_insert_many(self, simple_schema):
        rel = Relation(simple_schema)
        count = rel.insert_many({"name": f"x{i}", "n": i} for i in range(5))
        assert count == 5
        assert len(rel) == 5

    def test_delete(self, customer_relation):
        removed = customer_relation.delete(lambda r: r["employees"] < 1000)
        assert removed == 1
        assert len(customer_relation) == 1

    def test_update(self, customer_relation):
        updated = customer_relation.update(
            lambda r: r["co_name"] == "Nut Co",
            lambda r: {"employees": r["employees"] + 1},
        )
        assert updated == 1
        assert customer_relation.lookup(co_name="Nut Co")[0]["employees"] == 701

    def test_clear(self, customer_relation):
        customer_relation.clear()
        assert len(customer_relation) == 0


class TestRelationAccess:
    def test_find(self, customer_relation):
        row = customer_relation.find(lambda r: r["employees"] > 1000)
        assert row is not None and row["co_name"] == "Fruit Co"

    def test_find_none(self, customer_relation):
        assert customer_relation.find(lambda r: False) is None

    def test_lookup(self, customer_relation):
        rows = customer_relation.lookup(co_name="Nut Co")
        assert len(rows) == 1

    def test_lookup_unknown_column(self, customer_relation):
        with pytest.raises(UnknownColumnError):
            customer_relation.lookup(bogus=1)

    def test_bag_equality_order_insensitive(self, simple_schema):
        a = Relation.from_tuples(simple_schema, [("a", 1), ("b", 2)])
        b = Relation.from_tuples(simple_schema, [("b", 2), ("a", 1)])
        assert a == b

    def test_bag_equality_multiplicity(self, simple_schema):
        a = Relation.from_tuples(simple_schema, [("a", 1), ("a", 1)])
        b = Relation.from_tuples(simple_schema, [("a", 1)])
        assert a != b


class TestRelationRender:
    def test_render_contains_values(self, customer_relation):
        text = customer_relation.render()
        assert "Fruit Co" in text
        assert "62 Lois Av" in text

    def test_render_title_and_truncation(self, customer_relation):
        text = customer_relation.render(max_rows=1, title="Table 1")
        assert text.startswith("Table 1")
        assert "1 more rows" in text

    def test_render_null_as_blank(self, simple_schema):
        rel = Relation.from_dicts(simple_schema, [{"name": "a", "n": None}])
        lines = rel.render().splitlines()
        assert lines[-1].rstrip() == "a    |"


class TestRelationSerialization:
    def test_to_dicts(self, customer_relation):
        dicts = customer_relation.to_dicts()
        assert dicts[0]["co_name"] == "Fruit Co"

    def test_to_dict_shape(self, customer_relation):
        data = customer_relation.to_dict()
        assert data["schema"]["name"] == "customer"
        assert len(data["rows"]) == 2
