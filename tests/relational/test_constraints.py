"""Unit tests for integrity constraints via the database catalog."""

import pytest

from repro.errors import ConstraintViolation, SchemaError
from repro.relational.catalog import Database
from repro.relational.constraints import (
    CheckConstraint,
    ForeignKeyConstraint,
    NotNullConstraint,
    PrimaryKeyConstraint,
    UniqueConstraint,
)
from repro.relational.schema import schema


@pytest.fixture
def db():
    database = Database("test")
    database.create_relation(
        schema("dept", [("name", "STR"), ("floor", "INT")], key=["name"])
    )
    database.create_relation(
        schema(
            "emp",
            [("emp_id", "INT"), ("name", "STR"), ("dept", "STR")],
            key=["emp_id"],
        )
    )
    return database


class TestPrimaryKey:
    def test_auto_registered(self, db):
        db.insert("dept", {"name": "sales", "floor": 1})
        with pytest.raises(ConstraintViolation):
            db.insert("dept", {"name": "sales", "floor": 2})

    def test_rejects_null_key(self, db):
        with pytest.raises(ConstraintViolation):
            db.insert("dept", {"name": None, "floor": 1})


class TestNotNull:
    def test_rejects_null(self, db):
        db.add_constraint(NotNullConstraint("nn_floor", "dept", ["floor"]))
        with pytest.raises(ConstraintViolation):
            db.insert("dept", {"name": "ops", "floor": None})

    def test_accepts_value(self, db):
        db.add_constraint(NotNullConstraint("nn_floor", "dept", ["floor"]))
        db.insert("dept", {"name": "ops", "floor": 3})

    def test_requires_columns(self):
        with pytest.raises(SchemaError):
            NotNullConstraint("nn", "t", [])


class TestUnique:
    def test_rejects_duplicates(self, db):
        db.add_constraint(UniqueConstraint("u_floor", "dept", ["floor"]))
        db.insert("dept", {"name": "a", "floor": 1})
        with pytest.raises(ConstraintViolation):
            db.insert("dept", {"name": "b", "floor": 1})

    def test_nulls_exempt(self, db):
        db.add_constraint(UniqueConstraint("u_floor", "dept", ["floor"]))
        db.insert("dept", {"name": "a", "floor": None})
        db.insert("dept", {"name": "b", "floor": None})

    def test_existing_data_validated_on_registration(self, db):
        db.insert("dept", {"name": "a", "floor": 1})
        db.insert("dept", {"name": "b", "floor": 1})
        with pytest.raises(ConstraintViolation):
            db.add_constraint(UniqueConstraint("u_floor", "dept", ["floor"]))

    def test_registration_passes_clean_data(self, db):
        db.insert("dept", {"name": "a", "floor": 1})
        db.insert("dept", {"name": "b", "floor": 2})
        db.add_constraint(UniqueConstraint("u_floor", "dept", ["floor"]))


class TestForeignKey:
    def _wire(self, db):
        db.add_constraint(
            ForeignKeyConstraint("fk_emp_dept", "emp", ["dept"], "dept", ["name"])
        )

    def test_rejects_dangling(self, db):
        self._wire(db)
        with pytest.raises(ConstraintViolation):
            db.insert("emp", {"emp_id": 1, "name": "ann", "dept": "ghost"})

    def test_accepts_match(self, db):
        self._wire(db)
        db.insert("dept", {"name": "sales", "floor": 1})
        db.insert("emp", {"emp_id": 1, "name": "ann", "dept": "sales"})

    def test_null_fk_allowed(self, db):
        self._wire(db)
        db.insert("emp", {"emp_id": 1, "name": "ann", "dept": None})

    def test_restrict_on_delete(self, db):
        self._wire(db)
        db.insert("dept", {"name": "sales", "floor": 1})
        db.insert("emp", {"emp_id": 1, "name": "ann", "dept": "sales"})
        with pytest.raises(ConstraintViolation):
            db.delete("dept", lambda r: r["name"] == "sales")

    def test_delete_unreferenced_ok(self, db):
        self._wire(db)
        db.insert("dept", {"name": "sales", "floor": 1})
        assert db.delete("dept", lambda r: r["name"] == "sales") == 1

    def test_restrict_on_key_update(self, db):
        self._wire(db)
        db.insert("dept", {"name": "sales", "floor": 1})
        db.insert("emp", {"emp_id": 1, "name": "ann", "dept": "sales"})
        with pytest.raises(ConstraintViolation):
            db.update(
                "dept", lambda r: r["name"] == "sales", {"name": "renamed"}
            )

    def test_non_key_update_of_referenced_row_ok(self, db):
        self._wire(db)
        db.insert("dept", {"name": "sales", "floor": 1})
        db.insert("emp", {"emp_id": 1, "name": "ann", "dept": "sales"})
        assert (
            db.update("dept", lambda r: r["name"] == "sales", {"floor": 9})
            == 1
        )

    def test_key_update_of_unreferenced_row_ok(self, db):
        self._wire(db)
        db.insert("dept", {"name": "sales", "floor": 1})
        assert (
            db.update(
                "dept", lambda r: r["name"] == "sales", {"name": "renamed"}
            )
            == 1
        )

    def test_mismatched_columns(self):
        with pytest.raises(SchemaError):
            ForeignKeyConstraint("fk", "emp", ["a", "b"], "dept", ["x"])


class TestCheck:
    def test_rejects_failing_predicate(self, db):
        db.add_constraint(
            CheckConstraint(
                "floor_positive",
                "dept",
                lambda r: r["floor"] is None or r["floor"] > 0,
                "floor must be positive",
            )
        )
        with pytest.raises(ConstraintViolation) as excinfo:
            db.insert("dept", {"name": "base", "floor": -1})
        assert "floor must be positive" in str(excinfo.value)

    def test_value_error_becomes_violation(self, db):
        def raising(row):
            raise ValueError("boom")

        db.add_constraint(CheckConstraint("boom", "dept", raising))
        with pytest.raises(ConstraintViolation):
            db.insert("dept", {"name": "x", "floor": 1})


class TestUpdateEnforcement:
    def test_update_checks_constraints(self, db):
        db.insert("dept", {"name": "a", "floor": 1})
        db.insert("dept", {"name": "b", "floor": 2})
        with pytest.raises(ConstraintViolation):
            db.update(
                "dept",
                lambda r: r["name"] == "b",
                {"name": "a"},
            )

    def test_update_to_own_key_allowed(self, db):
        db.insert("dept", {"name": "a", "floor": 1})
        count = db.update("dept", lambda r: r["name"] == "a", {"floor": 9})
        assert count == 1
