"""Fast path ≡ naive path for the plain relational algebra.

The operators in :mod:`repro.relational.algebra` move pre-validated
tuples through trusted constructors and cached column positions.  These
properties pin the contract: the fast path must be observationally
identical to the original execution strategy (per-row name lookups,
dict round-trips, re-validating inserts) reproduced in
:mod:`repro.experiments.naive`.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnknownColumnError
from repro.experiments import naive
from repro.relational import algebra
from repro.relational.relation import Relation
from repro.relational.schema import schema

VALUES = {
    "INT": st.none() | st.integers(min_value=-1000, max_value=1000),
    "STR": st.none() | st.text(alphabet="abcdef", max_size=6),
    "FLOAT": st.none()
    | st.floats(min_value=-100, max_value=100, allow_nan=False),
}
DOMAINS = st.sampled_from(["INT", "STR", "FLOAT"])


@st.composite
def relation_cases(draw, min_cols: int = 1, max_cols: int = 4, max_rows: int = 10):
    """A relation with a random schema over INT/STR/FLOAT, NULLs allowed."""
    n_cols = draw(st.integers(min_value=min_cols, max_value=max_cols))
    domains = [draw(DOMAINS) for _ in range(n_cols)]
    sch = schema("t", [(f"c{i}", d) for i, d in enumerate(domains)])
    rows = draw(
        st.lists(
            st.tuples(*(VALUES[d] for d in domains)), max_size=max_rows
        )
    )
    return Relation.from_tuples(sch, rows)


@st.composite
def join_cases(draw, max_rows: int = 8):
    """Two relations sharing a small join-key space (so matches occur)."""
    keys = st.integers(min_value=0, max_value=3)
    left = Relation.from_tuples(
        schema("l", [("k", "INT"), ("a", "STR")]),
        draw(st.lists(st.tuples(keys, VALUES["STR"]), max_size=max_rows)),
    )
    right = Relation.from_tuples(
        schema("r", [("k", "INT"), ("b", "INT")]),
        draw(st.lists(st.tuples(keys, VALUES["INT"]), max_size=max_rows)),
    )
    return left, right


def assert_same(fast: Relation, slow: Relation) -> None:
    """Identical schema and identical rows in identical order."""
    assert fast.schema.column_names == slow.schema.column_names
    assert [r.values_tuple() for r in fast] == [
        r.values_tuple() for r in slow
    ]


class TestUnknownColumn:
    def test_row_lookup_raises_unknown_column_error(self, customer_relation):
        row = customer_relation.rows[0]
        with pytest.raises(UnknownColumnError):
            row["no_such_column"]

    def test_known_lookup_still_works(self, customer_relation):
        assert customer_relation.rows[0]["co_name"] == "Fruit Co"


class TestFastEqualsNaive:
    @given(relation_cases())
    def test_select(self, rel):
        predicate = lambda r: r.at(0) is not None
        assert_same(
            algebra.select(rel, predicate), naive.naive_select(rel, predicate)
        )

    @given(relation_cases(min_cols=2), st.data())
    def test_project(self, rel, data):
        columns = data.draw(
            st.lists(
                st.sampled_from(rel.schema.column_names),
                min_size=1,
                unique=True,
            )
        )
        assert_same(
            algebra.project(rel, columns), naive.naive_project(rel, columns)
        )

    @given(join_cases())
    def test_equi_join(self, relations):
        left, right = relations
        assert_same(
            algebra.equi_join(left, right, [("k", "k")]),
            naive.naive_equi_join(left, right, [("k", "k")]),
        )
