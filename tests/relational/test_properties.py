"""Property-based tests for the relational algebra (hypothesis).

These verify the classical algebraic laws the engine must respect:
selection cascades and commutes, projection is idempotent, set
operations respect bag semantics, joins are bounded by the product, and
serialization round-trips.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import algebra
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, schema

NAMES = st.text(
    alphabet="abcdefghij", min_size=1, max_size=6
)
INTS = st.integers(min_value=-1000, max_value=1000)


@st.composite
def relations(draw, min_rows: int = 0, max_rows: int = 12) -> Relation:
    """A small two-column relation (name STR, n INT)."""
    rows = draw(
        st.lists(
            st.tuples(NAMES, INTS), min_size=min_rows, max_size=max_rows
        )
    )
    return Relation.from_tuples(
        schema("t", [("name", "STR"), ("n", "INT")]), rows
    )


def bag(relation: Relation) -> list:
    """Canonical bag representation for equality checks."""
    return sorted((row.values_tuple() for row in relation), key=repr)


class TestSelectionLaws:
    @given(relations())
    def test_selection_cascade(self, rel):
        p1 = lambda r: r["n"] > 0
        p2 = lambda r: r["name"] < "f"
        combined = algebra.select(rel, lambda r: p1(r) and p2(r))
        cascaded = algebra.select(algebra.select(rel, p1), p2)
        assert bag(combined) == bag(cascaded)

    @given(relations())
    def test_selection_commutes(self, rel):
        p1 = lambda r: r["n"] % 2 == 0
        p2 = lambda r: len(r["name"]) > 2
        a = algebra.select(algebra.select(rel, p1), p2)
        b = algebra.select(algebra.select(rel, p2), p1)
        assert bag(a) == bag(b)

    @given(relations())
    def test_selection_shrinks(self, rel):
        result = algebra.select(rel, lambda r: r["n"] > 0)
        assert len(result) <= len(rel)


class TestProjectionLaws:
    @given(relations())
    def test_projection_idempotent(self, rel):
        once = algebra.project(rel, ["name"])
        twice = algebra.project(once, ["name"])
        assert bag(once) == bag(twice)

    @given(relations())
    def test_projection_preserves_cardinality(self, rel):
        assert len(algebra.project(rel, ["n"])) == len(rel)


class TestDistinctLaws:
    @given(relations())
    def test_distinct_idempotent(self, rel):
        once = algebra.distinct(rel)
        assert bag(once) == bag(algebra.distinct(once))

    @given(relations())
    def test_distinct_no_duplicates(self, rel):
        result = algebra.distinct(rel)
        values = [row.values_tuple() for row in result]
        assert len(values) == len(set(values))


class TestBagSetLaws:
    @given(relations(), relations())
    def test_union_cardinality(self, a, b):
        assert len(algebra.union(a, b)) == len(a) + len(b)

    @given(relations(), relations())
    def test_union_commutes_as_bag(self, a, b):
        assert bag(algebra.union(a, b)) == bag(algebra.union(b, a))

    @given(relations())
    def test_difference_with_self_empty(self, rel):
        assert len(algebra.difference(rel, rel)) == 0

    @given(relations(), relations())
    def test_difference_bounded(self, a, b):
        result = algebra.difference(a, b)
        assert len(result) <= len(a)

    @given(relations(), relations())
    def test_intersection_commutes_as_bag(self, a, b):
        assert bag(algebra.intersection(a, b)) == bag(
            algebra.intersection(b, a)
        )

    @given(relations(), relations())
    def test_inclusion_exclusion(self, a, b):
        # |A| = |A − B| + |A ∩ B| under bag semantics.
        assert len(a) == len(algebra.difference(a, b)) + len(
            algebra.intersection(a, b)
        )


class TestJoinLaws:
    @settings(max_examples=40)
    @given(relations(max_rows=8), relations(max_rows=8))
    def test_join_bounded_by_product(self, a, b):
        b2 = algebra.rename(b, {"name": "name2", "n": "n2"}, new_name="u")
        joined = algebra.equi_join(a, b2, on=[("n", "n2")])
        assert len(joined) <= len(a) * len(b2)

    @settings(max_examples=40)
    @given(relations(max_rows=8))
    def test_self_join_on_key_superset_of_distinct(self, rel):
        other = algebra.rename(rel, new_name="u")
        joined = algebra.equi_join(rel, other, on=[("name", "name")])
        # Every row matches at least itself.
        assert len(joined) >= len(rel)


class TestSortLimitLaws:
    @given(relations())
    def test_sort_is_permutation(self, rel):
        assert bag(algebra.sort(rel, ["n"])) == bag(rel)

    @given(relations())
    def test_sorted_order(self, rel):
        result = algebra.sort(rel, ["n"])
        values = result.column_values("n")
        assert values == sorted(values)

    @given(relations(), st.integers(min_value=0, max_value=20))
    def test_limit_bounds(self, rel, n):
        assert len(algebra.limit(rel, n)) == min(n, len(rel))


class TestSerializationRoundTrip:
    @given(relations())
    def test_schema_round_trip(self, rel):
        restored = RelationSchema.from_dict(rel.schema.to_dict())
        assert restored == rel.schema
