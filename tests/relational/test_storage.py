"""Unit tests for JSON persistence."""

import datetime as dt

import pytest

from repro.errors import SchemaError
from repro.relational.storage import (
    database_from_dict,
    database_to_dict,
    decode_value,
    encode_value,
    load,
    relation_from_dict,
    relation_to_dict,
    save,
    tagged_relation_from_dict,
    tagged_relation_to_dict,
)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value", [None, True, 42, 3.14, "text", dt.date(1991, 10, 24),
                  dt.datetime(1991, 10, 24, 12, 30)]
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_date_marker_distinct_from_dict(self):
        encoded = encode_value(dt.date(1991, 1, 1))
        assert encoded == {"$type": "date", "value": "1991-01-01"}

    def test_unserializable_rejected(self):
        with pytest.raises(SchemaError):
            encode_value(object())

    def test_unknown_marker_rejected(self):
        with pytest.raises(SchemaError):
            decode_value({"$type": "alien", "value": 1})


class TestRelationRoundTrip:
    def test_round_trip(self, customer_relation):
        restored = relation_from_dict(relation_to_dict(customer_relation))
        assert restored == customer_relation
        assert restored.schema == customer_relation.schema

    def test_dates_survive(self):
        from repro.relational.relation import Relation
        from repro.relational.schema import schema

        rel = Relation.from_dicts(
            schema("t", [("d", "DATE")]), [{"d": dt.date(1991, 1, 2)}]
        )
        restored = relation_from_dict(relation_to_dict(rel))
        assert restored.rows[0]["d"] == dt.date(1991, 1, 2)

    def test_kind_checked(self, customer_relation):
        data = relation_to_dict(customer_relation)
        data["kind"] = "bogus"
        with pytest.raises(SchemaError):
            relation_from_dict(data)


class TestTaggedRoundTrip:
    def test_round_trip(self, tagged_customers):
        restored = tagged_relation_from_dict(
            tagged_relation_to_dict(tagged_customers)
        )
        assert len(restored) == len(tagged_customers)
        for original, copy in zip(tagged_customers, restored):
            assert original == copy

    def test_meta_tags_survive(self, customer_schema, customer_tag_schema):
        from repro.tagging.cell import QualityCell
        from repro.tagging.indicators import IndicatorValue
        from repro.tagging.meta import stamp_meta
        from repro.tagging.relation import TaggedRelation

        rel = TaggedRelation(customer_schema, customer_tag_schema)
        rel.insert(
            {
                "co_name": "X",
                "address": QualityCell(
                    "1 St",
                    [
                        stamp_meta(
                            IndicatorValue("source", "acct'g"),
                            recorded_by="etl",
                            confidence=0.8,
                        )
                    ],
                ),
                "employees": 1,
            }
        )
        restored = tagged_relation_from_dict(tagged_relation_to_dict(rel))
        tag = restored.rows[0]["address"].tag("source")
        assert tag.meta_dict() == {"confidence": 0.8, "recorded_by": "etl"}

    def test_tag_schema_survives(self, tagged_customers):
        restored = tagged_relation_from_dict(
            tagged_relation_to_dict(tagged_customers)
        )
        assert restored.tag_schema == tagged_customers.tag_schema


class TestDatabaseRoundTrip:
    def test_round_trip(self, customer_database):
        restored = database_from_dict(database_to_dict(customer_database))
        assert restored.name == customer_database.name
        assert restored.relation_names == customer_database.relation_names
        assert restored.relation("customer") == customer_database.relation(
            "customer"
        )

    def test_keys_reenforced(self, customer_database):
        from repro.errors import ConstraintViolation

        restored = database_from_dict(database_to_dict(customer_database))
        with pytest.raises(ConstraintViolation):
            restored.insert(
                "customer",
                {"co_name": "Fruit Co", "address": "x", "employees": 1},
            )


class TestFileHelpers:
    def test_save_load_relation(self, customer_relation, tmp_path):
        path = save(customer_relation, tmp_path / "rel.json")
        assert path.exists()
        restored = load(path)
        assert restored == customer_relation

    def test_save_load_tagged(self, tagged_customers, tmp_path):
        path = save(tagged_customers, tmp_path / "tagged.json")
        restored = load(path)
        assert restored.rows[1]["address"].tag_value("source") == "acct'g"

    def test_save_load_database(self, customer_database, tmp_path):
        path = save(customer_database, tmp_path / "db.json")
        restored = load(path)
        assert len(restored.relation("customer")) == 2

    def test_save_rejects_unknown(self, tmp_path):
        with pytest.raises(SchemaError):
            save({"not": "supported"}, tmp_path / "x.json")

    def test_load_rejects_unknown_kind(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text('{"kind": "mystery"}')
        with pytest.raises(SchemaError):
            load(target)
