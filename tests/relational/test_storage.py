"""Unit tests for JSON persistence."""

import datetime as dt

import pytest

from repro.errors import SchemaError
from repro.relational.storage import (
    database_from_dict,
    database_to_dict,
    decode_value,
    encode_value,
    load,
    relation_from_dict,
    relation_to_dict,
    save,
    tagged_relation_from_dict,
    tagged_relation_to_dict,
)


class TestValueCodec:
    @pytest.mark.parametrize(
        "value", [None, True, 42, 3.14, "text", dt.date(1991, 10, 24),
                  dt.datetime(1991, 10, 24, 12, 30)]
    )
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_date_marker_distinct_from_dict(self):
        encoded = encode_value(dt.date(1991, 1, 1))
        assert encoded == {"$type": "date", "value": "1991-01-01"}

    def test_unserializable_rejected(self):
        with pytest.raises(SchemaError):
            encode_value(object())

    def test_unknown_marker_rejected(self):
        with pytest.raises(SchemaError):
            decode_value({"$type": "alien", "value": 1})


class TestRelationRoundTrip:
    def test_round_trip(self, customer_relation):
        restored = relation_from_dict(relation_to_dict(customer_relation))
        assert restored == customer_relation
        assert restored.schema == customer_relation.schema

    def test_dates_survive(self):
        from repro.relational.relation import Relation
        from repro.relational.schema import schema

        rel = Relation.from_dicts(
            schema("t", [("d", "DATE")]), [{"d": dt.date(1991, 1, 2)}]
        )
        restored = relation_from_dict(relation_to_dict(rel))
        assert restored.rows[0]["d"] == dt.date(1991, 1, 2)

    def test_kind_checked(self, customer_relation):
        data = relation_to_dict(customer_relation)
        data["kind"] = "bogus"
        with pytest.raises(SchemaError):
            relation_from_dict(data)


class TestTaggedRoundTrip:
    def test_round_trip(self, tagged_customers):
        restored = tagged_relation_from_dict(
            tagged_relation_to_dict(tagged_customers)
        )
        assert len(restored) == len(tagged_customers)
        for original, copy in zip(tagged_customers, restored):
            assert original == copy

    def test_meta_tags_survive(self, customer_schema, customer_tag_schema):
        from repro.tagging.cell import QualityCell
        from repro.tagging.indicators import IndicatorValue
        from repro.tagging.meta import stamp_meta
        from repro.tagging.relation import TaggedRelation

        rel = TaggedRelation(customer_schema, customer_tag_schema)
        rel.insert(
            {
                "co_name": "X",
                "address": QualityCell(
                    "1 St",
                    [
                        stamp_meta(
                            IndicatorValue("source", "acct'g"),
                            recorded_by="etl",
                            confidence=0.8,
                        )
                    ],
                ),
                "employees": 1,
            }
        )
        restored = tagged_relation_from_dict(tagged_relation_to_dict(rel))
        tag = restored.rows[0]["address"].tag("source")
        assert tag.meta_dict() == {"confidence": 0.8, "recorded_by": "etl"}

    def test_tag_schema_survives(self, tagged_customers):
        restored = tagged_relation_from_dict(
            tagged_relation_to_dict(tagged_customers)
        )
        assert restored.tag_schema == tagged_customers.tag_schema


class TestDatabaseRoundTrip:
    def test_round_trip(self, customer_database):
        restored = database_from_dict(database_to_dict(customer_database))
        assert restored.name == customer_database.name
        assert restored.relation_names == customer_database.relation_names
        assert restored.relation("customer") == customer_database.relation(
            "customer"
        )

    def test_keys_reenforced(self, customer_database):
        from repro.errors import ConstraintViolation

        restored = database_from_dict(database_to_dict(customer_database))
        with pytest.raises(ConstraintViolation):
            restored.insert(
                "customer",
                {"co_name": "Fruit Co", "address": "x", "employees": 1},
            )


class TestFileHelpers:
    def test_save_load_relation(self, customer_relation, tmp_path):
        path = save(customer_relation, tmp_path / "rel.json")
        assert path.exists()
        restored = load(path)
        assert restored == customer_relation

    def test_save_load_tagged(self, tagged_customers, tmp_path):
        path = save(tagged_customers, tmp_path / "tagged.json")
        restored = load(path)
        assert restored.rows[1]["address"].tag_value("source") == "acct'g"

    def test_save_load_database(self, customer_database, tmp_path):
        path = save(customer_database, tmp_path / "db.json")
        restored = load(path)
        assert len(restored.relation("customer")) == 2

    def test_save_rejects_unknown(self, tmp_path):
        with pytest.raises(SchemaError):
            save({"not": "supported"}, tmp_path / "x.json")

    def test_load_rejects_unknown_kind(self, tmp_path):
        target = tmp_path / "bad.json"
        target.write_text('{"kind": "mystery"}')
        with pytest.raises(SchemaError):
            load(target)


class TestAtomicSave:
    """Regression: save() used to write the target in place, so a crash
    mid-write left a torn snapshot."""

    def test_failure_mid_write_preserves_previous_snapshot(
        self, customer_relation, tmp_path, monkeypatch
    ):
        target = tmp_path / "snap.json"
        save(customer_relation, target)
        before = target.read_text()

        import json as json_module

        def exploding_dump(*args, **kwargs):
            handle = args[1]
            handle.write('{"kind": "relation", "rows": [{"truncat')
            raise OSError("disk full")

        monkeypatch.setattr(json_module, "dump", exploding_dump)
        with pytest.raises(OSError):
            save(customer_relation, target)
        # The old snapshot survived byte-for-byte and still loads.
        assert target.read_text() == before
        assert load(target) == customer_relation

    def test_failure_leaves_no_stray_temp_files(
        self, customer_relation, tmp_path, monkeypatch
    ):
        target = tmp_path / "snap.json"

        import json as json_module

        monkeypatch.setattr(
            json_module,
            "dump",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError):
            save(customer_relation, target)
        assert list(tmp_path.iterdir()) == []

    def test_encode_error_before_any_write_leaves_target_absent(
        self, tmp_path
    ):
        target = tmp_path / "snap.json"
        with pytest.raises(SchemaError):
            save({"not": "supported"}, target)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_save_into_current_directory(self, customer_relation, tmp_path, monkeypatch):
        # A bare filename has an empty parent; the temp file must still
        # land next to it.
        monkeypatch.chdir(tmp_path)
        path = save(customer_relation, "rel.json")
        assert load(path) == customer_relation


class TestPartitionedStorage:
    def _events(self, buckets=8, count=40):
        from repro.relational import hash_partitions
        from repro.relational.relation import Relation
        from repro.relational.schema import schema

        relation = Relation(
            schema("events", [("id", "INT"), ("region", "STR")])
        )
        relation.repartition(hash_partitions("region", buckets))
        for i in range(count):
            relation.insert({"id": i, "region": ["a", "b", "c", "d"][i % 4]})
        return relation

    def test_directory_per_partition_layout(self, tmp_path):
        relation = self._events()
        target = tmp_path / "events"
        save(relation, target)
        assert target.is_dir()
        assert (target / "_meta.json").is_file()
        buckets = sorted(target.glob("key=*"))
        assert buckets  # only non-empty buckets are written
        for bucket_dir in buckets:
            assert (bucket_dir / "part.json").is_file()

    def test_round_trip_preserves_layout_and_rows(self, tmp_path):
        relation = self._events()
        target = tmp_path / "events"
        save(relation, target)
        restored = load(target)
        assert restored.partition_spec == relation.partition_spec
        assert sorted(r.values_tuple() for r in restored.rows) == sorted(
            r.values_tuple() for r in relation.rows
        )
        assert [len(p) for p in restored.partitions()] == [
            len(p) for p in relation.partitions()
        ]
        assert not restored.dirty_partitions

    def test_incremental_save_rewrites_only_dirty(self, tmp_path):
        relation = self._events()
        target = tmp_path / "events"
        save(relation, target)
        assert not relation.dirty_partitions
        spec = relation.partition_spec
        bucket = spec.bucket_of("a")
        before = {
            p: (p / "part.json").stat().st_mtime_ns
            for p in target.glob("key=*")
        }
        relation.insert({"id": 1000, "region": "a"})
        save(relation, target)
        after = {
            p: (p / "part.json").stat().st_mtime_ns
            for p in target.glob("key=*")
        }
        changed = {p.name for p in before if before[p] != after[p]}
        assert changed == {f"key={bucket}"}
        assert sorted(r.values_tuple() for r in load(target).rows) == sorted(
            r.values_tuple() for r in relation.rows
        )

    def test_narrower_relayout_drops_stale_bucket_dirs(self, tmp_path):
        from repro.relational import hash_partitions

        relation = self._events(buckets=8)
        target = tmp_path / "events"
        save(relation, target)
        relation.repartition(hash_partitions("region", 2))
        save(relation, target)
        stale = [
            int(p.name.split("=")[1])
            for p in target.glob("key=*")
        ]
        assert all(bucket < 2 for bucket in stale)
        restored = load(target)
        assert restored.partition_spec.count == 2
        assert len(restored) == len(relation)

    def test_tagged_partitioned_round_trip(self, tmp_path):
        from repro.relational import hash_partitions
        from repro.relational.schema import schema
        from repro.tagging.indicators import IndicatorDefinition, TagSchema
        from repro.tagging.relation import TaggedRelation

        relation = TaggedRelation(
            schema("t", [("id", "INT"), ("g", "STR")]),
            TagSchema(indicators=[IndicatorDefinition("source")]),
        )
        relation.repartition(hash_partitions("g", 4))
        for i in range(12):
            relation.insert({"id": i, "g": ["x", "y"][i % 2]})
        target = tmp_path / "t"
        save(relation, target)
        restored = load(target)
        assert restored.partition_spec == relation.partition_spec
        assert len(restored) == 12
        assert restored.tag_schema.indicator_names == ("source",)

    def test_database_round_trip_keeps_partitioning(self, tmp_path):
        from repro.relational import hash_partitions
        from repro.relational.catalog import Database
        from repro.relational.schema import schema

        database = Database("d")
        relation = database.create_relation(
            schema("events", [("id", "INT"), ("region", "STR")]),
            enforce_key=False,
            partition_by=hash_partitions("region", 4),
        )
        for i in range(10):
            relation.insert({"id": i, "region": ["a", "b"][i % 2]})
        restored = database_from_dict(database_to_dict(database))
        live = restored.relation("events")
        assert live.partition_spec == relation.partition_spec
        assert sum(len(p) for p in live.partitions()) == 10
