"""Unit tests for the database catalog."""

import pytest

from repro.errors import SchemaError, UnknownRelationError
from repro.relational.catalog import Database
from repro.relational.constraints import ForeignKeyConstraint, UniqueConstraint
from repro.relational.schema import schema


class TestCatalogBasics:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            Database("")

    def test_create_and_lookup(self, customer_database):
        assert "customer" in customer_database
        assert len(customer_database.relation("customer")) == 2

    def test_duplicate_relation_rejected(self, customer_database, customer_schema):
        with pytest.raises(SchemaError):
            customer_database.create_relation(customer_schema)

    def test_unknown_relation(self, customer_database):
        with pytest.raises(UnknownRelationError):
            customer_database.relation("ghost")

    def test_relation_names_sorted(self):
        db = Database("x")
        db.create_relation(schema("zeta", [("a", "INT")]))
        db.create_relation(schema("alpha", [("a", "INT")]))
        assert db.relation_names == ("alpha", "zeta")

    def test_drop_relation(self, customer_database):
        customer_database.drop_relation("customer")
        assert "customer" not in customer_database

    def test_drop_removes_constraints(self, customer_database):
        names_before = [c.name for c in customer_database.constraints]
        assert "pk_customer" in names_before
        customer_database.drop_relation("customer")
        assert customer_database.constraints == ()

    def test_drop_removes_referencing_fks(self):
        db = Database("x")
        db.create_relation(schema("a", [("k", "STR")], key=["k"]))
        db.create_relation(schema("b", [("k", "STR"), ("fk", "STR")], key=["k"]))
        db.add_constraint(ForeignKeyConstraint("fk_b_a", "b", ["fk"], "a", ["k"]))
        db.drop_relation("a")
        assert all(c.name != "fk_b_a" for c in db.constraints)


class TestConstraintRegistry:
    def test_duplicate_constraint_name(self, customer_database):
        customer_database.add_constraint(
            UniqueConstraint("u_addr", "customer", ["address"])
        )
        with pytest.raises(SchemaError):
            customer_database.add_constraint(
                UniqueConstraint("u_addr", "customer", ["employees"])
            )

    def test_constraint_unknown_relation(self, customer_database):
        with pytest.raises(UnknownRelationError):
            customer_database.add_constraint(
                UniqueConstraint("u_x", "ghost", ["a"])
            )

    def test_constraints_for(self, customer_database):
        constraints = customer_database.constraints_for("customer")
        assert any(c.name == "pk_customer" for c in constraints)

    def test_key_enforcement_optional(self):
        db = Database("x")
        db.create_relation(
            schema("t", [("k", "STR")], key=["k"]), enforce_key=False
        )
        db.insert("t", {"k": "a"})
        db.insert("t", {"k": "a"})  # no PK constraint registered
        assert len(db.relation("t")) == 2


class TestCatalogSerialization:
    def test_to_dict(self, customer_database):
        data = customer_database.to_dict()
        assert data["name"] == "corp"
        assert "customer" in data["relations"]
        assert len(data["relations"]["customer"]["rows"]) == 2
