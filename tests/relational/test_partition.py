"""Unit tests for first-class partitioning (PartitionSpec + relations).

The bucket hash must be stable across processes (the on-disk
``key=<bucket>`` layout depends on it), routing must agree with the
flat canonical row list under every mutation, and dirty-partition
tracking must mark exactly the shards a mutation touched.
"""

import datetime as dt

import pytest

from repro.errors import SchemaError
from repro.relational.partition import (
    PartitionSpec,
    hash_partitions,
    range_partitions,
    stable_bucket_hash,
)
from repro.relational.relation import Relation
from repro.relational.schema import schema
from repro.tagging.indicators import IndicatorDefinition, TagSchema
from repro.tagging.relation import TaggedRelation

EVENTS = schema("events", [("id", "INT"), ("region", "STR"), ("n", "INT")])


def make_events(count=40, spec=None):
    relation = Relation(EVENTS)
    if spec is not None:
        relation.repartition(spec)
    for i in range(count):
        relation.insert(
            {"id": i, "region": ["a", "b", "c", "d"][i % 4], "n": i % 7}
        )
    return relation


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_bucket_hash("north") == stable_bucket_hash("north")

    def test_known_anchors(self):
        # Pinned values: a change here silently reshuffles every
        # on-disk key=<bucket> directory written by earlier versions.
        assert stable_bucket_hash("north") % 64 == 28
        assert stable_bucket_hash(7) % 64 == 14
        assert stable_bucket_hash(None) % 64 == 49

    def test_numeric_unification(self):
        # 7, 7.0 and True/1 compare equal in predicates, so equality
        # pruning requires them to land in the same bucket.
        assert stable_bucket_hash(7) == stable_bucket_hash(7.0)
        assert stable_bucket_hash(1) == stable_bucket_hash(True)
        assert stable_bucket_hash(0) == stable_bucket_hash(False)

    def test_types_do_not_collide_with_their_reprs(self):
        assert stable_bucket_hash(7) != stable_bucket_hash("7")
        assert stable_bucket_hash(None) != stable_bucket_hash("None")

    def test_temporal_values(self):
        day = dt.date(2026, 8, 8)
        stamp = dt.datetime(2026, 8, 8, 12, 0)
        assert stable_bucket_hash(day) == stable_bucket_hash(day)
        assert stable_bucket_hash(day) != stable_bucket_hash(stamp)

    def test_non_finite_floats_hash(self):
        assert isinstance(stable_bucket_hash(float("inf")), int)
        assert isinstance(stable_bucket_hash(float("nan")), int)


class TestPartitionSpec:
    def test_hash_spec(self):
        spec = hash_partitions("region", 8)
        assert spec.kind == "hash"
        assert spec.count == 8
        assert 0 <= spec.bucket_of("x") < 8
        assert spec.describe() == "hash(region, 8)"

    def test_range_spec(self):
        spec = range_partitions("n", [10, 20])
        assert spec.count == 3
        assert spec.bucket_of(5) == 0
        assert spec.bucket_of(10) == 1  # bounds are exclusive upper
        assert spec.bucket_of(19) == 1
        assert spec.bucket_of(20) == 2
        assert spec.bucket_of(None) == 0
        assert spec.describe() == "range(n, bounds=[10, 20])"

    def test_validation(self):
        with pytest.raises(SchemaError):
            hash_partitions("region", 0)
        with pytest.raises(SchemaError):
            range_partitions("n", [])
        with pytest.raises(SchemaError):
            range_partitions("n", [20, 10])
        with pytest.raises(SchemaError):
            PartitionSpec("hash", "region", buckets=4, bounds=(1,))
        with pytest.raises(SchemaError):
            PartitionSpec("blorp", "region", buckets=4)

    def test_dict_round_trip(self):
        for spec in (hash_partitions("region", 8), range_partitions("n", [10])):
            assert PartitionSpec.from_dict(spec.to_dict()) == spec


class TestRelationPartitioning:
    def test_routing_covers_every_row(self):
        relation = make_events(spec=hash_partitions("region", 8))
        spec = relation.partition_spec
        assert sum(len(p) for p in relation.partitions()) == len(relation)
        for bucket, shard in enumerate(relation.partitions()):
            for row in shard.row_batch():
                assert spec.bucket_of(row["region"]) == bucket

    def test_repartition_existing_rows(self):
        relation = make_events()
        assert relation.partition_spec is None
        relation.repartition(range_partitions("n", [3]))
        assert relation.partition_spec.count == 2
        low, high = relation.partitions()
        assert all(r["n"] < 3 for r in low.row_batch())
        assert all(r["n"] >= 3 for r in high.row_batch())
        assert sorted(r["id"] for r in relation.rows) == list(range(40))

    def test_repartition_bumps_layout_version(self):
        relation = make_events(spec=hash_partitions("region", 8))
        version = relation.partition_layout_version
        relation.repartition(hash_partitions("region", 4))
        assert relation.partition_layout_version > version
        relation.repartition(None)
        assert relation.partition_spec is None
        assert relation.partitions() == []

    def test_insert_marks_only_target_dirty(self):
        relation = make_events(spec=hash_partitions("region", 8))
        relation.mark_partitions_clean()
        relation.insert({"id": 100, "region": "a", "n": 1})
        spec = relation.partition_spec
        assert relation.dirty_partitions == {spec.bucket_of("a")}

    def test_delete_touches_only_affected_buckets(self):
        relation = make_events(spec=hash_partitions("region", 8))
        relation.mark_partitions_clean()
        spec = relation.partition_spec
        removed = relation.delete(lambda r: r["region"] == "b")
        assert removed == 10
        assert len(relation) == 30
        assert relation.dirty_partitions == {spec.bucket_of("b")}
        assert sum(len(p) for p in relation.partitions()) == 30
        assert relation.delete(lambda r: False) == 0

    def test_update_moves_rows_between_buckets(self):
        relation = make_events(spec=hash_partitions("region", 8))
        relation.mark_partitions_clean()
        spec = relation.partition_spec
        count = relation.update(
            lambda r: r["region"] == "c",
            lambda r: {"region": "a"},
        )
        assert count == 10
        source, target = spec.bucket_of("c"), spec.bucket_of("a")
        assert len(relation.partition(source)) == 0
        assert {source, target} <= relation.dirty_partitions
        assert sum(len(p) for p in relation.partitions()) == len(relation)
        # flat canonical list agrees with the shards
        assert sorted(r["region"] for r in relation.rows).count("a") == 20

    def test_update_within_bucket_stays_put(self):
        relation = make_events(spec=hash_partitions("region", 8))
        relation.mark_partitions_clean()
        spec = relation.partition_spec
        relation.update(
            lambda r: r["region"] == "a", lambda r: {"n": 99}
        )
        assert relation.dirty_partitions == {spec.bucket_of("a")}
        shard = relation.partition(spec.bucket_of("a"))
        assert all(r["n"] == 99 for r in shard.row_batch())

    def test_copy_preserves_layout(self):
        relation = make_events(spec=hash_partitions("region", 8))
        clone = relation.copy()
        assert clone.partition_spec == relation.partition_spec
        assert [len(p) for p in clone.partitions()] == [
            len(p) for p in relation.partitions()
        ]
        clone.insert({"id": 500, "region": "a", "n": 0})
        assert len(relation) == 40  # independent storage

    def test_shards_share_schema_and_version_gate(self):
        relation = make_events(spec=hash_partitions("region", 8))
        shard = relation.partition(relation.partition_spec.bucket_of("a"))
        assert shard.schema is relation.schema
        store = shard.columnar_store()
        assert store is shard.columnar_store()  # cached while unchanged
        other = relation.partition(relation.partition_spec.bucket_of("b"))
        other_store = other.columnar_store()
        relation.insert({"id": 300, "region": "a", "n": 0})
        assert shard.columnar_store() is not store  # write invalidated it
        assert other.columnar_store() is other_store  # untouched shard kept


class TestTaggedRelationPartitioning:
    TAGS = TagSchema(indicators=[IndicatorDefinition("source")])

    def make(self, spec=None):
        relation = TaggedRelation(EVENTS, self.TAGS)
        if spec is not None:
            relation.repartition(spec)
        for i in range(20):
            relation.insert(
                {"id": i, "region": ["a", "b"][i % 2], "n": i % 5}
            )
        return relation

    def test_routing_and_dirty_tracking(self):
        relation = self.make(hash_partitions("region", 4))
        spec = relation.partition_spec
        assert sum(len(p) for p in relation.partitions()) == 20
        relation.mark_partitions_clean()
        relation.insert({"id": 100, "region": "b", "n": 1})
        assert relation.dirty_partitions == {spec.bucket_of("b")}

    def test_delete_patches_shards(self):
        relation = self.make(hash_partitions("region", 4))
        relation.mark_partitions_clean()
        spec = relation.partition_spec
        removed = relation.delete(lambda r: r.value("region") == "a")
        assert removed == 10
        assert len(relation.partition(spec.bucket_of("a"))) == 0
        assert relation.dirty_partitions == {spec.bucket_of("a")}

    def test_copy_preserves_layout(self):
        relation = self.make(hash_partitions("region", 4))
        clone = relation.copy()
        assert clone.partition_spec == relation.partition_spec
        assert sum(len(p) for p in clone.partitions()) == 20

    def test_repartition_key_must_exist(self):
        relation = self.make()
        with pytest.raises(Exception):
            relation.repartition(hash_partitions("nosuch", 4))
