"""ColumnarRelation: the array-per-column value store on Relation."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.columnar import ColumnarRelation
from repro.relational.relation import Relation
from repro.relational.schema import Column, RelationSchema

SCHEMA = RelationSchema(
    "t", [Column("a", "INT"), Column("b", "STR"), Column("c", "FLOAT")]
)


def sample_relation():
    return Relation.from_tuples(
        SCHEMA,
        [(1, "x", 1.5), (2, None, 2.5), (None, "z", None), (4, "x", 0.0)],
    )


class TestBuild:
    def test_transpose_matches_column_values(self):
        relation = sample_relation()
        store = ColumnarRelation.from_relation(relation)
        assert store.column("a") == [1, 2, None, 4]
        assert store.column("b") == ["x", None, "z", "x"]
        assert store.column("c") == [1.5, 2.5, None, 0.0]

    def test_column_arrays_in_schema_order(self):
        store = ColumnarRelation.from_relation(sample_relation())
        assert store.column_arrays() == [
            store.column("a"), store.column("b"), store.column("c"),
        ]

    def test_empty_relation(self):
        store = ColumnarRelation.from_relation(Relation(SCHEMA))
        assert len(store) == 0
        assert store.column_arrays() == [[], [], []]

    def test_unknown_column_raises(self):
        store = ColumnarRelation.from_relation(sample_relation())
        with pytest.raises(UnknownColumnError):
            store.column("nope")


class TestVersionGatedCache:
    def test_store_cached_until_mutation(self):
        relation = sample_relation()
        first = relation.columnar_store()
        assert relation.columnar_store() is first

    def test_insert_invalidates(self):
        relation = sample_relation()
        first = relation.columnar_store()
        relation.insert({"a": 9, "b": "q", "c": 9.0})
        second = relation.columnar_store()
        assert second is not first
        assert second.column("a") == [1, 2, None, 4, 9]

    def test_delete_invalidates(self):
        relation = sample_relation()
        first = relation.columnar_store()
        relation.delete(lambda row: row["a"] == 1)
        second = relation.columnar_store()
        assert second is not first
        assert second.column("a") == [2, None, 4]

    def test_update_invalidates(self):
        relation = sample_relation()
        first = relation.columnar_store()
        relation.update(lambda row: row["a"] == 4, lambda row: {"b": "w"})
        second = relation.columnar_store()
        assert second is not first
        assert second.column("b") == ["x", None, "z", "w"]

    def test_clear_invalidates(self):
        relation = sample_relation()
        relation.columnar_store()
        relation.clear()
        assert relation.columnar_store().column_arrays() == [[], [], []]

    def test_version_counts_every_mutation(self):
        relation = Relation(SCHEMA)
        v0 = relation.version
        relation.insert({"a": 1, "b": "x", "c": 1.0})
        relation.delete(lambda row: False)
        relation.clear()
        assert relation.version == v0 + 3


class TestStoreMediatedMutation:
    def test_append_keeps_arrays_aligned(self):
        relation = sample_relation()
        store = relation.columnar_store()
        store.append({"a": 7, "b": "y", "c": 7.5})
        store.check_aligned()
        assert store.column("a") == [1, 2, None, 4, 7]
        assert len(relation) == 5

    def test_append_keeps_cache_valid(self):
        relation = sample_relation()
        store = relation.columnar_store()
        store.append({"a": 7, "b": "y", "c": 7.5})
        # Mutating *through* the store re-validates the cached entry —
        # the next query must not rebuild.
        assert relation.columnar_store() is store

    def test_delete_compacts_every_array(self):
        relation = sample_relation()
        store = relation.columnar_store()
        removed = store.delete(lambda row: row["b"] == "x")
        assert removed == 2
        store.check_aligned()
        assert store.column("a") == [2, None]
        assert store.column("b") == [None, "z"]
        assert len(relation) == 2
        assert relation.columnar_store() is store

    def test_delete_nothing_is_a_noop(self):
        relation = sample_relation()
        store = relation.columnar_store()
        assert store.delete(lambda row: False) == 0
        assert len(relation) == 4

    def test_behind_the_back_mutation_detected(self):
        relation = sample_relation()
        store = ColumnarRelation.from_relation(relation)
        relation.insert({"a": 9, "b": "q", "c": 9.0})
        with pytest.raises(SchemaError):
            store.check_aligned()

    def test_store_delete_bumps_relation_version(self):
        # Side-table deletes must be visible to *other* caches keyed on
        # the relation's version (e.g. the plan cache's cost band).
        relation = sample_relation()
        store = ColumnarRelation.from_relation(relation)
        before = relation.version
        store.delete(lambda row: row["a"] == 1)
        assert relation.version > before


class TestMaterialize:
    def test_all_rows(self):
        relation = sample_relation()
        store = relation.columnar_store()
        rows = store.materialize()
        assert [r.values_tuple() for r in rows] == [
            r.values_tuple() for r in relation
        ]

    def test_selected_positions_in_given_order(self):
        store = sample_relation().columnar_store()
        rows = store.materialize([3, 0])
        assert [r.values_tuple() for r in rows] == [
            (4, "x", 0.0), (1, "x", 1.5),
        ]

    def test_empty_selection(self):
        store = sample_relation().columnar_store()
        assert store.materialize([]) == []


class TestTagStoreDelete:
    def test_tag_store_delete_bumps_backing_relation_version(self):
        # The tag side-table replaces the backing relation's rows on
        # delete; that replacement must bump the version counter so the
        # relation's own columnar value cache can never serve stale
        # arrays afterwards.
        from repro.tagging.columnar import ColumnarTagStore
        from repro.tagging.indicators import IndicatorDefinition, TagSchema

        plain = Relation.from_tuples(
            SCHEMA, [(1, "x", 1.0), (2, "y", 2.0), (3, "z", 3.0)]
        )
        tags = TagSchema(
            [IndicatorDefinition("source", "STR")], allowed={"a": ["source"]}
        )
        store = ColumnarTagStore(plain, tags)
        value_store = plain.columnar_store()
        before = plain.version
        store.delete(lambda row: row["a"] == 2)
        assert plain.version > before
        assert plain.columnar_store() is not value_store
        assert plain.columnar_store().column("a") == [1, 3]
