"""Unit tests for relation schemas."""

import pytest

from repro.errors import SchemaError, UnknownColumnError
from repro.relational.schema import Column, RelationSchema, schema
from repro.relational.types import INT, STR


class TestColumn:
    def test_construction(self):
        column = Column("name", "STR", doc="the name")
        assert column.name == "name"
        assert column.domain is STR or column.domain == STR
        assert column.doc == "the name"

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            Column("", "STR")

    def test_renamed_preserves_domain(self):
        column = Column("a", INT)
        renamed = column.renamed("b")
        assert renamed.name == "b"
        assert renamed.domain == INT

    def test_equality(self):
        assert Column("a", INT) == Column("a", "INT")
        assert Column("a", INT) != Column("a", STR)


class TestRelationSchema:
    def test_basic(self, customer_schema):
        assert customer_schema.name == "customer"
        assert customer_schema.column_names == ("co_name", "address", "employees")
        assert customer_schema.key == ("co_name",)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("t", [Column("a", INT), Column("a", STR)])

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("t", [])

    def test_key_must_exist(self):
        with pytest.raises(SchemaError):
            schema("t", [("a", "INT")], key=["b"])

    def test_duplicate_key_columns_rejected(self):
        with pytest.raises(SchemaError):
            schema("t", [("a", "INT")], key=["a", "a"])

    def test_column_lookup(self, customer_schema):
        assert customer_schema.column("address").domain == STR

    def test_unknown_column(self, customer_schema):
        with pytest.raises(UnknownColumnError):
            customer_schema.column("missing")

    def test_index_of(self, customer_schema):
        assert customer_schema.index_of("employees") == 2

    def test_contains(self, customer_schema):
        assert "address" in customer_schema
        assert "missing" not in customer_schema

    def test_validate_values_fills_missing(self, customer_schema):
        values = customer_schema.validate_values({"co_name": "X"})
        assert values == {"co_name": "X", "address": None, "employees": None}

    def test_validate_values_rejects_unknown(self, customer_schema):
        with pytest.raises(UnknownColumnError):
            customer_schema.validate_values({"bogus": 1})

    def test_validate_values_coerces(self, customer_schema):
        values = customer_schema.validate_values(
            {"co_name": "X", "employees": "17"}
        )
        assert values["employees"] == 17


class TestSchemaTransformations:
    def test_project_keeps_order(self, customer_schema):
        projected = customer_schema.project(["employees", "co_name"])
        assert projected.column_names == ("employees", "co_name")

    def test_project_keeps_key_when_covered(self, customer_schema):
        projected = customer_schema.project(["co_name", "address"])
        assert projected.key == ("co_name",)

    def test_project_drops_key_when_not_covered(self, customer_schema):
        projected = customer_schema.project(["address"])
        assert projected.key is None

    def test_rename_columns(self, customer_schema):
        renamed = customer_schema.rename_columns({"co_name": "company"})
        assert renamed.column_names == ("company", "address", "employees")
        assert renamed.key == ("company",)

    def test_rename_unknown_column(self, customer_schema):
        with pytest.raises(UnknownColumnError):
            customer_schema.rename_columns({"bogus": "x"})

    def test_renamed_relation(self, customer_schema):
        assert customer_schema.renamed("clients").name == "clients"

    def test_with_key(self, customer_schema):
        rekeyed = customer_schema.with_key(["address"])
        assert rekeyed.key == ("address",)

    def test_concat_disjoint(self):
        a = schema("a", [("x", "INT")])
        b = schema("b", [("y", "STR")])
        merged = a.concat(b, "ab")
        assert merged.column_names == ("x", "y")

    def test_concat_overlapping_qualifies(self):
        a = schema("a", [("x", "INT"), ("k", "STR")])
        b = schema("b", [("k", "STR")])
        merged = a.concat(b, "ab")
        assert merged.column_names == ("x", "a.k", "b.k")

    def test_concat_self_join_disambiguates(self):
        a = schema("t", [("k", "STR")])
        merged = a.concat(a, "tt")
        assert merged.column_names == ("t.k", "t#2.k")

    def test_union_compatibility(self, customer_schema):
        same = schema(
            "other",
            [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
        )
        assert customer_schema.union_compatible_with(same)

    def test_union_incompatibility_domain(self, customer_schema):
        different = schema(
            "other",
            [("co_name", "STR"), ("address", "STR"), ("employees", "STR")],
        )
        assert not customer_schema.union_compatible_with(different)


class TestSchemaSerialization:
    def test_round_trip(self, customer_schema):
        data = customer_schema.to_dict()
        restored = RelationSchema.from_dict(data)
        assert restored == customer_schema

    def test_round_trip_no_key(self):
        original = schema("t", [("a", "INT"), ("b", "DATE")])
        assert RelationSchema.from_dict(original.to_dict()) == original
