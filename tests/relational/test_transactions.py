"""Unit tests for the transaction manager and catalog transactions."""

import pytest

from repro.errors import ConstraintViolation, TransactionError
from repro.relational.catalog import Database
from repro.relational.schema import schema
from repro.relational.transactions import TransactionManager


class TestTransactionManager:
    def test_commit_journals(self):
        manager = TransactionManager()
        with manager.transaction(actor="alice") as txn:
            txn.record("insert", "t", undo=lambda: None, after={"a": 1})
        assert len(manager.journal) == 1
        assert manager.journal[0].actor == "alice"

    def test_abort_runs_undo_in_reverse(self):
        manager = TransactionManager()
        order = []
        txn = manager.begin()
        txn.record("insert", "t", undo=lambda: order.append(1))
        txn.record("insert", "t", undo=lambda: order.append(2))
        txn.abort()
        assert order == [2, 1]

    def test_abort_journals_nothing(self):
        manager = TransactionManager()
        txn = manager.begin()
        txn.record("insert", "t", undo=lambda: None)
        txn.abort()
        assert manager.journal == ()

    def test_exception_aborts(self):
        manager = TransactionManager()
        undone = []
        with pytest.raises(RuntimeError):
            with manager.transaction() as txn:
                txn.record("insert", "t", undo=lambda: undone.append(1))
                raise RuntimeError("boom")
        assert undone == [1]
        assert manager.journal == ()

    def test_one_active_at_a_time(self):
        manager = TransactionManager()
        manager.begin()
        with pytest.raises(TransactionError):
            manager.begin()

    def test_sequential_transactions_ok(self):
        manager = TransactionManager()
        manager.begin().commit()
        manager.begin().commit()
        assert len(manager.journal) == 0  # no records, just lifecycle

    def test_record_after_commit_fails(self):
        manager = TransactionManager()
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.record("insert", "t", undo=lambda: None)

    def test_double_commit_fails(self):
        manager = TransactionManager()
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_journal_filters(self):
        manager = TransactionManager()
        with manager.transaction() as txn:
            txn.record("insert", "a", undo=lambda: None)
            txn.record("insert", "b", undo=lambda: None)
        assert len(list(manager.entries_for_relation("a"))) == 1
        txn_id = manager.journal[0].transaction_id
        assert len(list(manager.entries_for_transaction(txn_id))) == 2


class TestAbortWithFailingUndo:
    """Regression: a raising undo used to strand the rest of the rollback."""

    def _boom(self):
        raise RuntimeError("undo blew up")

    def test_remaining_undos_still_run(self):
        manager = TransactionManager()
        order = []
        txn = manager.begin()
        txn.record("insert", "t", undo=lambda: order.append("first"))
        txn.record("delete", "t", undo=self._boom)
        txn.record("insert", "t", undo=lambda: order.append("last"))
        with pytest.raises(TransactionError):
            txn.abort()
        # Newest-first order, with the raising undo skipped over.
        assert order == ["last", "first"]

    def test_manager_released_for_next_transaction(self):
        manager = TransactionManager()
        txn = manager.begin()
        txn.record("insert", "t", undo=self._boom)
        with pytest.raises(TransactionError):
            txn.abort()
        # _on_finish ran despite the failure: a new transaction may begin.
        manager.begin().commit()

    def test_error_names_each_failed_step(self):
        manager = TransactionManager()
        txn = manager.begin()
        txn.record("insert", "orders", undo=self._boom)
        txn.record("update", "customers", undo=lambda: None)
        txn.record("delete", "orders", undo=self._boom)
        with pytest.raises(TransactionError) as info:
            txn.abort()
        message = str(info.value)
        assert "2 of 3" in message
        assert "insert on orders" in message
        assert "delete on orders" in message
        assert "update on customers" not in message
        assert len(info.value.failures) == 2
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_transaction_marked_aborted(self):
        manager = TransactionManager()
        txn = manager.begin()
        txn.record("insert", "t", undo=self._boom)
        with pytest.raises(TransactionError):
            txn.abort()
        assert not txn.is_active
        with pytest.raises(TransactionError):
            txn.record("insert", "t", undo=lambda: None)
        assert manager.journal == ()

    def test_database_rollback_restores_surviving_rows(self):
        database = Database("partial")
        database.create_relation(
            schema("t", [("k", "STR"), ("v", "INT")], key=["k"])
        )
        txn = database.transactions.begin()
        database.insert("t", {"k": "a", "v": 1}, transaction=txn)
        database.insert("t", {"k": "b", "v": 2}, transaction=txn)
        txn.record("insert", "t", undo=self._boom)
        with pytest.raises(TransactionError):
            txn.abort()
        # Both real inserts were rolled back despite the failing undo.
        assert len(database.relation("t")) == 0


class TestDatabaseTransactions:
    @pytest.fixture
    def db(self):
        database = Database("txn_test")
        database.create_relation(
            schema("t", [("k", "STR"), ("v", "INT")], key=["k"])
        )
        return database

    def test_autocommit_insert_journals(self, db):
        db.insert("t", {"k": "a", "v": 1}, actor="loader")
        entries = list(db.transactions.entries_for_relation("t"))
        assert len(entries) == 1
        assert entries[0].after == {"k": "a", "v": 1}
        assert entries[0].actor == "loader"

    def test_insert_many_atomic(self, db):
        with pytest.raises(ConstraintViolation):
            db.insert_many(
                "t",
                [{"k": "a", "v": 1}, {"k": "a", "v": 2}],  # duplicate key
            )
        assert len(db.relation("t")) == 0

    def test_explicit_transaction_rollback(self, db):
        txn = db.transactions.begin()
        db.insert("t", {"k": "a", "v": 1}, transaction=txn)
        db.insert("t", {"k": "b", "v": 2}, transaction=txn)
        txn.abort()
        assert len(db.relation("t")) == 0

    def test_update_journals_before_after(self, db):
        db.insert("t", {"k": "a", "v": 1})
        db.update("t", lambda r: r["k"] == "a", {"v": 9})
        entry = [e for e in db.transactions.journal if e.operation == "update"][0]
        assert entry.before == {"k": "a", "v": 1}
        assert entry.after == {"k": "a", "v": 9}

    def test_delete_journals_before(self, db):
        db.insert("t", {"k": "a", "v": 1})
        db.delete("t", lambda r: True)
        entry = [e for e in db.transactions.journal if e.operation == "delete"][0]
        assert entry.before == {"k": "a", "v": 1}
        assert entry.after is None

    def test_failed_update_leaves_data_intact(self, db):
        db.insert("t", {"k": "a", "v": 1})
        db.insert("t", {"k": "b", "v": 2})
        with pytest.raises(ConstraintViolation):
            db.update("t", lambda r: r["k"] == "b", {"k": "a"})
        values = sorted(r["k"] for r in db.relation("t"))
        assert values == ["a", "b"]
