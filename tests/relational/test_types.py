"""Unit tests for relational domains."""

import datetime as dt

import pytest

from repro.errors import DomainError
from repro.relational.types import (
    BOOL,
    BUILTIN_DOMAINS,
    DATE,
    DATETIME,
    FLOAT,
    INT,
    STR,
    domain_by_name,
)


class TestIntDomain:
    def test_accepts_int(self):
        assert INT.validate(5) == 5

    def test_accepts_none(self):
        assert INT.validate(None) is None

    def test_coerces_integral_float(self):
        assert INT.validate(5.0) == 5

    def test_rejects_fractional_float(self):
        with pytest.raises(DomainError):
            INT.validate(5.5)

    def test_rejects_bool(self):
        with pytest.raises(DomainError):
            INT.validate(True)

    def test_coerces_numeric_string(self):
        assert INT.validate("42") == 42

    def test_rejects_garbage_string(self):
        with pytest.raises(DomainError):
            INT.validate("not a number")


class TestFloatDomain:
    def test_accepts_float(self):
        assert FLOAT.validate(1.5) == 1.5

    def test_accepts_int_member(self):
        # FLOAT admits ints directly (numeric tower).
        assert FLOAT.contains(3)

    def test_rejects_bool(self):
        with pytest.raises(DomainError):
            FLOAT.validate(False)

    def test_coerces_string(self):
        assert FLOAT.validate("2.25") == 2.25


class TestStrDomain:
    def test_accepts_str(self):
        assert STR.validate("hello") == "hello"

    def test_coerces_int_to_str(self):
        assert STR.validate(7) == "7"


class TestDateDomain:
    def test_accepts_date(self):
        d = dt.date(1991, 10, 24)
        assert DATE.validate(d) == d

    def test_coerces_iso_string(self):
        assert DATE.validate("1991-10-24") == dt.date(1991, 10, 24)

    def test_coerces_datetime_to_date(self):
        assert DATE.validate(dt.datetime(1991, 10, 24, 12, 30)) == dt.date(
            1991, 10, 24
        )

    def test_rejects_bad_string(self):
        with pytest.raises(DomainError):
            DATE.validate("10/24/91")


class TestDatetimeDomain:
    def test_accepts_datetime(self):
        value = dt.datetime(1991, 1, 2, 9, 0)
        assert DATETIME.validate(value) == value

    def test_coerces_date(self):
        assert DATETIME.validate(dt.date(1991, 1, 2)) == dt.datetime(1991, 1, 2)

    def test_coerces_iso_string(self):
        assert DATETIME.validate("1991-01-02T09:00:00") == dt.datetime(
            1991, 1, 2, 9
        )


class TestBoolDomain:
    def test_accepts_bool(self):
        assert BOOL.validate(True) is True

    @pytest.mark.parametrize(
        "literal,expected",
        [("true", True), ("False", False), ("YES", True), ("0", False)],
    )
    def test_coerces_string_literals(self, literal, expected):
        assert BOOL.validate(literal) is expected

    def test_coerces_zero_one(self):
        assert BOOL.validate(1) is True
        assert BOOL.validate(0) is False

    def test_rejects_other_ints(self):
        with pytest.raises(DomainError):
            BOOL.validate(2)

    def test_rejects_garbage(self):
        with pytest.raises(DomainError):
            BOOL.validate("maybe")


class TestDomainLookup:
    def test_by_name(self):
        assert domain_by_name("int") is INT
        assert domain_by_name("DATE") is DATE

    def test_unknown_name(self):
        with pytest.raises(DomainError):
            domain_by_name("DECIMAL")

    def test_all_builtins_resolvable(self):
        for name in BUILTIN_DOMAINS:
            assert domain_by_name(name).name == name

    def test_domain_equality_by_name(self):
        assert INT == domain_by_name("INT")
        assert INT != FLOAT

    def test_domain_hashable(self):
        assert len({INT, FLOAT, INT}) == 2
