"""Unit tests for the fluent query builder."""

import pytest

from repro.errors import QueryError
from repro.relational.query import Query
from repro.relational.relation import Relation
from repro.relational.schema import schema


@pytest.fixture
def emps():
    return Relation.from_tuples(
        schema("emps", [("emp", "STR"), ("dept", "STR"), ("salary", "INT")]),
        [
            ("ann", "sales", 50),
            ("bob", "sales", 60),
            ("carol", "acctg", 70),
        ],
    )


@pytest.fixture
def depts():
    return Relation.from_tuples(
        schema("depts", [("dept", "STR"), ("floor", "INT")]),
        [("sales", 1), ("acctg", 2)],
    )


class TestQueryPipeline:
    def test_where_select(self, emps):
        result = (
            Query(emps).where(lambda r: r["salary"] > 55).select("emp").run()
        )
        assert result.to_dicts() == [{"emp": "bob"}, {"emp": "carol"}]

    def test_eq_shorthand(self, emps):
        assert Query(emps).eq(dept="sales").count() == 2

    def test_order_and_limit(self, emps):
        result = (
            Query(emps)
            .order_by("salary", descending=True)
            .limit(1)
            .to_dicts()
        )
        assert result[0]["emp"] == "carol"

    def test_select_requires_columns(self, emps):
        with pytest.raises(QueryError):
            Query(emps).select()

    def test_immutability(self, emps):
        base = Query(emps)
        filtered = base.eq(dept="sales")
        assert base.count() == 3
        assert filtered.count() == 2

    def test_natural_join(self, emps, depts):
        result = Query(emps).join(depts).run()
        assert len(result) == 3
        assert "floor" in result.schema

    def test_equi_join(self, emps, depts):
        result = Query(emps).join(depts, on=[("dept", "dept")]).run()
        assert len(result) == 3

    def test_group_by(self, emps):
        result = Query(emps).group_by(
            ["dept"], total=("sum", "salary")
        ).run()
        totals = {row["dept"]: row["total"] for row in result}
        assert totals == {"sales": 110, "acctg": 70}

    def test_extend(self, emps):
        result = (
            Query(emps)
            .extend("monthly", "FLOAT", lambda r: r["salary"] / 12)
            .run()
        )
        assert "monthly" in result.schema

    def test_distinct(self, emps):
        result = Query(emps).select("dept").distinct().run()
        assert len(result) == 2

    def test_rename(self, emps):
        result = Query(emps).rename({"emp": "employee"}).run()
        assert "employee" in result.schema

    def test_count_and_rows(self, emps):
        q = Query(emps)
        assert q.count() == 3
        assert len(q.rows()) == 3

    def test_source_not_mutated(self, emps):
        Query(emps).where(lambda r: False).run()
        assert len(emps) == 3
