"""Unit tests for the shared array codec (repro.relational.arrays)."""

from repro.relational import arrays


class TestAppendBlank:
    def test_grows_every_array_by_one(self):
        a, b = [1, 2], ["x"]
        arrays.append_blank([a, b])
        assert a == [1, 2, None]
        assert b == ["x", None]

    def test_custom_fill_value(self):
        a = []
        arrays.append_blank([a], value=0)
        assert a == [0]


class TestKeepIndices:
    def test_survivors_of_a_delete_predicate(self):
        rows = [10, 15, 20, 25]
        assert arrays.keep_indices(rows, lambda r: r >= 20) == [0, 1]

    def test_nothing_deleted(self):
        assert arrays.keep_indices([1, 2], lambda r: False) == [0, 1]

    def test_everything_deleted(self):
        assert arrays.keep_indices([1, 2], lambda r: True) == []


class TestGather:
    def test_kept_positions_in_order(self):
        assert arrays.gather(["a", "b", "c", "d"], [0, 2]) == ["a", "c"]

    def test_empty_keep(self):
        assert arrays.gather(["a"], []) == []


class TestCompactInPlace:
    def test_every_array_drops_the_same_positions(self):
        mapping = {"x": [1, 2, 3], "y": ["a", "b", "c"]}
        arrays.compact_in_place(mapping, [0, 2])
        assert mapping == {"x": [1, 3], "y": ["a", "c"]}

    def test_keyed_by_tuples_too(self):
        mapping = {("c", "i"): [1, 2]}
        arrays.compact_in_place(mapping, [1])
        assert mapping == {("c", "i"): [2]}


class TestMisaligned:
    def test_aligned_returns_none(self):
        assert arrays.misaligned(2, {"x": [1, 2], "y": [3, 4]}) is None

    def test_reports_first_divergent_key_and_length(self):
        assert arrays.misaligned(2, {"x": [1, 2], "y": [3]}) == ("y", 1)

    def test_empty_mapping_is_aligned(self):
        assert arrays.misaligned(5, {}) is None
