"""Every shipped example must run to completion (deliverable guard)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_module_demo_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Table 2" in result.stdout
    assert "QSQL>" in result.stdout
