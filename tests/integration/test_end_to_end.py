"""Cross-module integration tests: the full paper workflow.

Each test exercises a chain the paper describes end to end:
methodology → relational instantiation → manufacturing → tagging →
quality-filtered retrieval → administration.
"""

import datetime as dt

import pytest

from repro.core.methodology import DataQualityModeling
from repro.er.relational_mapping import er_to_relational
from repro.experiments.scenarios import (
    run_trading_methodology,
    trading_er_schema,
)
from repro.manufacturing.collection import standard_methods
from repro.manufacturing.generator import make_companies
from repro.manufacturing.pipeline import ManufacturingPipeline
from repro.manufacturing.sources import DataSource
from repro.manufacturing.world import AttributeSpec, World, integer_step
from repro.polygen.federation import Federation
from repro.quality.admin import DataQualityAdministrator
from repro.quality.audit import ElectronicTrail
from repro.relational.schema import schema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue
from repro.tagging.query import QualityQuery
from repro.tagging.relation import TaggedRelation


class TestMethodologyToDatabase:
    def test_quality_schema_instantiates_on_engine(self):
        """Steps 1-4 → refined ER schema → live relational database."""
        modeling = run_trading_methodology()
        database = er_to_relational(modeling.quality_schema.er_schema)
        assert set(database.relation_names) == {
            "client",
            "company_stock",
            "trade",
        }

    def test_tag_schema_governs_live_data(self):
        """The derived tag schema accepts conforming cells and rejects
        indicators the design never asked for."""
        modeling = run_trading_methodology()
        tag_schema = modeling.quality_schema.tag_schema_for("company_stock")
        relation = TaggedRelation(
            schema(
                "company_stock",
                [
                    ("ticker_symbol", "STR"),
                    ("share_price", "FLOAT"),
                    ("research_report", "STR"),
                ],
                key=["ticker_symbol"],
            ),
            tag_schema,
        )
        relation.insert(
            {
                "ticker_symbol": "FRT",
                "share_price": QualityCell(10.0, [IndicatorValue("age", 0.1)]),
                "research_report": QualityCell(
                    "hold",
                    [
                        IndicatorValue("analyst_name", "kim"),
                        IndicatorValue("price", 100.0),
                        IndicatorValue("media", "postscript"),
                    ],
                ),
            }
        )
        with pytest.raises(Exception):
            relation.insert(
                {
                    "ticker_symbol": "NUT",
                    "share_price": QualityCell(
                        10.0, [IndicatorValue("age", 0.1)]
                    ),
                    "research_report": QualityCell(
                        "hold",
                        [
                            IndicatorValue("analyst_name", "kim"),
                            IndicatorValue("price", 100.0),
                            IndicatorValue("media", "postscript"),
                            # 'source' was never required/allowed here.
                            IndicatorValue("source", "somewhere"),
                        ],
                    ),
                }
            )


class TestManufactureFilterAdminister:
    @pytest.fixture(scope="class")
    def environment(self):
        companies = make_companies(60, seed=13)
        world = World(
            dt.date(1991, 1, 1),
            companies,
            specs=[AttributeSpec("employees", 0.02, integer_step(30))],
            seed=13,
        )
        world.advance(120)
        methods = standard_methods(seed=13)
        trail = ElectronicTrail()
        pipeline = ManufacturingPipeline(
            world,
            schema(
                "customer",
                [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
                key=["co_name"],
            ),
            "co_name",
            trail=trail,
        )
        pipeline.assign(
            "address",
            DataSource("acct'g", world, error_rate=0.02, seed=13),
            methods["manual_entry"],
        )
        pipeline.assign(
            "employees",
            DataSource(
                "estimate", world, error_rate=0.35, latency_days=45, seed=14
            ),
            methods["over_the_phone"],
        )
        relation = pipeline.manufacture()
        return world, pipeline, relation

    def test_quality_filter_lifts_accuracy(self, environment):
        world, _, relation = environment
        from repro.quality.dimensions import accuracy_against

        unfiltered = accuracy_against(relation, world.truth(), "co_name")
        filtered = QualityQuery(relation).require(
            "employees", "source", "!=", "estimate"
        ).run()
        # Filtering out estimate-sourced employee counts leaves nothing
        # (all employees routed via estimate) — so filter on address age
        # instead and check accuracy is at least as good.
        assert len(filtered) == 0
        cutoff = world.today - dt.timedelta(days=10)
        fresh = QualityQuery(relation).require(
            "address", "creation_time", ">=", cutoff
        ).run()
        assert len(fresh) == len(relation)  # acct'g is current
        fresh_accuracy = accuracy_against(fresh, world.truth(), "co_name")
        assert fresh_accuracy["address"] >= unfiltered["address"]

    def test_administrator_traces_erred_datum(self, environment):
        world, pipeline, relation = environment
        erred = next(
            cell for cell in pipeline.manufactured if cell.erroneous
        )
        trace = pipeline.trail.trace_erred_transaction(
            "customer", (erred.key,)
        )
        assert "collected" in trace["steps"]
        assert "captured" in trace["steps"]
        assert erred.source in trace["actors"] or erred.method in trace["actors"]

    def test_spc_over_manufactured_stream(self, environment):
        _, pipeline, _ = environment
        counts, sizes = pipeline.defect_counts_by_batch(20)
        from repro.quality.spc import p_chart

        chart = p_chart(counts, sizes)
        assert len(chart.points) == len(counts)


class TestFederationOverEngineDatabases:
    def test_polygen_over_catalog_databases(self):
        from repro.relational.catalog import Database

        federation = Federation()
        for name, price in (("feed_a", 10.0), ("feed_b", 11.0)):
            db = Database(name)
            db.create_relation(
                schema("quotes", [("ticker", "STR"), ("price", "FLOAT")])
            )
            db.insert("quotes", {"ticker": "FRT", "price": price})
            db.insert("quotes", {"ticker": "NUT", "price": 5.0})
            federation.register(db, credibility=1.0 if name == "feed_a" else 0.4)
        merged = federation.union_all("quotes")
        resolved = federation.most_credible(merged, ["ticker"])
        assert len(resolved) == 2
        frt = next(r for r in resolved if r.value("ticker") == "FRT")
        assert frt.value("price") == 10.0
        report = federation.provenance_report(resolved)
        assert set(report) == {"feed_a", "feed_b"}


class TestSpecificationIsSelfConsistent:
    def test_spec_mentions_every_requirement(self):
        modeling = run_trading_methodology()
        spec = modeling.specification()
        for requirement in modeling.quality_schema.requirements():
            assert requirement.indicator.name in spec

    def test_multi_team_integration(self):
        """Two teams annotate the same application view; Step 4 merges."""
        er = trading_er_schema()
        team_a = DataQualityModeling()
        app_view = team_a.step1(er, "shared requirements")
        view_a = team_a.step3(
            team_a.step2(
                app_view,
                [(("company_stock", "share_price"), "timeliness", "")],
            )
        )
        view_b = team_a.step3(
            team_a.step2(
                app_view,
                [(("company_stock", "share_price"), "currency", "")],
            )
        )
        integrated = team_a.step4([view_a, view_b])
        names = {a.indicator.name for a in integrated.annotations}
        # Derivability: age collapses into creation_time across views.
        assert "creation_time" in names
        assert "age" not in names
