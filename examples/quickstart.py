#!/usr/bin/env python3
"""Quickstart: the paper's core loop in sixty seconds.

1. Model an application (ER) and run the four-step quality methodology.
2. Instantiate the resulting quality schema as a tagged relation.
3. Store data with quality-indicator tags (Table 2 style).
4. Query with quality constraints — filter out data with undesirable
   characteristics.

Run:  python examples/quickstart.py
"""

import datetime as dt

from repro.core import DataQualityModeling
from repro.er.model import Entity, ERAttribute, ERSchema
from repro.relational.schema import schema
from repro.tagging.cell import QualityCell
from repro.tagging.indicators import IndicatorValue
from repro.tagging.query import QualityQuery
from repro.tagging.relation import TaggedRelation


def main() -> None:
    # -- 1. the application view (Step 1) and quality requirements ---------
    er = ERSchema("crm", doc="A tiny customer database")
    er.add_entity(
        Entity(
            "customer",
            attributes=[
                ERAttribute("co_name", "STR"),
                ERAttribute("address", "STR"),
                ERAttribute("employees", "INT"),
            ],
            key=["co_name"],
        )
    )

    modeling = DataQualityModeling()
    app_view = modeling.step1(er, "Track corporate customers for sales.")
    # Step 2: the sales manager cares about currency and source
    # credibility of the volatile fields.
    param_view = modeling.step2(
        app_view,
        [
            (("customer", "address"), "currency", "companies move"),
            (("customer", "address"), "source_credibility", "who recorded it"),
            (("customer", "employees"), "credibility", "estimates abound"),
        ],
    )
    # Step 3: operationalize.  Auto mode would propose every catalog
    # suggestion; here the design team picks one indicator per parameter.
    from repro.core.terminology import QualityIndicatorSpec

    quality_view = modeling.step3(
        param_view,
        decisions={
            (("customer", "address"), "currency"): [
                QualityIndicatorSpec("creation_time", "DATE")
            ],
            (("customer", "address"), "source_credibility"): [
                QualityIndicatorSpec("source")
            ],
            (("customer", "employees"), "credibility"): [
                QualityIndicatorSpec("source")
            ],
        },
        auto=False,
    )
    # Step 4: integrate (single view: checks + derivability reduction).
    quality_schema = modeling.step4([quality_view])

    print(quality_schema.render(title="Integrated quality schema"))
    print()

    # -- 2. instantiate: a tagged relation governed by the schema -----------
    tag_schema = quality_schema.tag_schema_for("customer")
    relation = TaggedRelation(
        schema(
            "customer",
            [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
            key=["co_name"],
        ),
        tag_schema,
    )

    # -- 3. store tagged data (the paper's Table 2) -------------------------
    relation.insert(
        {
            "co_name": "Fruit Co",
            "address": QualityCell(
                "12 Jay St",
                [
                    IndicatorValue("creation_time", dt.date(1991, 1, 2)),
                    IndicatorValue("source", "sales"),
                ],
            ),
            "employees": QualityCell(
                4004, [IndicatorValue("source", "Nexis")]
            ),
        }
    )
    relation.insert(
        {
            "co_name": "Nut Co",
            "address": QualityCell(
                "62 Lois Av",
                [
                    IndicatorValue("creation_time", dt.date(1991, 10, 24)),
                    IndicatorValue("source", "acct'g"),
                ],
            ),
            "employees": QualityCell(
                700, [IndicatorValue("source", "estimate")]
            ),
        }
    )
    print(relation.render(title="Customer information with quality tags"))
    print()

    # -- 4. quality-filtered retrieval ---------------------------------------
    trustworthy = (
        QualityQuery(relation)
        .require("employees", "source", "!=", "estimate")
        .require("address", "creation_time", ">=", dt.date(1991, 1, 1))
        .values()
    )
    print("Rows whose employee counts are not estimates:")
    for row in trustworthy:
        print(f"  {row}")


if __name__ == "__main__":
    main()
