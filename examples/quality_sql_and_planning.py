#!/usr/bin/env python3
"""Extensions tour: QSQL, quality scoring, and enhancement planning.

Three capabilities the paper motivates but leaves as future work, built
on the tagged substrate:

1. **QSQL** — quality-constrained retrieval as SQL strings, with
   ``QUALITY(column.indicator)`` references;
2. **scoring** — "derivation and estimation of quality parameter values
   and overall data quality from underlying indicator values" (§4), as
   a weighted scorecard with cell → column → relation rollups;
3. **enhancement planning** — Ballou-Tayi [1] budget allocation over
   the defect statistics monitoring produced.

Run:  python examples/quality_sql_and_planning.py
"""

import datetime as dt

from repro.experiments.scenarios import customer_database
from repro.quality.allocation import allocate_budget, profiles_from_monitoring
from repro.quality.scoring import (
    QualityScorecard,
    credibility_scorer,
    timeliness_scorer,
)
from repro.sql import execute


def main() -> None:
    world, pipeline, customers = customer_database(
        n_companies=150, seed=11, simulated_days=180
    )
    print(
        f"Manufactured customer DB: {len(customers)} rows, "
        f"{customers.tag_count()} tags, world day {world.today}"
    )
    print()

    # -- 1. QSQL ------------------------------------------------------------
    fresh_cutoff = (world.today - dt.timedelta(days=30)).isoformat()
    query = (
        "SELECT co_name, employees FROM customer "
        "WHERE employees > 5000 "
        f"AND QUALITY(address.creation_time) >= DATE '{fresh_cutoff}' "
        "AND QUALITY(employees.source) IN ('estimate', 'acct''g') "
        "ORDER BY employees DESC LIMIT 5"
    )
    print("QSQL:")
    print(f"  {query}")
    result = execute(query, customers)
    print(result.render(title="Top employers with fresh addresses"))
    print()

    # The administrator's quality report in SQL: tag values are
    # first-class, groupable, and aggregatable.
    per_source = execute(
        "SELECT QUALITY(employees.source) AS source, COUNT(*) AS rows_held, "
        "MAX(QUALITY(employees.creation_time)) AS newest "
        "FROM customer GROUP BY QUALITY(employees.source)",
        customers,
    )
    print(per_source.render(title="Rows held per employee-count source"))
    print()

    # EXPLAIN shows the optimized plan the planner runs: the quality
    # predicates route into the columnar tag store, ORDER BY + LIMIT
    # fuse into a bounded top-k.
    plan = execute(f"EXPLAIN {query}", customers)
    print("EXPLAIN output:")
    for row in plan:
        print(f"  {row.values_tuple()[0]}")
    print()

    # -- 2. scoring ----------------------------------------------------------------
    scorecard = QualityScorecard(
        [
            timeliness_scorer(shelf_life_days=90),
            credibility_scorer(
                {"acct'g": 0.9, "estimate": 0.35}, default=0.5
            ),
        ],
        weights={"timeliness": 1.0, "credibility": 2.0},
    )
    relation_score = scorecard.score_relation(
        customers, context={"today": world.today}
    )
    print(relation_score.render())
    print()
    address = relation_score.columns["address"].composite.score
    employees = relation_score.columns["employees"].composite.score
    print(
        f"Premise 1.3 in numbers: address quality {address:.3f} vs "
        f"employees quality {employees:.3f} — same relation, different "
        f"manufacturing processes."
    )
    print()

    # -- 3. enhancement planning -------------------------------------------------------
    defect_stats = pipeline.defect_counts_by_method()
    print("Monitoring found (defects / cells):")
    for method, (defects, total) in sorted(defect_stats.items()):
        print(f"  {method}: {defects}/{total}")
    profiles = profiles_from_monitoring(
        defect_stats,
        unit_cost=1.0,
        effectiveness=0.5,
        weights={"manual_entry": 3.0},  # address errors hurt more
    )
    plan = allocate_budget(profiles, budget=6)
    print()
    print(plan.render({p.name: p for p in profiles}))


if __name__ == "__main__":
    main()
