#!/usr/bin/env python3
"""The paper's running example end to end: §3's stock-trading design.

Regenerates Figures 3, 4, and 5 exactly as the methodology produces
them, performs Step 4 (including the paper's two worked integration
decisions — the age/creation-time derivability reduction and the
Premise 1.1 company-name promotion), and prints the full quality
requirements specification document.

Run:  python examples/stock_trading_design.py
"""

from repro.core import DataQualityModeling
from repro.core.integration import Refinement
from repro.core.terminology import QualityIndicatorSpec
from repro.core.views import IndicatorAnnotation
from repro.er.relational_mapping import er_to_relational
from repro.experiments.scenarios import (
    TRADING_PARAMETER_REQUESTS,
    trading_er_schema,
    trading_indicator_decisions,
)


def main() -> None:
    modeling = DataQualityModeling()

    # Step 1 — Figure 3.
    app_view = modeling.step1(
        trading_er_schema(),
        "A stock trader keeps information about companies, and trades of "
        "company stocks by clients (§3.1).",
    )
    print(app_view.render(title="Figure 3: Application view"))
    print()

    # Step 2 — Figure 4.
    param_view = modeling.step2(app_view, TRADING_PARAMETER_REQUESTS)
    print(param_view.render(title="Figure 4: Parameter view"))
    print()

    # Step 3 — Figure 5.
    quality_view = modeling.step3(
        param_view, decisions=trading_indicator_decisions(), auto=False
    )
    # A second design pass also wants company_name as an interpretability
    # aid on the ticker symbol — the paper's §3.4 example.
    quality_view.add(
        IndicatorAnnotation(
            ("company_stock", "ticker_symbol"),
            QualityIndicatorSpec("company_name"),
            derived_from=("interpretability",),
            rationale="enhances the interpretability of ticker symbol",
        )
    )
    print(quality_view.render(title="Figure 5: Quality view"))
    print()

    # Step 4 — integration + the Premise 1.1 refinement: company name is
    # really application data.
    quality_schema = modeling.step4(
        [quality_view],
        refinements=[
            Refinement(
                Refinement.PROMOTE,
                "company_stock",
                "company_name",
                "after re-examining the application requirements, company "
                "name should be an entity attribute (§3.4)",
            )
        ],
    )
    print(quality_schema.render(title="Integrated quality schema"))
    print()
    print("Integration decisions:")
    for note in quality_schema.integration_notes:
        print(f"  - {note}")
    print()

    # The quality schema is executable: instantiate the refined ER schema
    # on the relational engine.
    database = er_to_relational(quality_schema.er_schema)
    print(f"Instantiated database relations: {list(database.relation_names)}")
    stock_columns = database.relation("company_stock").schema.column_names
    print(f"company_stock columns (note company_name): {list(stock_columns)}")
    print()

    # The full specification document.
    print(modeling.specification())


if __name__ == "__main__":
    main()
