#!/usr/bin/env python3
"""The TDQM improvement cycle, end to end and measurable.

§4 places the paper inside Total Data Quality Management [27]:
requirements feed measurement, measurement feeds analysis, analysis
feeds process redesign — and the next measurement shows whether the
redesign worked.  Because the substrate is a simulator, "worked" is a
number.

The scenario: employee counts come from a rumor mill (45% error) over a
voice decoder.  Cycle 1 measures the damage and proposes replacing the
source; procurement supplies a verified registry; cycle 2 measures the
improvement.

Run:  python examples/tdqm_cycle.py
"""

import datetime as dt

from repro.core import DataQualityModeling
from repro.core.terminology import QualityIndicatorSpec
from repro.er.model import Entity, ERAttribute, ERSchema
from repro.manufacturing.collection import CollectionMethod
from repro.manufacturing.generator import make_companies
from repro.manufacturing.pipeline import ManufacturingPipeline
from repro.manufacturing.sources import DataSource
from repro.manufacturing.world import World
from repro.quality.scoring import QualityScorecard, credibility_scorer
from repro.quality.tdqm import TDQMCycle
from repro.relational.schema import schema


def design():
    er = ERSchema("crm")
    er.add_entity(
        Entity(
            "customer",
            [
                ERAttribute("co_name", "STR"),
                ERAttribute("address", "STR"),
                ERAttribute("employees", "INT"),
            ],
            key=["co_name"],
        )
    )
    modeling = DataQualityModeling()
    app_view = modeling.step1(er, "customer master data")
    param_view = modeling.step2(
        app_view,
        [
            (("customer", "address"), "source_credibility", ""),
            (("customer", "employees"), "source_credibility", ""),
        ],
    )
    quality_view = modeling.step3(
        param_view,
        decisions={
            (("customer", "address"), "source_credibility"): [
                QualityIndicatorSpec("source")
            ],
            (("customer", "employees"), "source_credibility"): [
                QualityIndicatorSpec("source")
            ],
        },
        auto=False,
    )
    return modeling.step4([quality_view])


def main() -> None:
    world = World(dt.date(1991, 1, 1), make_companies(200, seed=91), seed=91)
    pipeline = ManufacturingPipeline(
        world,
        schema(
            "customer",
            [("co_name", "STR"), ("address", "STR"), ("employees", "INT")],
            key=["co_name"],
        ),
        "co_name",
    )
    pipeline.assign(
        "address",
        DataSource("acct'g", world, error_rate=0.01, seed=91),
        CollectionMethod("scanner", 0.005, seed=91),
    )
    pipeline.assign(
        "employees",
        DataSource("rumor_mill", world, error_rate=0.45, seed=92),
        CollectionMethod("voice_decoder", 0.02, seed=92),
    )

    scorecard = QualityScorecard(
        [
            credibility_scorer(
                {
                    "acct'g": 0.95,
                    "rumor_mill": 0.2,
                    "verified_registry": 0.95,
                }
            )
        ]
    )
    cycle = TDQMCycle(design(), "customer", scorecard, pipeline,
                      deficit_threshold=0.3)

    # ---- cycle 1: measure the damage, propose redesign --------------------
    better_source = DataSource(
        "verified_registry", world, error_rate=0.03, seed=93
    )
    measurement_1, analysis_1, changes = cycle.run_cycle(
        today=world.today,
        truth=world.truth(),
        key_column="co_name",
        replacement_sources={"employees": better_source},
        inspection_budget=5.0,
    )
    print(measurement_1.summary())
    print()
    print(analysis_1.render())
    print()
    for change in changes:
        print(f"APPLIED: {change}")
    print()

    # ---- cycle 2: the redesign, measured -----------------------------------
    measurement_2, analysis_2, _ = cycle.run_cycle(
        today=world.today, truth=world.truth(), key_column="co_name"
    )
    print(measurement_2.summary())
    print()
    print(cycle.render_history())
    print()
    delta = measurement_2.overall_score - measurement_1.overall_score
    print(
        f"Process redesign lifted the overall quality score by {delta:+.3f} "
        f"({measurement_1.overall_score:.3f} → "
        f"{measurement_2.overall_score:.3f})."
    )


if __name__ == "__main__":
    main()
