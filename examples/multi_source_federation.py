#!/usr/bin/env python3
"""Polygen source tagging over a multi-database federation.

Three market-data providers quote overlapping tickers at different
credibility levels.  A composite query unions and conflict-resolves
them; every cell of the answer carries its originating sources (who
supplied the value) and intermediate sources (whose data influenced its
selection) — the polygen model [24][25] the paper builds on.

Run:  python examples/multi_source_federation.py
"""

from repro.polygen import algebra
from repro.polygen.federation import Federation
from repro.relational.catalog import Database
from repro.relational.schema import schema

QUOTES = {
    # provider            credibility   quotes
    "reuters_feed": (0.95, {"FRT": 101.25, "NUT": 47.10, "GRN": 12.80}),
    "nexis_digest": (0.60, {"FRT": 101.25, "NUT": 46.90}),
    "branch_fax": (0.30, {"FRT": 99.00, "GRN": 12.80, "ZZZ": 1.05}),
}


def build_federation() -> Federation:
    federation = Federation("market_data")
    for name, (credibility, quotes) in QUOTES.items():
        db = Database(name)
        db.create_relation(
            schema("quotes", [("ticker", "STR"), ("price", "FLOAT")], key=["ticker"])
        )
        for ticker, price in quotes.items():
            db.insert("quotes", {"ticker": ticker, "price": price})
        federation.register(db, credibility=credibility)
    return federation


def main() -> None:
    federation = build_federation()
    print(f"Federation members: {list(federation.database_names)}")
    print()

    # Union across all providers: corroborated facts merge source sets.
    merged = federation.union_all("quotes")
    print(merged.render(title="Federated quotes (corroboration visible)"))
    print()

    # Conflict resolution by credibility: one row per ticker; the losing
    # providers become intermediate sources (they were consulted).
    resolved = federation.most_credible(merged, ["ticker"])
    print(resolved.render(title="Most-credible quote per ticker"))
    print()

    # Downstream restriction still tracks what was examined.
    expensive = algebra.select(
        resolved, lambda row: row.value("price") > 50, using=["price"]
    )
    print(expensive.render(title="Quotes over $50 (selection adds evidence)"))
    print()

    # The provenance report: the administrator's who-contributed-what.
    report = federation.provenance_report(resolved)
    print("Provenance report (cells touched per source):")
    for source in sorted(report):
        stats = report[source]
        print(
            f"  {source:<14} originating={stats['originating']:<3} "
            f"intermediate={stats['intermediate']}"
        )
    print()

    # Cell-level answer to the paper's question: where is this from?
    frt = next(r for r in resolved if r.value("ticker") == "FRT")
    cell = frt["price"]
    print(
        f"FRT price {cell.value}: originated from "
        f"{sorted(cell.originating)}, influenced by "
        f"{sorted(cell.intermediate)}"
    )
    print()

    # Fluent provenance queries: quarantine everything a bad feed touched.
    from repro.polygen import PolygenQuery

    safe = PolygenQuery(resolved).where_untouched_by("branch_fax").run()
    print(
        f"Quarantine query (nothing branch_fax touched): "
        f"{[row.value('ticker') for row in safe]}"
    )
    print()

    # The bridge to the attribute-based model: federation results become
    # source-tagged relations, so the whole quality layer (profiles,
    # QSQL, scoring) applies downstream.
    from repro.polygen import polygen_to_tagged
    from repro.sql import execute

    tagged = polygen_to_tagged(resolved)
    answer = execute(
        "SELECT ticker, price FROM quotes "
        "WHERE QUALITY(price.source) = 'nexis_digest+reuters_feed'",
        tagged,
    )
    print("Corroborated-by-both quotes, retrieved via QSQL:")
    print(answer.render())


if __name__ == "__main__":
    main()
