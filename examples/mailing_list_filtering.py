#!/usr/bin/env python3
"""§4's information clearinghouse: mass mailing vs. fund raising.

An address clearinghouse merged two acquisitions: a current postal feed
and a stale purchased list.  Both feed the same tagged address book.
Two applications retrieve from it with different stored quality
profiles:

- *mass mailing* — "no need to reach the correct individual (by name)":
  a query with no constraints over quality indicators;
- *fund raising* — "the user may query over and constrain quality
  indicator values, raising the accuracy and timeliness of the
  retrieved data".

Because the clearinghouse is simulated, we can score each delivery
against ground truth and show the trade-off the paper predicts.

Run:  python examples/mailing_list_filtering.py
"""

from repro.experiments.reporting import TextTable
from repro.experiments.scenarios import clearinghouse
from repro.quality.filtering import yield_quality_tradeoff


def main() -> None:
    world, pipeline, address_book, registry = clearinghouse(
        n_people=400, seed=23, simulated_days=365
    )

    print(
        f"Address book: {len(address_book)} people, "
        f"{address_book.tag_count()} quality tags, "
        f"world day {world.today}"
    )
    print()
    print(address_book.render(max_rows=4, title="Stored addresses (tagged)"))
    print()
    print("Stored application profiles:")
    print(registry.describe())
    print()

    outcomes = yield_quality_tradeoff(
        address_book,
        [
            registry.get("mass_mailing").quality_filter,
            registry.get("fund_raising").quality_filter,
        ],
        truth=world.truth(),
        key_column="person_id",
        today=world.today,
        age_columns=["address"],
    )

    table = TextTable(
        ["profile", "rows delivered", "yield", "delivered accuracy", "mean age (days)"],
        title="Retrieval outcomes against simulated ground truth",
    )
    for outcome in outcomes:
        table.add_row(
            [
                outcome.filter_name,
                outcome.output_rows,
                outcome.yield_fraction,
                outcome.delivered_accuracy,
                outcome.mean_age_days,
            ]
        )
    print(table.render())
    print()

    mass, fund = outcomes
    print(
        "The fund-raising grade delivered "
        f"{fund.delivered_accuracy - mass.delivered_accuracy:+.1%} accuracy and "
        f"{mass.mean_age_days - fund.mean_age_days:.0f} days fresher data, "
        f"at the cost of {1 - fund.yield_fraction:.0%} of the rows."
    )


if __name__ == "__main__":
    main()
